//! Typed values, column definitions and table schemas.
//!
//! The relational model is intentionally small: the paper's evaluation uses a
//! single-table taxi schema with integer zone identifiers, timestamps and a
//! couple of numeric measures, queried with filtered counts, group-by counts
//! and equi-join counts.  The model nevertheless supports arbitrary column
//! sets so the engines are reusable beyond the reproduction workload.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The data types a column may hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Signed 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Discrete time unit (minutes since the start of the observation window).
    Timestamp,
    /// Boolean flag.
    Bool,
    /// Short UTF-8 string.
    Text,
}

/// A single typed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Signed integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Timestamp value (time units since epoch of the growing database).
    Timestamp(u64),
    /// Boolean value.
    Bool(bool),
    /// Text value.
    Text(String),
    /// SQL-style NULL.
    Null,
}

impl Value {
    /// The data type of this value (`None` for NULL).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Text(_) => Some(DataType::Text),
            Value::Null => None,
        }
    }

    /// Interprets the value as a float where that makes sense (for
    /// aggregation and comparison against numeric literals).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Text(_) | Value::Null => None,
        }
    }

    /// Interprets the value as an integer where exact (Int / Timestamp / Bool).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Timestamp(v) => i64::try_from(*v).ok(),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Float(_) | Value::Text(_) | Value::Null => None,
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A total ordering key used for grouping and equality joins.
    ///
    /// Floats are compared by their bit pattern after normalising NaN, which
    /// is sufficient for grouping (the evaluation never groups on floats).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Int(v) => GroupKey::Int(*v),
            Value::Timestamp(v) => GroupKey::Timestamp(*v),
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Text(s) => GroupKey::Text(s.clone()),
            Value::Float(f) => {
                let normalized = if f.is_nan() { f64::NAN } else { *f };
                GroupKey::FloatBits(normalized.to_bits())
            }
            Value::Null => GroupKey::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "t{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// A hashable, orderable key derived from a [`Value`], used by group-by and
/// join operators.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GroupKey {
    /// NULL key (groups all NULLs together, as SQL GROUP BY does).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Timestamp key.
    Timestamp(u64),
    /// Float key via bit pattern.
    FloatBits(u64),
    /// Text key.
    Text(String),
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKey::Null => write!(f, "NULL"),
            GroupKey::Bool(b) => write!(f, "{b}"),
            GroupKey::Int(v) => write!(f, "{v}"),
            GroupKey::Timestamp(v) => write!(f, "t{v}"),
            GroupKey::FloatBits(bits) => write!(f, "{}", f64::from_bits(*bits)),
            GroupKey::Text(s) => write!(f, "{s}"),
        }
    }
}

/// A column definition: name and type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// A table schema: an ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Creates a schema from column definitions.
    ///
    /// # Panics
    /// Panics if two columns share a name — schemas are built from static
    /// configuration, so a duplicate is a programming error.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(
                seen.insert(c.name.clone()),
                "duplicate column name `{}`",
                c.name
            );
        }
        Self { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|(name, ty)| ColumnDef::new(*name, *ty))
                .collect(),
        )
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The index of the named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The definition of the named column, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Whether `values` is compatible with this schema (arity matches and
    /// every non-null value has the declared type).
    pub fn validates(&self, values: &[Value]) -> bool {
        values.len() == self.columns.len()
            && values
                .iter()
                .zip(&self.columns)
                .all(|(v, c)| v.data_type().is_none_or(|ty| ty == c.data_type))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taxi_schema() -> Schema {
        Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
            ("dropoff_id", DataType::Int),
            ("distance", DataType::Float),
            ("fare", DataType::Float),
        ])
    }

    #[test]
    fn column_lookup_by_name() {
        let s = taxi_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.column_index("pickup_id"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("fare").unwrap().data_type, DataType::Float);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        let _ = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Float)]);
    }

    #[test]
    fn validates_checks_arity_and_types() {
        let s = taxi_schema();
        let good = vec![
            Value::Timestamp(10),
            Value::Int(42),
            Value::Int(17),
            Value::Float(1.2),
            Value::Float(8.5),
        ];
        assert!(s.validates(&good));
        let mut with_null = good.clone();
        with_null[3] = Value::Null;
        assert!(s.validates(&with_null));
        let wrong_type = vec![
            Value::Timestamp(10),
            Value::Text("oops".into()),
            Value::Int(17),
            Value::Float(1.2),
            Value::Float(8.5),
        ];
        assert!(!s.validates(&wrong_type));
        assert!(!s.validates(&good[..4]));
    }

    #[test]
    fn value_numeric_conversions() {
        assert_eq!(Value::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Timestamp(7).as_i64(), Some(7));
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_i64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn group_keys_distinguish_values_and_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Int(2).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Timestamp(1).group_key());
        assert_eq!(
            Value::Text("a".into()).group_key(),
            Value::Text("a".into()).group_key()
        );
        assert_eq!(Value::Float(1.5).group_key(), Value::Float(1.5).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
    }

    #[test]
    fn group_keys_are_orderable() {
        let mut keys = vec![
            Value::Int(5).group_key(),
            Value::Int(1).group_key(),
            Value::Int(3).group_key(),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                Value::Int(1).group_key(),
                Value::Int(3).group_key(),
                Value::Int(5).group_key()
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Timestamp(9).to_string(), "t9");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(GroupKey::Text("hi".into()).to_string(), "hi");
        assert_eq!(GroupKey::FloatBits(2.0f64.to_bits()).to_string(), "2");
    }

    #[test]
    fn value_data_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Text("s".into()).data_type(), Some(DataType::Text));
    }
}
