//! The evaluation queries Q1, Q2 and Q3 (§8, "Testing query").
//!
//! * **Q1** — linear range count over the Yellow Cab table:
//!   `SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100`.
//! * **Q2** — aggregation grouped by pickup zone:
//!   `SELECT pickupID, COUNT(*) FROM YellowCab GROUP BY pickupID`.
//! * **Q3** — join counting minutes in which both providers had a pickup:
//!   `SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON pickTime = pickTime`.
//!
//! Table names default to `"yellow"` and `"green"`, matching the workload
//! builders in [`crate::taxi`].

use dpsync_edb::query::paper_queries;
use dpsync_edb::Query;

/// Default Yellow Cab table name.
pub const YELLOW_TABLE: &str = "yellow";
/// Default Green Boro table name.
pub const GREEN_TABLE: &str = "green";

/// Q1: the linear range count.
pub fn q1() -> Query {
    paper_queries::q1_range_count(YELLOW_TABLE)
}

/// Q2: the group-by aggregation (the paper's default testing query).
pub fn q2() -> Query {
    paper_queries::q2_group_by_count(YELLOW_TABLE)
}

/// Q3: the equi-join count across both providers.
pub fn q3() -> Query {
    paper_queries::q3_join_count(YELLOW_TABLE, GREEN_TABLE)
}

/// The full labelled query set used by the end-to-end experiments.
pub fn paper_query_set() -> Vec<(String, Query)> {
    vec![
        ("Q1".to_string(), q1()),
        ("Q2".to_string(), q2()),
        ("Q3".to_string(), q3()),
    ]
}

/// The single-table query set (Q1 and Q2 only), used when only the Yellow
/// Cab workload is replayed (e.g. the parameter sweeps of Figures 5 and 6,
/// which use Q2 as the default testing query).
pub fn single_table_query_set() -> Vec<(String, Query)> {
    vec![("Q1".to_string(), q1()), ("Q2".to_string(), q2())]
}

/// The paper's default testing query (Q2) on its own.
pub fn default_query_set() -> Vec<(String, Query)> {
    vec![("Q2".to_string(), q2())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsync_edb::Predicate;

    #[test]
    fn q1_filters_pickup_range() {
        match q1() {
            Query::Count { table, predicate } => {
                assert_eq!(table, YELLOW_TABLE);
                assert!(matches!(
                    predicate,
                    Some(Predicate::Between(_, 50.0, 100.0))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn q2_groups_by_pickup_zone() {
        match q2() {
            Query::GroupByCount {
                table, group_by, ..
            } => {
                assert_eq!(table, YELLOW_TABLE);
                assert_eq!(group_by, "pickup_id");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn q3_joins_both_tables_on_pick_time() {
        match q3() {
            Query::JoinCount {
                left,
                right,
                left_column,
                right_column,
            } => {
                assert_eq!(left, YELLOW_TABLE);
                assert_eq!(right, GREEN_TABLE);
                assert_eq!(left_column, "pick_time");
                assert_eq!(right_column, "pick_time");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_sets_have_expected_labels() {
        let labels: Vec<String> = paper_query_set().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["Q1", "Q2", "Q3"]);
        assert_eq!(single_table_query_set().len(), 2);
        assert_eq!(default_query_set()[0].0, "Q2");
    }
}
