//! Tuning the privacy / accuracy / performance trade-off (the paper's
//! Observations 4–6 in miniature): sweep the privacy budget ε and the
//! DP-Timer period T on a small workload and print how the mean query error
//! and the storage overhead respond.
//!
//! Run with: `cargo run --release --example privacy_tuning`

use dp_sync::core::simulation::{Simulation, SimulationConfig};
use dp_sync::core::strategy::{CacheFlush, DpTimerStrategy};
use dp_sync::crypto::MasterKey;
use dp_sync::dp::Epsilon;
use dp_sync::edb::engines::ObliDbEngine;
use dp_sync::workloads::queries;
use dp_sync::workloads::taxi::{TaxiConfig, TaxiDataset};

fn run(epsilon: f64, period: u64) -> (f64, f64, u64) {
    let yellow = TaxiDataset::generate(TaxiConfig::scaled_yellow(7, 20));
    let master = MasterKey::from_bytes([4u8; 32]);
    let engine = ObliDbEngine::new(&master);
    let sim = Simulation::new(SimulationConfig {
        query_interval: 18,
        size_sample_interval: 360,
        queries: queries::single_table_query_set(),
        seed: 7,
    });
    let report = sim
        .run(
            &[yellow.to_workload(queries::YELLOW_TABLE)],
            &engine,
            &master,
            |_| {
                Box::new(DpTimerStrategy::with_flush(
                    Epsilon::new_unchecked(epsilon),
                    period,
                    Some(CacheFlush::new(500, 15)),
                ))
            },
        )
        .expect("simulation succeeds");
    let sizes = report.final_sizes().unwrap();
    (
        report.mean_l1_error("Q2"),
        report.mean_estimated_qet_all(),
        sizes.dummy_records,
    )
}

fn main() {
    println!("DP-Timer on a 1/20-scale taxi month (2 160 minutes, ~900 records)\n");

    println!("sweeping the privacy budget (T fixed at 30):");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "epsilon", "mean Q2 err", "mean QET (s)", "dummies"
    );
    for &eps in &[0.01, 0.1, 0.5, 1.0, 10.0] {
        let (err, qet, dummies) = run(eps, 30);
        println!("{eps:>8} {err:>14.2} {qet:>14.3} {dummies:>14}");
    }
    println!("  → smaller epsilon = stronger privacy, larger error and more dummy uploads\n");

    println!("sweeping the timer period T (epsilon fixed at 0.5):");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "T", "mean Q2 err", "mean QET (s)", "dummies"
    );
    for &period in &[5u64, 30, 120, 480] {
        let (err, qet, dummies) = run(0.5, period);
        println!("{period:>8} {err:>14.2} {qet:>14.3} {dummies:>14}");
    }
    println!(
        "  → longer periods defer more data (larger error) but synchronize — and pad — less often"
    );
}
