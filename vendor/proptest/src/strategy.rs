//! The [`Strategy`] trait: value generators for property tests.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the RNG.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Generates via a dependent follow-up strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy, see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
