//! A durable append-only encrypted segment log.
//!
//! The log stores each table as a directory of fixed-capacity segment files;
//! `Π_Setup` / `Π_Update` batches are appended as CRC-framed records and
//! fsynced before the protocol acknowledges, so the on-disk state always
//! reflects a prefix of acknowledged batches.  Because a secure outsourced
//! growing database only grows (Definition 1 has no delete protocol), an
//! append-only log is the complete storage story, not a write-ahead adjunct.
//!
//! # On-disk format
//!
//! Layout: `<root>/<table>/seg-NNNNNN.dpl`, where `NNNNNN` is a zero-padded
//! segment index and `<table>` is the percent-encoded table name.  A new
//! segment is started whenever the current one has reached its capacity
//! ([`SegmentLogConfig::segment_bytes`]); one batch frame never spans two
//! segments (a frame larger than the capacity gets a segment of its own).
//!
//! Each segment starts with a 16-byte CRC-checked header:
//!
//! ```text
//! ┌──────────────────┬──────────────┬─────────────────────────┐
//! │ magic "DPSLOG01" │ version (u32)│ CRC32 of magic‖version  │
//! └──────────────────┴──────────────┴─────────────────────────┘
//! ```
//!
//! followed by zero or more batch frames:
//!
//! ```text
//! ┌────────────┬─────────────┬───────────────────┬───────────────────┐
//! │ time (u64) │ count (u32) │ payload_len (u32) │ header CRC32      │
//! ├────────────┴─────────────┴───────────────────┴───────────────────┤
//! │ payload: count × [ len (u32) ‖ ciphertext bytes ]                │
//! ├───────────────────────────────────────────────────────────────────┤
//! │ payload CRC32                                                     │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian; CRC32 is the IEEE polynomial.  The frame
//! header carries its own CRC so a torn header is distinguishable from a
//! valid frame announcing garbage lengths, and the payload CRC catches torn
//! or bit-rotted bodies.
//!
//! # Durability and crash recovery
//!
//! [`append_batch`](SegmentLogTable::append_batch) writes the frame and then
//! makes it durable before the `Π_Update` protocol acknowledges — either
//! immediately (`fdatasync` per batch, the default) or through the
//! group-commit window described below.  Directory entries are covered too:
//! creating a table directory or a segment file is followed by an fsync of
//! the *containing directory* (gated by [`SegmentLogConfig::fsync`] like the
//! data syncs), so an acknowledged batch can never vanish because the file
//! holding it was itself still volatile.  On open, the log replays every
//! segment in order to rebuild the table's ciphertext counts and its slice
//! of the Definition-2 update pattern.  A torn tail — a partial or
//! CRC-failing frame at the end of the *last* segment, i.e. a crash
//! mid-write of a batch that was never acknowledged — is truncated away; the
//! same damage anywhere else is not a crash artifact and surfaces as
//! [`StorageError::Corrupt`].  A last segment that is missing entirely
//! (crash between rollover and the first acknowledged frame in it) is
//! likewise tolerated: nothing acknowledged lived there.
//!
//! # Group commit
//!
//! With [`SegmentLogConfig::group_commit`] set, appends return a pending
//! [`CommitTicket`] instead of writing and syncing inline: concurrent
//! appenders stage their frame *bytes* into a shared *window* and one
//! elected leader writes each dirty file's frames in a single `write_all`
//! and issues a single `fdatasync` per dirty file for the whole window (see
//! [`GroupCommitter`] for why staging bytes, rather than letting appenders
//! write and only sharing the sync, is what makes the window fill).  A
//! window closes
//! when it reaches [`GroupCommitConfig::max_window_batches`] /
//! [`GroupCommitConfig::max_window_bytes`], when no new batch has been
//! staged for [`GroupCommitConfig::idle_grace`] (the quiet-period close
//! that collects a concurrent burst into one window), or unconditionally
//! once [`GroupCommitConfig::max_window_wait`] has elapsed since its first
//! batch.  [`CommitTicket::wait`] blocks until the window containing the
//! batch has synced, so callers still acknowledge only durable batches —
//! the protocol boundary is unchanged, only the cost is amortized.
//!
//! Crash recovery is unchanged as well: frames reach each segment file in
//! acknowledgment order, so a recovered table is always the acknowledged
//! prefix of its transcript plus possibly a few *complete but never
//! acknowledged* trailing frames (a window that was written but not yet
//! synced when the process died — exactly as an in-flight `Π_Update` may or
//! may not have reached the server).  If a window sync fails, the committer
//! poisons itself: every in-flight and subsequent append errors, so no
//! acknowledgment is ever issued past a sync the kernel did not confirm
//! (fsync failure semantics are sticky).
//!
//! # Why durability cannot affect the leakage profile
//!
//! The log persists exactly what the adversary already observes: ciphertext
//! batches and their `(time, volume)` arrival metadata.  Recovery replays
//! that observation verbatim — it can only ever reproduce a prefix of the
//! acknowledged transcript, never reorder, merge or annotate it — so the
//! adversary view assembled over a recovered log is byte-identical to the
//! pre-crash view (pinned by the crash-recovery suite in
//! `crates/edb/tests/segment_log_recovery.rs`).

use super::{AppendAck, StorageBackend, StorageError, TableStore};
use crate::leakage::UpdateEvent;
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Magic bytes opening every segment file.
const SEGMENT_MAGIC: [u8; 8] = *b"DPSLOG01";
/// On-disk format version.
const FORMAT_VERSION: u32 = 1;
/// Segment header: magic (8) + version (4) + CRC32 (4).
const SEGMENT_HEADER_LEN: usize = 16;
/// Frame header: time (8) + count (4) + payload_len (4) + CRC32 (4).
const FRAME_HEADER_LEN: usize = 20;
/// Trailing payload CRC32.
const FRAME_TRAILER_LEN: usize = 4;
/// Upper bound on one frame's payload, guarding replay against garbage
/// lengths that happen to pass the header CRC (2^-32 per torn header).
const MAX_PAYLOAD_LEN: u32 = 1 << 30;

/// Configuration of a [`SegmentLogBackend`].
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentLogConfig {
    /// Root directory of the log; one subdirectory per table.
    pub dir: PathBuf,
    /// Capacity at which a segment is sealed and the next one started.
    pub segment_bytes: u64,
    /// Whether to sync at all (data *and* directory entries).  Disable only
    /// for tests and micro-benchmarks that measure the framing path in
    /// isolation.
    pub fsync: bool,
    /// Group-commit window bounds; `None` (the default) issues one
    /// `fdatasync` per appended batch.  See the
    /// [module documentation](self#group-commit).
    pub group_commit: Option<GroupCommitConfig>,
}

impl SegmentLogConfig {
    /// Default segment capacity: 4 MiB (~38k ciphertexts at the fixed record
    /// size — large enough that steady-state ingest rarely rolls, small
    /// enough that recovery scans stay incremental).
    pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

    /// A configuration with defaults rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: Self::DEFAULT_SEGMENT_BYTES,
            fsync: true,
            group_commit: None,
        }
    }

    /// Overrides the segment capacity (floored at one frame header so a
    /// zero capacity still produces valid single-batch segments).
    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> Self {
        self.segment_bytes = segment_bytes;
        self
    }

    /// Enables or disables per-batch fsync.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Enables group commit with the given window bounds.
    pub fn with_group_commit(mut self, group: GroupCommitConfig) -> Self {
        self.group_commit = Some(group);
        self
    }
}

/// Bounds of one group-commit window (see the
/// [module documentation](self#group-commit)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Close the window once this many batches are staged.
    pub max_window_batches: u64,
    /// Close the window once this many frame bytes are staged.
    pub max_window_bytes: u64,
    /// Close the window this long after its first batch regardless of size
    /// or quiet periods — the hard cap on added acknowledgment latency.
    pub max_window_wait: Duration,
    /// Close the window once no new batch has been staged for this long.
    ///
    /// This quiet-period close is what fills the window: concurrent
    /// appenders land within microseconds of each other (they were all
    /// released by the previous window's sync), so a short grace collects
    /// the whole burst, while a lone appender pays only this much extra
    /// latency on top of its own fsync.  Closing the instant a leader is
    /// elected instead (a zero grace) splinters a burst across several
    /// windows — each paying a full fsync — because the first appender to
    /// wait wins leadership before the rest have staged.
    ///
    /// The grace must also cover the *inter-arrival* gap of the stream
    /// feeding the log: batches funneled through an engine's shard lock
    /// reach the committer spaced by the engine's per-batch CPU cost
    /// (tens of microseconds), and a grace shorter than that gap closes a
    /// window between every two arrivals — one fsync per batch again, with
    /// extra ceremony.  The default is therefore comfortably above typical
    /// per-batch processing cost yet well below the cost of the fsync it
    /// amortizes.
    pub idle_grace: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            max_window_batches: 64,
            max_window_bytes: 8 * 1024 * 1024,
            max_window_wait: Duration::from_millis(1),
            idle_grace: Duration::from_micros(100),
        }
    }
}

/// One file's staged-but-unwritten frames in the open window.
#[derive(Debug)]
struct StagedFile {
    /// Append handle; kept alive across segment rollovers.
    file: Arc<File>,
    /// Path for error reporting.
    path: PathBuf,
    /// File length before the window's first staged frame — where a failed
    /// window write is rolled back to.
    rollback_len: u64,
    /// The window's frames for this file, concatenated in append order.
    buf: Vec<u8>,
}

/// Shared state of one [`GroupCommitter`], behind its mutex.
#[derive(Debug)]
struct CommitState {
    /// Next sequence number to assign (the first submit gets 1).
    next_seq: u64,
    /// Highest sequence number known durable.
    synced_seq: u64,
    /// Batches staged in the currently open window.
    pending_batches: u64,
    /// Frame bytes staged in the currently open window.
    pending_bytes: u64,
    /// Per-file staged frames of the currently open window.
    staged: Vec<StagedFile>,
    /// When the open window received its first batch.
    window_open: Option<Instant>,
    /// Whether a leader is currently waiting out or syncing a window.
    leader: bool,
    /// Sticky failure: set on the first write/sync error, never cleared.
    /// Once a window fails, no later acknowledgment can be trusted, so
    /// every in-flight and subsequent append errors with this value.
    failed: Option<StorageError>,
}

/// The group-commit coordinator shared by every table of one backend.
///
/// Appenders `submit_frame` frame *bytes* under their shard lock and then
/// `wait_durable` *outside* it;
/// the first waiter to find no active leader becomes the leader, closes the
/// window per [`GroupCommitConfig`], writes each dirty file's staged frames
/// in one `write_all`, and issues one `fdatasync` per dirty file for every
/// batch staged so far.
///
/// Staging bytes (instead of having each appender write its own frame) is
/// what makes the zero-wait pipeline actually amortize: an appender's write
/// to a file the leader is `fdatasync`ing would block on the inode lock
/// until the sync finishes, so direct writes both fragment the next window
/// (stragglers miss its zero-wait close) and re-dirty the file under the
/// running sync.  A staged submit is a memcpy under the committer mutex —
/// it never touches the file, so a full next window forms while the
/// leader's sync is in flight.
pub struct GroupCommitter {
    config: GroupCommitConfig,
    state: Mutex<CommitState>,
    wakeup: Condvar,
}

impl std::fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitter")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl GroupCommitter {
    fn new(config: GroupCommitConfig) -> Self {
        Self {
            config,
            state: Mutex::new(CommitState {
                next_seq: 1,
                synced_seq: 0,
                pending_batches: 0,
                pending_bytes: 0,
                staged: Vec::new(),
                window_open: None,
                leader: false,
                failed: None,
            }),
            wakeup: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CommitState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stages a frame's bytes for the next sync window and returns its
    /// sequence number.  Called with the appender's shard lock held — so
    /// per-file staging order equals append order — and the frame has NOT
    /// been written yet: the window leader writes it.  `file_len` is the
    /// file's length before this frame (the rollback point if the window's
    /// write fails).  The file handle is remembered so the leader can write
    /// and sync it even after the table rolls to a new segment.
    fn submit_frame(
        &self,
        file: &Arc<File>,
        path: &Path,
        file_len: u64,
        frame: &[u8],
    ) -> Result<u64, StorageError> {
        let mut state = self.lock();
        if let Some(failed) = &state.failed {
            return Err(failed.clone());
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.pending_batches += 1;
        state.pending_bytes += frame.len() as u64;
        if state.window_open.is_none() {
            state.window_open = Some(Instant::now());
        }
        match state.staged.iter_mut().find(|s| Arc::ptr_eq(&s.file, file)) {
            Some(staged) => staged.buf.extend_from_slice(frame),
            None => state.staged.push(StagedFile {
                file: Arc::clone(file),
                path: path.to_path_buf(),
                rollback_len: file_len,
                buf: frame.to_vec(),
            }),
        }
        // Wake a leader that is waiting out the window clock when the size
        // bounds close the window early.
        if state.pending_batches >= self.config.max_window_batches
            || state.pending_bytes >= self.config.max_window_bytes
        {
            self.wakeup.notify_all();
        }
        Ok(seq)
    }

    /// Blocks until the batch with sequence `seq` is durable (or the
    /// committer failed).  Electing the leader, waiting out the window and
    /// syncing all happen in here — there is no background thread.
    fn wait_durable(&self, seq: u64) -> Result<(), StorageError> {
        let mut state = self.lock();
        loop {
            if let Some(failed) = &state.failed {
                return Err(failed.clone());
            }
            if state.synced_seq >= seq {
                return Ok(());
            }
            if state.leader {
                // A leader is on it; wait to be woken by its completion.
                state = self.wakeup.wait(state).unwrap_or_else(|e| e.into_inner());
                continue;
            }

            // Become the leader: wait out the window, then close it.  The
            // window closes on the first of: size bounds, the hard
            // `max_window_wait` deadline, or a quiet period — one
            // `idle_grace` elapsing without a new submit.
            state.leader = true;
            loop {
                let opened = state
                    .window_open
                    .expect("an unsynced submit implies an open window");
                let deadline = opened + self.config.max_window_wait;
                let now = Instant::now();
                let size_closed = state.pending_batches >= self.config.max_window_batches
                    || state.pending_bytes >= self.config.max_window_bytes;
                if size_closed || now >= deadline {
                    break;
                }
                let before = state.next_seq;
                let grace = self.config.idle_grace.min(deadline - now);
                // A sleeping wait, deliberately: the leader must yield the
                // CPU so pending appenders actually get to run and stage
                // (on a single-core box a busy-wait here starves the very
                // burst the grace exists to collect).  The wait overshoot
                // from timer slack only extends the collection window.
                let (guard, timeout) = self
                    .wakeup
                    .wait_timeout(state, grace)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                if timeout.timed_out() && state.next_seq == before {
                    break;
                }
            }

            // Close the window: everything submitted so far rides this sync.
            let target = state.next_seq - 1;
            let staged = std::mem::take(&mut state.staged);
            state.pending_batches = 0;
            state.pending_bytes = 0;
            state.window_open = None;
            drop(state);

            // One write per dirty file, then one fdatasync per dirty file.
            // Writing everything before the first sync also lets the
            // journal batch the commits: the first sync carries every
            // file's data, the rest find little left to flush.
            let mut outcome = Ok(());
            for staged in &staged {
                if let Err(e) = (&*staged.file).write_all(&staged.buf) {
                    // A torn window write: roll this file back to its
                    // pre-window length.  Earlier files hold only complete
                    // (never-acknowledged) frames — recovery tolerates
                    // those — and later files were not touched.  If even
                    // the rollback fails, the sticky failure below keeps
                    // every later append out, so the torn frame is never
                    // buried past truncate-at-first-bad-frame recovery.
                    let _ = staged
                        .file
                        .set_len(staged.rollback_len)
                        .and_then(|()| staged.file.sync_data());
                    outcome = Err(StorageError::io(&staged.path, &e));
                    break;
                }
            }
            if outcome.is_ok() {
                for staged in &staged {
                    if let Err(e) = staged.file.sync_data() {
                        outcome = Err(StorageError::io(&staged.path, &e));
                        break;
                    }
                }
            }
            state = self.lock();
            state.leader = false;
            match outcome {
                Ok(()) => state.synced_seq = state.synced_seq.max(target),
                Err(e) => state.failed = Some(e),
            }
            self.wakeup.notify_all();
            // Loop: our own seq is <= target, so this resolves now unless
            // the sync failed (then the sticky error is returned above).
        }
    }

    /// Makes every frame submitted so far durable.  Readers that go to the
    /// on-disk files (scans) call this first so staged-but-unwritten
    /// windows are flushed out ahead of them.
    fn flush(&self) -> Result<(), StorageError> {
        let latest = self.lock().next_seq - 1;
        if latest == 0 {
            return Ok(());
        }
        self.wait_durable(latest)
    }
}

/// A claim check for a batch staged under group commit: the append has been
/// written but not yet synced.  [`wait`](Self::wait) blocks until the
/// batch's window is durable; the `Π_Update` acknowledgment must not be
/// issued before then.
#[derive(Debug)]
#[must_use = "the batch is not durable until the ticket is waited on"]
pub struct CommitTicket {
    committer: Arc<GroupCommitter>,
    seq: u64,
}

impl CommitTicket {
    /// Blocks until the batch is durable (possibly becoming the window's
    /// sync leader).  An error means durability was never confirmed and the
    /// batch must not be acknowledged.
    pub fn wait(self) -> Result<(), StorageError> {
        self.committer.wait_durable(self.seq)
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// `Crc32::new().update(a).update(b).finish()` equals
/// [`crc32`]`(a ++ b)` — the wire protocol in `dpsync-net` uses this to
/// checksum a frame's session-id bytes together with its payload without
/// concatenating them.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Crc32 { state: u32::MAX }
    }

    /// Feeds more bytes; chainable.
    #[must_use]
    pub fn update(mut self, data: &[u8]) -> Self {
        for &byte in data {
            self.state =
                (self.state >> 8) ^ CRC32_TABLE[((self.state ^ byte as u32) & 0xFF) as usize];
        }
        self
    }

    /// The checksum of everything fed so far.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// Public because the wire protocol in `dpsync-net` frames its messages with
/// the same checksum the segment log uses for its on-disk frames — one CRC
/// implementation, one set of test vectors.
pub fn crc32(data: &[u8]) -> u32 {
    Crc32::new().update(data).finish()
}

/// Percent-encodes a table name into a filesystem-safe directory name.
///
/// Alphanumerics, `-`, `_` and `.` pass through; everything else becomes
/// `%XX`, so distinct table names can never collide on disk.
fn encode_table_name(table: &str) -> String {
    let mut out = String::with_capacity(table.len());
    for &byte in table.as_bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(byte as char),
            other => {
                out.push('%');
                out.push_str(&format!("{other:02X}"));
            }
        }
    }
    if out.is_empty() {
        // A lone `%` is never produced otherwise (escapes are always `%XX`),
        // so it unambiguously marks the empty table name.
        out.push('%');
    }
    out
}

/// Inverse of [`encode_table_name`]; `None` for names the encoder cannot
/// have produced (foreign directories are skipped, not errors).
///
/// Only *canonical* encodings decode: a directory whose name re-encodes
/// differently (lowercase hex, unescaped bytes the encoder would escape)
/// is rejected, so `existing_tables` can never report a table whose data
/// `open_table` would then look up under a different directory.
fn decode_table_name(encoded: &str) -> Option<String> {
    if encoded == "%" {
        return Some(String::new());
    }
    let mut bytes = Vec::with_capacity(encoded.len());
    let mut chars = encoded.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next()?;
            let lo = chars.next()?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).ok()?;
            bytes.push(u8::from_str_radix(hex, 16).ok()?);
        } else {
            bytes.push(b);
        }
    }
    let decoded = String::from_utf8(bytes).ok()?;
    (encode_table_name(&decoded) == encoded).then_some(decoded)
}

/// The name of segment `index`.
fn segment_file_name(index: u64) -> String {
    format!("seg-{index:06}.dpl")
}

/// Parses a segment file name back to its index.
fn parse_segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".dpl")?
        .parse()
        .ok()
}

/// The durable append-only segment-log backend.
///
/// See the [module documentation](self) for the on-disk format, durability
/// contract and recovery semantics.
#[derive(Debug)]
pub struct SegmentLogBackend {
    config: SegmentLogConfig,
    /// Shared sync coordinator when group commit is enabled; one window
    /// covers batches from *all* tables of this backend.
    committer: Option<Arc<GroupCommitter>>,
}

impl SegmentLogBackend {
    /// Opens a log rooted at `config.dir`, creating the directory when
    /// absent.  Existing tables are *not* replayed here — recovery happens
    /// per table in [`StorageBackend::open_table`].
    pub fn open(config: SegmentLogConfig) -> Result<Self, StorageError> {
        std::fs::create_dir_all(&config.dir).map_err(|e| StorageError::io(&config.dir, &e))?;
        let committer = config
            .group_commit
            .clone()
            .map(|group| Arc::new(GroupCommitter::new(group)));
        Ok(Self { config, committer })
    }

    /// The backend configuration.
    pub fn config(&self) -> &SegmentLogConfig {
        &self.config
    }
}

impl StorageBackend for SegmentLogBackend {
    fn name(&self) -> &'static str {
        "segment-log"
    }

    fn open_table(&self, table: &str) -> Result<Box<dyn TableStore>, StorageError> {
        Ok(Box::new(SegmentLogTable::open(
            self.config.dir.join(encode_table_name(table)),
            self.config.clone(),
            self.committer.clone(),
        )?))
    }

    fn existing_tables(&self) -> Result<Vec<String>, StorageError> {
        let entries = std::fs::read_dir(&self.config.dir)
            .map_err(|e| StorageError::io(&self.config.dir, &e))?;
        let mut tables = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io(&self.config.dir, &e))?;
            let is_dir = entry
                .file_type()
                .map_err(|e| StorageError::io(&entry.path(), &e))?
                .is_dir();
            if !is_dir {
                continue;
            }
            if let Some(name) = entry.file_name().to_str().and_then(decode_table_name) {
                tables.push(name);
            }
        }
        tables.sort();
        Ok(tables)
    }
}

/// Location of one replayed batch inside the segment files (for scans).
#[derive(Debug, Clone, Copy)]
struct BatchLocation {
    segment: u64,
    /// Offset of the frame payload (past the frame header).
    payload_offset: u64,
    payload_len: u32,
    count: u32,
}

/// One table's segment-log store.
#[derive(Debug)]
pub struct SegmentLogTable {
    dir: PathBuf,
    config: SegmentLogConfig,
    /// Shared group-commit coordinator (when enabled on the backend).
    committer: Option<Arc<GroupCommitter>>,
    /// Index of the segment currently open for appends.
    current_segment: u64,
    /// Open append handle for the current segment.  Shared (`Arc`) because
    /// the group committer keeps a handle to every dirty file across
    /// segment rollovers.
    writer: Arc<File>,
    /// Size in bytes of the current segment.
    current_size: u64,
    /// Set when a failed append could not be rolled back: the file may hold
    /// a torn frame that later appends would bury past recovery's
    /// truncate-at-first-bad-frame horizon, so all further appends refuse.
    poisoned: bool,
    /// In-memory index rebuilt at open: where each batch's payload lives.
    batches: Vec<BatchLocation>,
    updates: Vec<UpdateEvent>,
    ciphertext_count: u64,
    ciphertext_bytes: u64,
}

impl SegmentLogTable {
    /// Opens (recovering) or creates the table directory.
    fn open(
        dir: PathBuf,
        config: SegmentLogConfig,
        committer: Option<Arc<GroupCommitter>>,
    ) -> Result<Self, StorageError> {
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::io(&dir, &e))?;
        if config.fsync {
            // The table directory itself is a directory entry of the root:
            // make it durable before any frame in it can be acknowledged.
            fsync_dir(&config.dir)?;
        }

        let mut segments: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| StorageError::io(&dir, &e))?
            .filter_map(|entry| {
                entry
                    .ok()
                    .and_then(|e| e.file_name().to_str().and_then(parse_segment_index))
            })
            .collect();
        segments.sort_unstable();

        // Segment indexes must be contiguous from zero.  A missing *last*
        // segment never shows up here (nothing acknowledged lived in it — see
        // the module docs), but a hole below the last segment means durable,
        // possibly acknowledged frames vanished: directory fsync ordering
        // guarantees every earlier segment's entry was durable before a later
        // segment was created, so a gap is tampering or disk loss, never a
        // crash artifact.
        for (expect, &index) in segments.iter().enumerate() {
            if index != expect as u64 {
                return Err(StorageError::Corrupt {
                    path: dir.display().to_string(),
                    offset: 0,
                    message: format!(
                        "segment {} is missing below the last segment (found seg-{index:06})",
                        segment_file_name(expect as u64)
                    ),
                });
            }
        }

        let mut replay = SegmentReplay::default();
        for (i, &index) in segments.iter().enumerate() {
            let is_last = i == segments.len() - 1;
            replay.replay_segment(&dir, index, is_last)?;
        }

        let last = segments.last().copied();
        let (writer, current_segment, current_size) = match last {
            // Reopen the last segment for appends at its (possibly
            // truncated, possibly reinitialized) end.
            Some(index) => {
                let path = dir.join(segment_file_name(index));
                let mut writer = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| StorageError::io(&path, &e))?;
                let size = writer
                    .seek(SeekFrom::End(0))
                    .map_err(|e| StorageError::io(&path, &e))?;
                (writer, index, size)
            }
            None => create_segment(&dir, 0, config.fsync)?,
        };

        Ok(Self {
            dir,
            config,
            committer,
            current_segment,
            writer: Arc::new(writer),
            current_size,
            poisoned: false,
            batches: replay.batches,
            updates: replay.updates,
            ciphertext_count: replay.ciphertext_count,
            ciphertext_bytes: replay.ciphertext_bytes,
        })
    }

    fn segment_path(&self, index: u64) -> PathBuf {
        self.dir.join(segment_file_name(index))
    }

    /// Rolls over to segment `index`, replacing the append handle.  The old
    /// handle may still carry staged group-commit writes; the committer
    /// holds its own `Arc` to it, so dropping ours here is safe.
    fn start_segment(&mut self, index: u64) -> Result<(), StorageError> {
        let (writer, segment, size) = create_segment(&self.dir, index, self.config.fsync)?;
        self.writer = Arc::new(writer);
        self.current_segment = segment;
        self.current_size = size;
        Ok(())
    }
}

/// Fsyncs a directory so its entries (new files, new subdirectories) are
/// durable — syncing a file's *data* alone does not persist the directory
/// entry naming it.
fn fsync_dir(dir: &Path) -> Result<(), StorageError> {
    let handle = File::open(dir).map_err(|e| StorageError::io(dir, &e))?;
    handle.sync_all().map_err(|e| StorageError::io(dir, &e))
}

/// Creates segment `index` with a fresh CRC-stamped header and returns the
/// open append handle plus `(index, size)` bookkeeping.  With `fsync`, the
/// containing directory is synced too: the file must durably *exist* before
/// any frame in it is acknowledged.
fn create_segment(dir: &Path, index: u64, fsync: bool) -> Result<(File, u64, u64), StorageError> {
    let path = dir.join(segment_file_name(index));
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..8].copy_from_slice(&SEGMENT_MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    let crc = crc32(&header[..12]);
    header[12..16].copy_from_slice(&crc.to_le_bytes());

    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&path)
        .map_err(|e| StorageError::io(&path, &e))?;
    file.write_all(&header)
        .map_err(|e| StorageError::io(&path, &e))?;
    if fsync {
        file.sync_data().map_err(|e| StorageError::io(&path, &e))?;
        fsync_dir(dir)?;
    }
    Ok((file, index, SEGMENT_HEADER_LEN as u64))
}

/// Truncates a torn tail (crash artifact) off a segment file.
fn truncate_segment(path: &Path, len: u64) -> Result<(), StorageError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io(path, &e))?;
    file.set_len(len).map_err(|e| StorageError::io(path, &e))?;
    file.sync_data().map_err(|e| StorageError::io(path, &e))?;
    Ok(())
}

/// Accumulator for segment replay at open time.
#[derive(Debug, Default)]
struct SegmentReplay {
    batches: Vec<BatchLocation>,
    updates: Vec<UpdateEvent>,
    ciphertext_count: u64,
    ciphertext_bytes: u64,
}

impl SegmentReplay {
    /// Replays one segment, indexing its batches; torn tails in the last
    /// segment are truncated, anywhere else they are corruption.
    fn replay_segment(
        &mut self,
        dir: &Path,
        index: u64,
        is_last: bool,
    ) -> Result<(), StorageError> {
        let path = dir.join(segment_file_name(index));
        let data = std::fs::read(&path).map_err(|e| StorageError::io(&path, &e))?;
        let corrupt = |offset: u64, message: String| StorageError::Corrupt {
            path: path.display().to_string(),
            offset,
            message,
        };

        // Header validation.  A short or CRC-failing header in the *last*
        // segment is a crash during segment creation: nothing in it was ever
        // acknowledged, so the whole file is a torn tail.
        let header_ok = data.len() >= SEGMENT_HEADER_LEN
            && data[..8] == SEGMENT_MAGIC
            && u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) == FORMAT_VERSION
            && u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) == crc32(&data[..12]);
        if !header_ok {
            if is_last {
                // Rewrite a valid empty segment in place of the torn one;
                // the open path will reopen it for appends.
                let _ = create_segment(dir, index, true)?;
                return Ok(());
            }
            return Err(corrupt(0, "invalid segment header".into()));
        }

        let mut offset = SEGMENT_HEADER_LEN;
        loop {
            if offset == data.len() {
                break; // clean end of segment
            }
            let torn = |what: &str| -> Result<bool, StorageError> {
                if is_last {
                    Ok(true)
                } else {
                    Err(corrupt(
                        offset as u64,
                        format!("{what} in a sealed segment"),
                    ))
                }
            };
            // Frame header.
            if data.len() - offset < FRAME_HEADER_LEN && torn("truncated frame header")? {
                truncate_segment(&path, offset as u64)?;
                break;
            }
            let header = &data[offset..offset + FRAME_HEADER_LEN];
            let stored_crc = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
            if stored_crc != crc32(&header[..16]) && torn("frame header CRC mismatch")? {
                truncate_segment(&path, offset as u64)?;
                break;
            }
            let time = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
            let payload_len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
            if payload_len > MAX_PAYLOAD_LEN {
                return Err(corrupt(
                    offset as u64,
                    format!("implausible payload length {payload_len}"),
                ));
            }
            let payload_start = offset + FRAME_HEADER_LEN;
            let frame_end = payload_start + payload_len as usize + FRAME_TRAILER_LEN;
            if data.len() < frame_end && torn("truncated frame payload")? {
                truncate_segment(&path, offset as u64)?;
                break;
            }
            let payload = &data[payload_start..payload_start + payload_len as usize];
            let stored_payload_crc = u32::from_le_bytes(
                data[frame_end - FRAME_TRAILER_LEN..frame_end]
                    .try_into()
                    .expect("4 bytes"),
            );
            if stored_payload_crc != crc32(payload) && torn("frame payload CRC mismatch")? {
                truncate_segment(&path, offset as u64)?;
                break;
            }

            // Validate the length-prefixed records and account their bytes.
            let mut cursor = 0usize;
            let mut batch_bytes = 0u64;
            for _ in 0..count {
                if payload.len() - cursor < 4 {
                    return Err(corrupt(
                        (payload_start + cursor) as u64,
                        "record length prefix past payload end".into(),
                    ));
                }
                let len =
                    u32::from_le_bytes(payload[cursor..cursor + 4].try_into().expect("4 bytes"))
                        as usize;
                cursor += 4;
                if payload.len() - cursor < len {
                    return Err(corrupt(
                        (payload_start + cursor) as u64,
                        "record body past payload end".into(),
                    ));
                }
                cursor += len;
                batch_bytes += len as u64;
            }
            if cursor != payload.len() {
                return Err(corrupt(
                    (payload_start + cursor) as u64,
                    "trailing garbage after last record".into(),
                ));
            }

            self.batches.push(BatchLocation {
                segment: index,
                payload_offset: payload_start as u64,
                payload_len,
                count,
            });
            self.updates.push(UpdateEvent {
                time,
                volume: count as u64,
            });
            self.ciphertext_count += count as u64;
            self.ciphertext_bytes += batch_bytes;
            offset = frame_end;
        }
        Ok(())
    }
}

impl SegmentLogTable {
    /// Rolls a failed append's partial write back off the file, so recovery
    /// never has to look past a buried torn frame.  If the rollback itself
    /// fails the table is poisoned: a torn frame may now sit *under* later
    /// appends, where truncate-at-first-bad-frame recovery would silently
    /// drop everything after it — refusing further appends keeps every
    /// acknowledged batch recoverable.
    fn restore_or_poison(&mut self) {
        let restore = self.writer.set_len(self.current_size).and_then(|()| {
            if self.config.fsync {
                self.writer.sync_data()
            } else {
                Ok(())
            }
        });
        if restore.is_err() {
            self.poisoned = true;
        }
    }
}

impl TableStore for SegmentLogTable {
    fn append_batch(
        &mut self,
        time: u64,
        ciphertexts: &[Bytes],
    ) -> Result<AppendAck, StorageError> {
        if self.poisoned {
            return Err(StorageError::Backend {
                message: format!(
                    "segment log table at `{}` refuses appends after an unrecoverable write failure",
                    self.dir.display()
                ),
            });
        }
        // Roll to a fresh segment once the current one is at capacity; a
        // frame never spans segments.
        if self.current_size >= self.config.segment_bytes
            && self.current_size > SEGMENT_HEADER_LEN as u64
        {
            self.start_segment(self.current_segment + 1)?;
        }

        let payload_len: usize = ciphertexts.iter().map(|c| 4 + c.len()).sum();
        let payload_len = u32::try_from(payload_len).map_err(|_| StorageError::Backend {
            message: format!(
                "batch payload of {} ciphertexts exceeds frame limit",
                ciphertexts.len()
            ),
        })?;
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(StorageError::Backend {
                message: format!("batch payload length {payload_len} exceeds frame limit"),
            });
        }

        let mut frame =
            Vec::with_capacity(FRAME_HEADER_LEN + payload_len as usize + FRAME_TRAILER_LEN);
        frame.extend_from_slice(&time.to_le_bytes());
        frame.extend_from_slice(&(ciphertexts.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload_len.to_le_bytes());
        let header_crc = crc32(&frame[..16]);
        frame.extend_from_slice(&header_crc.to_le_bytes());
        let payload_start = frame.len();
        for c in ciphertexts {
            frame.extend_from_slice(&(c.len() as u32).to_le_bytes());
            frame.extend_from_slice(c);
        }
        let payload_crc = crc32(&frame[payload_start..]);
        frame.extend_from_slice(&payload_crc.to_le_bytes());

        let path = self.segment_path(self.current_segment);
        // The Π_Update durability boundary: the batch is acknowledged only
        // once it is on stable storage — immediately here, or by the group
        // committer once the ticket below is waited on.
        let ack = match &self.committer {
            // Group commit: the frame is staged and the window leader
            // writes it, so this appender never touches the file (a busy
            // leader's fdatasync would block a direct write on the inode
            // lock) and a failed submit leaves the file untouched.
            Some(committer) if self.config.fsync => {
                let seq = committer.submit_frame(&self.writer, &path, self.current_size, &frame)?;
                AppendAck::Pending(CommitTicket {
                    committer: Arc::clone(committer),
                    seq,
                })
            }
            _ => {
                if let Err(e) = (&*self.writer).write_all(&frame) {
                    // The file may now hold a torn frame; roll it back (or
                    // poison the table) before surfacing the failure.
                    self.restore_or_poison();
                    return Err(StorageError::io(&path, &e));
                }
                if self.config.fsync {
                    if let Err(e) = self.writer.sync_data() {
                        self.restore_or_poison();
                        return Err(StorageError::io(&path, &e));
                    }
                }
                AppendAck::Durable
            }
        };

        self.batches.push(BatchLocation {
            segment: self.current_segment,
            payload_offset: self.current_size + FRAME_HEADER_LEN as u64,
            payload_len,
            count: ciphertexts.len() as u32,
        });
        self.updates.push(UpdateEvent {
            time,
            volume: ciphertexts.len() as u64,
        });
        self.ciphertext_count += ciphertexts.len() as u64;
        self.ciphertext_bytes += ciphertexts.iter().map(|c| c.len() as u64).sum::<u64>();
        self.current_size += frame.len() as u64;
        Ok(ack)
    }

    fn ciphertext_count(&self) -> u64 {
        self.ciphertext_count
    }

    fn ciphertext_bytes(&self) -> u64 {
        self.ciphertext_bytes
    }

    fn updates(&self) -> &[UpdateEvent] {
        &self.updates
    }

    fn scan(&self, visit: &mut dyn FnMut(&[u8])) -> Result<(), StorageError> {
        // Under group commit a just-appended frame may still be staged with
        // the committer; flush so the files are caught up with the index.
        if let Some(committer) = &self.committer {
            committer.flush()?;
        }
        // Read back from disk, one segment at a time, in append order.
        let mut open_segment: Option<(u64, File)> = None;
        let mut payload = Vec::new();
        for batch in &self.batches {
            let path = self.segment_path(batch.segment);
            if open_segment.as_ref().map(|(i, _)| *i) != Some(batch.segment) {
                let file = File::open(&path).map_err(|e| StorageError::io(&path, &e))?;
                open_segment = Some((batch.segment, file));
            }
            let (_, file) = open_segment.as_mut().expect("just opened");
            file.seek(SeekFrom::Start(batch.payload_offset))
                .map_err(|e| StorageError::io(&path, &e))?;
            payload.resize(batch.payload_len as usize, 0);
            file.read_exact(&mut payload)
                .map_err(|e| StorageError::io(&path, &e))?;
            let mut cursor = 0usize;
            for _ in 0..batch.count {
                let len =
                    u32::from_le_bytes(payload[cursor..cursor + 4].try_into().expect("4 bytes"))
                        as usize;
                cursor += 4;
                visit(&payload[cursor..cursor + len]);
                cursor += len;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(stem: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "dpsync-seglog-{}-{}-{stem}",
                std::process::id(),
                // Thread id keeps parallel test threads apart.
                format!("{:?}", std::thread::current().id())
                    .replace(['(', ')'], "")
                    .replace("ThreadId", "t"),
            ));
            let _ = std::fs::remove_dir_all(&path);
            Self(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn backend(dir: &TempDir) -> SegmentLogBackend {
        SegmentLogBackend::open(SegmentLogConfig::new(&dir.0)).unwrap()
    }

    fn ct(byte: u8, len: usize) -> Bytes {
        Bytes::from(vec![byte; len])
    }

    fn collect(store: &dyn TableStore) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        store.scan(&mut |c| out.push(c.to_vec())).unwrap();
        out
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_crc32_matches_one_shot_over_any_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let expected = crc32(data);
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(Crc32::new().update(a).update(b).finish(), expected);
        }
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn table_name_encoding_round_trips() {
        for name in ["yellow", "a table/with:odd chars", "", "%", "日本語"] {
            let encoded = encode_table_name(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b"-_.%".contains(&b)),
                "{encoded}"
            );
            assert_eq!(decode_table_name(&encoded).as_deref(), Some(name));
        }
        assert_ne!(encode_table_name("a/b"), encode_table_name("a:b"));
        assert_eq!(parse_segment_index("seg-000042.dpl"), Some(42));
        assert_eq!(parse_segment_index("other.txt"), None);
    }

    #[test]
    fn append_then_reopen_recovers_everything() {
        let dir = TempDir::new("reopen");
        {
            let backend = backend(&dir);
            let mut store = backend.open_table("yellow").unwrap();
            store
                .append_batch(0, &[ct(1, 95), ct(2, 95)])
                .unwrap()
                .wait()
                .unwrap();
            store
                .append_batch(30, &[ct(3, 95)])
                .unwrap()
                .wait()
                .unwrap();
            store.append_batch(31, &[]).unwrap().wait().unwrap();
            assert_eq!(collect(store.as_ref()).len(), 3);
        }
        let backend = backend(&dir);
        assert_eq!(backend.existing_tables().unwrap(), vec!["yellow"]);
        let store = backend.open_table("yellow").unwrap();
        assert_eq!(store.ciphertext_count(), 3);
        assert_eq!(store.ciphertext_bytes(), 3 * 95);
        assert_eq!(
            store.updates(),
            &[
                UpdateEvent { time: 0, volume: 2 },
                UpdateEvent {
                    time: 30,
                    volume: 1
                },
                UpdateEvent {
                    time: 31,
                    volume: 0
                },
            ]
        );
        let records = collect(store.as_ref());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0][0], 1);
        assert_eq!(records[2][0], 3);
    }

    #[test]
    fn small_segments_roll_and_recover_across_files() {
        let dir = TempDir::new("roll");
        let config = SegmentLogConfig::new(&dir.0).with_segment_bytes(256);
        let backend = SegmentLogBackend::open(config.clone()).unwrap();
        {
            let mut store = backend.open_table("t").unwrap();
            for time in 0..20 {
                store
                    .append_batch(time, &[ct(time as u8, 64)])
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        }
        let segments = std::fs::read_dir(dir.0.join("t")).unwrap().count();
        assert!(segments > 1, "expected multiple segments, got {segments}");

        let reopened = SegmentLogBackend::open(config).unwrap();
        let store = reopened.open_table("t").unwrap();
        assert_eq!(store.ciphertext_count(), 20);
        assert_eq!(store.updates().len(), 20);
        let records = collect(store.as_ref());
        assert_eq!(records.len(), 20);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r[0], i as u8, "scan order must be append order");
        }
        // Appends continue in the last segment after recovery.
        let mut store = reopened.open_table("t").unwrap();
        store
            .append_batch(99, &[ct(0xAA, 64)])
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(store.ciphertext_count(), 21);
    }

    fn last_segment_path(dir: &TempDir, table: &str) -> PathBuf {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.0.join(table))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        segs.pop().unwrap()
    }

    #[test]
    fn torn_tail_is_truncated_back_to_last_complete_batch() {
        let dir = TempDir::new("torn");
        {
            let backend = backend(&dir);
            let mut store = backend.open_table("t").unwrap();
            store.append_batch(1, &[ct(1, 95)]).unwrap().wait().unwrap();
            store.append_batch(2, &[ct(2, 95)]).unwrap().wait().unwrap();
        }
        let seg = last_segment_path(&dir, "t");
        let clean_len = std::fs::metadata(&seg).unwrap().len();

        for garbage in [
            vec![0x55u8; 7],  // shorter than a frame header
            vec![0x55u8; 64], // full header's worth of garbage (CRC fails)
            {
                // A valid header announcing a payload that never made it.
                let mut h = Vec::new();
                h.extend_from_slice(&9u64.to_le_bytes());
                h.extend_from_slice(&1u32.to_le_bytes());
                h.extend_from_slice(&99u32.to_le_bytes());
                let crc = crc32(&h.clone());
                h.extend_from_slice(&crc.to_le_bytes());
                h.extend_from_slice(&[0xAB; 10]);
                h
            },
        ] {
            let mut data = std::fs::read(&seg).unwrap();
            data.truncate(clean_len as usize);
            data.extend_from_slice(&garbage);
            std::fs::write(&seg, &data).unwrap();

            let backend = backend(&dir);
            let store = backend.open_table("t").unwrap();
            assert_eq!(store.ciphertext_count(), 2, "recovery drops only the tail");
            assert_eq!(store.updates().len(), 2);
            assert_eq!(
                std::fs::metadata(&seg).unwrap().len(),
                clean_len,
                "the torn tail is physically truncated"
            );
        }
    }

    #[test]
    fn corruption_in_a_sealed_segment_is_an_error_not_recovery() {
        let dir = TempDir::new("sealed");
        let config = SegmentLogConfig::new(&dir.0).with_segment_bytes(128);
        {
            let backend = SegmentLogBackend::open(config.clone()).unwrap();
            let mut store = backend.open_table("t").unwrap();
            for time in 0..6 {
                store
                    .append_batch(time, &[ct(7, 64)])
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        }
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.0.join("t"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        assert!(segs.len() >= 2);
        // Flip a payload byte in the FIRST (sealed) segment.
        let first = &segs[0];
        let mut data = std::fs::read(first).unwrap();
        let len = data.len();
        data[len - 10] ^= 0xFF;
        std::fs::write(first, &data).unwrap();

        let backend = SegmentLogBackend::open(config).unwrap();
        let err = backend.open_table("t").unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { .. }),
            "sealed-segment damage must not be silently truncated: {err}"
        );
    }

    #[test]
    fn torn_header_of_a_fresh_last_segment_is_recovered() {
        let dir = TempDir::new("freshseg");
        let config = SegmentLogConfig::new(&dir.0).with_segment_bytes(64);
        {
            let backend = SegmentLogBackend::open(config.clone()).unwrap();
            let mut store = backend.open_table("t").unwrap();
            store.append_batch(1, &[ct(1, 64)]).unwrap().wait().unwrap();
            store.append_batch(2, &[ct(2, 64)]).unwrap().wait().unwrap();
        }
        // Simulate a crash during creation of the next segment: a partial
        // header only.
        let next = dir.0.join("t").join(segment_file_name(2));
        std::fs::write(&next, b"DPSL").unwrap();

        let backend = SegmentLogBackend::open(config).unwrap();
        let store = backend.open_table("t").unwrap();
        assert_eq!(store.ciphertext_count(), 2);
        // The torn segment was reinitialized with a valid header.
        assert_eq!(
            std::fs::metadata(&next).unwrap().len(),
            SEGMENT_HEADER_LEN as u64
        );
    }

    #[test]
    fn scan_reads_back_exact_bytes_from_disk() {
        let dir = TempDir::new("scanbytes");
        let backend = backend(&dir);
        let mut store = backend.open_table("t").unwrap();
        let records: Vec<Bytes> = (0u8..5)
            .map(|i| Bytes::from(vec![i; 10 + i as usize]))
            .collect();
        store.append_batch(3, &records).unwrap().wait().unwrap();
        let read = collect(store.as_ref());
        assert_eq!(read.len(), 5);
        for (i, r) in read.iter().enumerate() {
            assert_eq!(r.as_slice(), records[i].as_ref());
        }
    }

    #[test]
    fn foreign_files_in_the_root_are_ignored() {
        let dir = TempDir::new("foreign");
        let backend = backend(&dir);
        std::fs::write(dir.0.join("notes.txt"), b"hi").unwrap();
        std::fs::create_dir(dir.0.join("has%ZZbadescape")).unwrap();
        // Non-canonical encodings are rejected too: decoding them would
        // report a table whose data `open_table` looks up under a different
        // (canonically re-encoded) directory.
        std::fs::create_dir(dir.0.join("a%2f")).unwrap(); // lowercase hex
        std::fs::create_dir(dir.0.join("a b")).unwrap(); // unescaped space
        let mut store = backend.open_table("real").unwrap();
        store.append_batch(0, &[ct(1, 8)]).unwrap().wait().unwrap();
        assert_eq!(backend.existing_tables().unwrap(), vec!["real"]);
    }

    #[test]
    fn only_canonical_encodings_decode() {
        assert_eq!(decode_table_name("a%2F"), Some("a/".into()));
        assert_eq!(decode_table_name("a%2f"), None, "lowercase hex");
        assert_eq!(decode_table_name("a b"), None, "byte the encoder escapes");
        assert_eq!(decode_table_name("%"), Some(String::new()));
        assert_eq!(decode_table_name("%2"), None, "truncated escape");
    }

    #[test]
    fn fsync_disabled_still_round_trips() {
        let dir = TempDir::new("nofsync");
        let config = SegmentLogConfig::new(&dir.0).with_fsync(false);
        let backend = SegmentLogBackend::open(config.clone()).unwrap();
        {
            let mut store = backend.open_table("t").unwrap();
            store
                .append_batch(0, &vec![ct(9, 95); 4])
                .unwrap()
                .wait()
                .unwrap();
        }
        let store = SegmentLogBackend::open(config)
            .unwrap()
            .open_table("t")
            .unwrap();
        assert_eq!(store.ciphertext_count(), 4);
    }

    #[test]
    fn group_commit_appends_round_trip_and_recover() {
        let dir = TempDir::new("group");
        let config = SegmentLogConfig::new(&dir.0).with_group_commit(GroupCommitConfig::default());
        {
            let backend = SegmentLogBackend::open(config.clone()).unwrap();
            let mut store = backend.open_table("t").unwrap();
            for time in 0..8 {
                let ack = store.append_batch(time, &[ct(time as u8, 95)]).unwrap();
                assert!(!ack.is_durable(), "group commit must defer the ack");
                ack.wait().unwrap();
            }
        }
        // A per-batch-fsync reopen sees exactly the acknowledged transcript.
        let backend = backend(&dir);
        let store = backend.open_table("t").unwrap();
        assert_eq!(store.ciphertext_count(), 8);
        assert_eq!(store.updates().len(), 8);
        let records = collect(store.as_ref());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r[0], i as u8, "scan order must be append order");
        }
    }

    #[test]
    fn group_commit_size_bound_closes_a_window_the_clock_never_would() {
        const APPENDERS: u64 = 4;
        let dir = TempDir::new("groupsize");
        // The wait and grace bounds alone would park the leader for an hour;
        // only the batch bound — reached exactly when every appender has
        // staged — can close the window.
        let config = SegmentLogConfig::new(&dir.0).with_group_commit(GroupCommitConfig {
            max_window_batches: APPENDERS,
            max_window_bytes: u64::MAX,
            max_window_wait: Duration::from_secs(3600),
            idle_grace: Duration::from_secs(3600),
        });
        let backend = SegmentLogBackend::open(config.clone()).unwrap();
        std::thread::scope(|scope| {
            for i in 0..APPENDERS {
                let backend = &backend;
                scope.spawn(move || {
                    let mut store = backend.open_table(&format!("t{i}")).unwrap();
                    let ack = store.append_batch(i, &[ct(i as u8, 95)]).unwrap();
                    ack.wait().unwrap();
                });
            }
        });
        // Every table recovered in full: the shared window synced them all.
        let reopened = SegmentLogBackend::open(config).unwrap();
        for i in 0..APPENDERS {
            let store = reopened.open_table(&format!("t{i}")).unwrap();
            assert_eq!(store.ciphertext_count(), 1, "table t{i}");
        }
    }

    #[test]
    fn missing_last_segment_is_tolerated_but_a_gap_is_corruption() {
        let dir = TempDir::new("missingseg");
        // A tiny capacity puts every batch in its own segment.
        let config = SegmentLogConfig::new(&dir.0).with_segment_bytes(64);
        {
            let backend = SegmentLogBackend::open(config.clone()).unwrap();
            let mut store = backend.open_table("t").unwrap();
            for time in 0..4 {
                store
                    .append_batch(time, &[ct(time as u8, 64)])
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        }
        assert_eq!(std::fs::read_dir(dir.0.join("t")).unwrap().count(), 4);

        // Crash between rollover and the first acknowledged frame of the new
        // segment: the last segment vanishes, nothing acknowledged did.
        std::fs::remove_file(dir.0.join("t").join(segment_file_name(3))).unwrap();
        let backend = SegmentLogBackend::open(config.clone()).unwrap();
        let mut store = backend.open_table("t").unwrap();
        assert_eq!(store.ciphertext_count(), 3);
        // Appends continue (re-creating the missing index).
        store.append_batch(9, &[ct(9, 64)]).unwrap().wait().unwrap();
        drop(store);

        // A hole *below* the last segment is durable data gone missing.
        std::fs::remove_file(dir.0.join("t").join(segment_file_name(1))).unwrap();
        let backend = SegmentLogBackend::open(config).unwrap();
        let err = backend.open_table("t").unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { .. }),
            "a segment-index gap must surface as corruption: {err}"
        );
    }
}
