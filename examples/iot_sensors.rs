//! The paper's motivating scenario (§1): an IoT provider backs up building
//! sensor events to an encrypted database maintained by the building admin.
//! With the default synchronize-upon-receipt behaviour, the admin learns when
//! someone walked past each sensor just from the backup *timing*; with
//! DP-Sync's DP-ANT strategy, the upload times reveal (almost) nothing.
//!
//! The example simulates one person entering the building at 07:00 and
//! triggering three sensors ten seconds apart (scaled here to one-minute
//! ticks), then compares the update patterns produced by SUR and DP-ANT.
//!
//! Run with: `cargo run --example iot_sensors`

use dp_sync::core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, SyncStrategy, SynchronizeUponReceipt,
};
use dp_sync::core::{Owner, Timestamp};
use dp_sync::crypto::MasterKey;
use dp_sync::dp::{DpRng, Epsilon};
use dp_sync::edb::engines::ObliDbEngine;
use dp_sync::edb::sogdb::SecureOutsourcedDatabase;
use dp_sync::edb::{DataType, Row, Schema, Value};

/// One day of one-minute ticks.
const HORIZON: u64 = 1_440;

fn sensor_schema() -> Schema {
    Schema::from_pairs(&[
        ("event_time", DataType::Timestamp),
        ("sensor_id", DataType::Int),
        ("floor", DataType::Int),
    ])
}

/// The sensor events: a person enters at minute 420 (07:00) and trips the
/// three third-floor sensors in consecutive minutes.
fn sensor_events() -> Vec<(u64, Row)> {
    vec![
        (
            420,
            Row::new(vec![Value::Timestamp(420), Value::Int(31), Value::Int(3)]),
        ),
        (
            421,
            Row::new(vec![Value::Timestamp(421), Value::Int(32), Value::Int(3)]),
        ),
        (
            422,
            Row::new(vec![Value::Timestamp(422), Value::Int(33), Value::Int(3)]),
        ),
    ]
}

fn run_with(strategy: Box<dyn SyncStrategy>, label: &str) {
    let mut rng = DpRng::seed_from_u64(7);
    let master = MasterKey::generate(&mut rng);
    let engine = ObliDbEngine::new(&master);
    let mut owner = Owner::new("sensor_events", sensor_schema(), &master, strategy);
    owner
        .setup(vec![], &engine, &mut rng)
        .expect("setup succeeds");

    let events = sensor_events();
    for t in 1..=HORIZON {
        let arrivals: Vec<Row> = events
            .iter()
            .filter(|(time, _)| *time == t)
            .map(|(_, row)| row.clone())
            .collect();
        owner
            .tick(Timestamp(t), &arrivals, &engine, &mut rng)
            .expect("tick succeeds");
    }

    let view = engine.adversary_view();
    println!("--- {label} ---");
    println!(
        "updates observed by the building admin: {} (total volume {})",
        view.update_pattern().len(),
        view.update_pattern().total_volume()
    );

    // What can the admin infer about the 07:00 entry?  Compare the upload
    // activity in the ten minutes around the event with the activity in an
    // arbitrary quiet window (03:00-03:10): if uploads only ever happen when
    // sensors fire, the two differ starkly; if uploads happen on a
    // data-independent schedule, they look alike.
    let uploads_in = |from: u64, to: u64| {
        view.update_events()
            .iter()
            .filter(|e| (from..=to).contains(&e.time))
            .count()
    };
    let around_event = uploads_in(416, 426);
    let quiet_window = uploads_in(180, 190);
    println!(
        "uploads in the 10 minutes around the 07:00 entry: {around_event}, in a quiet 03:00 window: {quiet_window}"
    );
    if around_event > 0 && quiet_window == 0 {
        println!(
            "=> upload timing mirrors the sensor events — the admin learns when someone entered\n"
        );
    } else {
        println!("=> upload timing is indistinguishable from any other window — the entry time is hidden\n");
    }
}

fn main() {
    println!("IoT sensor backup: what does the building admin learn from upload timings?\n");

    // Synchronize-upon-receipt: every sensor event is backed up immediately.
    run_with(
        Box::new(SynchronizeUponReceipt::new()),
        "SUR (backup immediately)",
    );

    // DP-ANT with epsilon = 0.5, threshold 30, and an hourly flush: uploads
    // are decoupled from event times with a differential-privacy guarantee.
    run_with(
        Box::new(AboveNoisyThresholdStrategy::with_flush(
            Epsilon::new_unchecked(0.5),
            30,
            Some(CacheFlush::new(60, 5)),
        )),
        "DP-ANT (DP-Sync)",
    );
}
