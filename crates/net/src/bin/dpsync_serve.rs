//! `dpsync-serve` — the outsourced DP-Sync server as a standalone process.
//!
//! Runs an [`dpsync_net::EdbTcpServer`] in factory mode: every session
//! (plain connections carry one; multiplexed connections carry many) asks
//! for the engine it wants (`ObliDB` or `Crypt-ε`, in-memory or durable
//! segment-log storage), so independent experiment runs — e.g. the ten
//! `strategy × engine` simulations of `exp_table5 --transport tcp` — share
//! one server process without colliding on table names.
//!
//! Usage:
//!
//! ```text
//! dpsync-serve [--addr 127.0.0.1:7450] [--disk-root DIR] [--io-deadline-secs N] [--workers N]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7450`, the address the
//!   experiment binaries' `--transport tcp` connects to by default).
//! * `--disk-root` — enables disk-backed sessions: each gets a scratch
//!   subdirectory under `DIR`, removed when the session ends.  Without it,
//!   disk session requests are rejected.
//! * `--io-deadline-secs` — per-connection progress deadline (default 10).
//! * `--workers` — engine worker threads behind the reactor (default 0 =
//!   available parallelism).
//!
//! The process runs until killed.  Disk-session scratch directories are
//! removed when their connection ends; killing the process *mid-session*
//! skips that cleanup (signals run no destructors).  Whatever a hard kill
//! leaves behind is swept at the next startup: the server owns its
//! `--disk-root` exclusively, so any `dpsync-session-*` directory found
//! there at boot is a stale leftover and is removed before listening.

use dpsync_net::{
    sweep_stale_session_dirs, EdbTcpServer, EngineFactory, EngineProvider, ServeOptions,
    DEFAULT_SERVE_ADDR,
};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut factory = EngineFactory::default();
    let mut options = ServeOptions::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                if let Some(v) = args.get(i + 1) {
                    addr = v.clone();
                    i += 1;
                }
            }
            "--disk-root" => {
                if let Some(v) = args.get(i + 1) {
                    factory.disk_root = Some(PathBuf::from(v));
                    i += 1;
                }
            }
            "--io-deadline-secs" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    options.io_deadline = Duration::from_secs(v);
                    i += 1;
                }
            }
            "--workers" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    options.workers = v;
                    i += 1;
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: dpsync-serve [--addr {DEFAULT_SERVE_ADDR}] [--disk-root DIR] [--io-deadline-secs 10] [--workers 0]"
                );
                return;
            }
            other => {
                eprintln!("dpsync-serve: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(root) = &factory.disk_root {
        if let Err(e) = std::fs::create_dir_all(root) {
            eprintln!(
                "dpsync-serve: cannot create disk root {}: {e}",
                root.display()
            );
            std::process::exit(1);
        }
        // Reclaim scratch directories a SIGKILLed predecessor left behind.
        let swept = sweep_stale_session_dirs(root);
        if swept > 0 {
            eprintln!(
                "dpsync-serve: swept {swept} stale session director{} under {}",
                if swept == 1 { "y" } else { "ies" },
                root.display()
            );
        }
    }

    let disk_note = factory
        .disk_root
        .as_ref()
        .map(|root| format!(", disk sessions under {}", root.display()))
        .unwrap_or_else(|| ", memory sessions only".to_string());

    let server =
        match EdbTcpServer::bind_with_options(&addr, EngineProvider::Factory(factory), options) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("dpsync-serve: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };

    // The readiness line scripts wait for before connecting.
    println!(
        "dpsync-serve listening on {}{disk_note}",
        server.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until killed; the accept loop runs on its own thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
