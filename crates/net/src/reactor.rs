//! The epoll readiness reactor behind [`crate::EdbTcpServer`].
//!
//! One reactor thread owns every socket: it accepts connections, runs a
//! per-connection read state machine over the framed wire protocol, demuxes
//! frames by session id, and queues decoded requests onto a small worker
//! pool.  Workers execute engine calls (including blocking disk commits and
//! the entropy sub-protocol) and hand encoded responses back through a
//! completion queue; a [`mio::Waker`] gets the reactor out of `epoll_wait`
//! when completions land.
//!
//! # Scheduling rules
//!
//! * **Per-session serial, cross-session concurrent.**  Each logical session
//!   has a FIFO queue and at most one request in flight, so a session sees
//!   exactly the request/response interleaving of a dedicated blocking
//!   connection.  Different sessions — whether on one socket or many — run
//!   concurrently on the worker pool.
//! * **Backpressure.**  A connection may have at most
//!   [`MAX_PENDING_REQUESTS`] requests queued+running and roughly
//!   [`OUTBOUND_PAUSE_BYTES`] of un-drained response bytes; beyond either
//!   bound the reactor stops *reading* that socket (drops its `READABLE`
//!   interest) until the client catches up.  TCP flow control then pushes
//!   the stall back to the client, so one unread connection can neither
//!   starve others nor grow server memory without bound.  Reading resumes
//!   once both backlogs halve — re-checked on every completion *and* every
//!   outbound flush, so a bursty client that later drains its responses
//!   always gets its socket back — or immediately if a session is owed an
//!   entropy reply (the reply must be readable for the in-flight query to
//!   finish).  Session state is bounded too: a connection may hold at most
//!   [`MAX_SESSIONS_PER_CONN`] logical sessions; Hellos on fresh ids past
//!   that are rejected without allocating.
//! * **Deadlines.**  A connection idling *between* frames with nothing
//!   outstanding may sit forever.  One that stalls mid-frame, stops
//!   draining queued responses, or owes an entropy reply is closed once it
//!   makes no byte progress for [`crate::ServeOptions::io_deadline`].
//! * **Entropy.**  `Π_Query` draws randomness from the client.  The worker
//!   running the query parks on a per-session [`EntropyBridge`]; the reactor
//!   ships the `EntropyRequest` frame out and routes the client's
//!   `EntropyReply` back to the bridge.  While a session owes a reply, any
//!   other frame on *that session* is a protocol violation and drops the
//!   connection without releasing the query result — exactly the threaded
//!   server's behaviour — while other sessions on the socket are unaffected
//!   until the drop itself.

use crate::frame::{
    check_frame, encode_frame_mux_into, frame_session, payload_len, FrameError, FRAME_HEADER_LEN,
    SESSION_DEFAULT,
};
use crate::server::{
    engine_info, open_session, EngineProvider, ServeOptions, ServerStats, Session,
};
use crate::wire::{EntropyDraw, Request, Response, SessionRequest};
use dpsync_edb::emm::IndexDef;
use dpsync_edb::views::ViewDef;
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token, Waker};
use rand::RngCore;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// First token handed to a connection; tokens are never reused, so a stale
/// completion or event can never touch a different connection.
const CONN_BASE: usize = 2;

/// Requests a single connection may have queued or running across all of its
/// sessions before the reactor stops reading it.
pub const MAX_PENDING_REQUESTS: usize = 128;

/// Logical sessions one connection may accumulate.  A Hello on a fresh
/// session id past this bound is rejected without allocating any state
/// (sessions live as long as their connection, and in factory mode each
/// one owns a whole engine — without a cap a hostile client could grow
/// server memory without bound by iterating cheap Hellos).
pub const MAX_SESSIONS_PER_CONN: usize = 4096;

/// Un-drained outbound bytes a connection may accumulate before the reactor
/// stops reading it (responses already produced still flush as the client
/// drains).  Requests already admitted (at most [`MAX_PENDING_REQUESTS`])
/// still complete after the pause, so a connection's outbound backlog is
/// bounded by this plus one response per admitted request — the invariant
/// the backpressure suite pins with
/// [`crate::ServerStats::peak_outbound_bytes`].
pub const OUTBOUND_PAUSE_BYTES: usize = 1 << 20;

/// Bytes one readable event may consume before yielding to other
/// connections (level-triggered epoll re-fires for the remainder).
const READ_BUDGET: usize = 256 << 10;

// ---------------------------------------------------------------------------
// Worker-side plumbing
// ---------------------------------------------------------------------------

enum BridgeState {
    Idle,
    Awaiting,
    Reply(Vec<u8>),
    Failed,
}

/// Hand-off point for the entropy sub-protocol: the worker running a query
/// parks here between sending an `EntropyRequest` and receiving the reply
/// the reactor routes back.  Failure is permanent (connection closed or
/// server shutting down) and unblocks the worker immediately.
struct EntropyBridge {
    state: Mutex<BridgeState>,
    cv: Condvar,
}

impl EntropyBridge {
    fn new() -> Self {
        Self {
            state: Mutex::new(BridgeState::Idle),
            cv: Condvar::new(),
        }
    }

    /// Worker: arm the bridge *before* the request frame is queued, so a
    /// fast reply can never race past an un-armed bridge.  `false` if the
    /// bridge already failed.
    fn begin(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            BridgeState::Failed => false,
            _ => {
                *state = BridgeState::Awaiting;
                true
            }
        }
    }

    /// Worker: park until the reactor delivers a reply or fails the bridge.
    fn wait(&self) -> Option<Vec<u8>> {
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                BridgeState::Awaiting => {
                    state = self.cv.wait(state).unwrap();
                }
                BridgeState::Reply(_) => {
                    let BridgeState::Reply(bytes) =
                        std::mem::replace(&mut *state, BridgeState::Idle)
                    else {
                        unreachable!()
                    };
                    return Some(bytes);
                }
                BridgeState::Failed => return None,
                BridgeState::Idle => return None,
            }
        }
    }

    /// Reactor: deliver the client's reply (only meaningful while awaiting).
    fn deliver(&self, bytes: Vec<u8>) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, BridgeState::Awaiting) {
            *state = BridgeState::Reply(bytes);
            self.cv.notify_all();
        }
    }

    /// Reactor: permanently fail the bridge (connection closed / shutdown).
    fn fail(&self) {
        *self.state.lock().unwrap() = BridgeState::Failed;
        self.cv.notify_all();
    }
}

/// One unit of work for the pool.
enum WorkItem {
    /// Run `open_session` (which may build a disk-backed engine) for a
    /// hello.
    Open {
        conn: usize,
        session: u32,
        hello: SessionRequest,
    },
    /// Run one engine call for an open session.
    Call {
        conn: usize,
        session: u32,
        engine: Arc<Session>,
        bridge: Arc<EntropyBridge>,
        request: Request,
    },
}

struct WorkQueue {
    inner: Mutex<(VecDeque<WorkItem>, bool)>,
    cv: Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        Self {
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        let mut inner = self.inner.lock().unwrap();
        if inner.1 {
            return; // shutting down: drop it, the bridges are failed anyway
        }
        inner.0.push_back(item);
        self.cv.notify_one();
    }

    /// `None` means shutdown.  Remaining queued items are dropped, not
    /// drained, so shutdown never waits behind a backlog of disk commits.
    fn pop(&self) -> Option<WorkItem> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.1 {
                return None;
            }
            if let Some(item) = inner.0.pop_front() {
                return Some(item);
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    fn shutdown(&self) {
        self.inner.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// A completed unit of work, flowing worker → reactor.
enum Completion {
    /// An `EntropyRequest` frame to ship; the session stays in flight.
    Frame {
        conn: usize,
        session: u32,
        bytes: Vec<u8>,
    },
    /// The in-flight request finished.
    Done {
        conn: usize,
        session: u32,
        /// Encoded response payload; `None` means close without replying
        /// (failed entropy exchange or a caught panic).
        reply: Option<Vec<u8>>,
        /// A session opened by a hello, to install as the session's engine.
        engine: Option<Arc<Session>>,
        /// Drop the whole connection (panic, or a query whose entropy
        /// stream died — its result must not be released).
        close_conn: bool,
    },
}

struct CompletionSink {
    queue: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl CompletionSink {
    fn send(&self, completion: Completion) {
        self.queue.lock().unwrap().push(completion);
        let _ = self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().unwrap())
    }
}

/// The worker side of the entropy sub-protocol: a [`RngCore`] whose draws
/// round-trip to the client through the reactor.  Draws map 1:1 onto the
/// client RNG's methods, which is what keeps a fixed-seed client RNG stream
/// byte-identical between transports.  `RngCore` has no error channel, so a
/// dead bridge parks the proxy in a failed state (zeros let the engine
/// unwind normally) and the worker closes the connection without sending a
/// result.
struct EntropyProxy<'a> {
    bridge: &'a EntropyBridge,
    sink: &'a CompletionSink,
    conn: usize,
    session: u32,
    failed: bool,
}

impl EntropyProxy<'_> {
    fn exchange(&mut self, draw: EntropyDraw, expected_len: usize) -> Option<Vec<u8>> {
        if self.failed {
            return None;
        }
        if !self.bridge.begin() {
            self.failed = true;
            return None;
        }
        self.sink.send(Completion::Frame {
            conn: self.conn,
            session: self.session,
            bytes: Response::EntropyRequest(draw).encode(),
        });
        match self.bridge.wait() {
            Some(bytes) if bytes.len() == expected_len => Some(bytes),
            _ => {
                self.failed = true;
                None
            }
        }
    }
}

impl RngCore for EntropyProxy<'_> {
    fn next_u32(&mut self) -> u32 {
        self.exchange(EntropyDraw::U32, 4)
            .map_or(0, |b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn next_u64(&mut self) -> u64 {
        self.exchange(EntropyDraw::U64, 8)
            .map_or(0, |b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.exchange(EntropyDraw::Fill(dest.len() as u32), dest.len()) {
            Some(bytes) => dest.copy_from_slice(&bytes),
            None => dest.fill(0),
        }
    }
}

/// Runs one engine call.  `None` means the connection must be dropped
/// without a response (the entropy stream died mid-query).
fn run_request(
    engine: &dyn dpsync_edb::sogdb::SecureOutsourcedDatabase,
    request: Request,
    bridge: &EntropyBridge,
    sink: &CompletionSink,
    conn: usize,
    session: u32,
) -> Option<Response> {
    Some(match request {
        // Hellos become `WorkItem::Open` and unsolicited entropy replies
        // are rejected at dispatch; both arms are defensive.
        Request::Hello(_) => Response::Protocol("hello already in progress".to_string()),
        Request::EntropyReply(_) => Response::Protocol("entropy reply outside a query".to_string()),
        Request::Setup {
            table,
            schema,
            records,
        } => match engine.setup(&table, schema, records) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Edb(e),
        },
        Request::Update {
            table,
            time,
            records,
        } => match engine.update(&table, time, records) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Edb(e),
        },
        Request::Query(query) => {
            let mut proxy = EntropyProxy {
                bridge,
                sink,
                conn,
                session,
                failed: false,
            };
            let result = engine.query(&query, &mut proxy);
            if proxy.failed {
                // The client vanished mid-query; the result was computed
                // from a dead RNG stream and must not be released.
                return None;
            }
            match result {
                Ok(outcome) => Response::Outcome(outcome),
                Err(e) => Response::Edb(e),
            }
        }
        Request::Supports(query) => Response::Supported(engine.supports(&query)),
        Request::TableStats(table) => Response::Stats(engine.table_stats(&table)),
        Request::AdversaryView => Response::View(engine.adversary_view()),
        Request::RegisterView { name, query } => {
            match ViewDef::new(name, query).and_then(|def| engine.register_view(&def)) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Edb(e),
            }
        }
        Request::QueryView(name) => {
            let mut proxy = EntropyProxy {
                bridge,
                sink,
                conn,
                session,
                failed: false,
            };
            let result = engine.query_view(&name, &mut proxy);
            if proxy.failed {
                // Same discipline as `Π_Query`: a result computed from a
                // dead RNG stream must not be released.
                return None;
            }
            match result {
                Ok(outcome) => Response::Outcome(outcome),
                Err(e) => Response::Edb(e),
            }
        }
        Request::RegisterIndex {
            name,
            table,
            column,
        } => match IndexDef::new(name, table, column).and_then(|def| engine.register_index(&def)) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Edb(e),
        },
        Request::QueryIndexed { name, query } => {
            let mut proxy = EntropyProxy {
                bridge,
                sink,
                conn,
                session,
                failed: false,
            };
            let result = engine.query_indexed(&name, &query, &mut proxy);
            if proxy.failed {
                // Same discipline as `Π_Query`: a result computed from a
                // dead RNG stream must not be released.
                return None;
            }
            match result {
                Ok(outcome) => Response::Outcome(outcome),
                Err(e) => Response::Edb(e),
            }
        }
    })
}

fn worker_loop(
    work: Arc<WorkQueue>,
    sink: Arc<CompletionSink>,
    provider: Arc<EngineProvider>,
    panics: Arc<AtomicUsize>,
) {
    while let Some(item) = work.pop() {
        let completion = match item {
            WorkItem::Open {
                conn,
                session,
                hello,
            } => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    open_session(&provider, hello)
                }));
                match result {
                    Ok(Ok(opened)) => {
                        let opened = Arc::new(opened);
                        let reply = engine_info(opened.engine()).encode();
                        Completion::Done {
                            conn,
                            session,
                            reply: Some(reply),
                            engine: Some(opened),
                            close_conn: false,
                        }
                    }
                    Ok(Err(message)) => Completion::Done {
                        conn,
                        session,
                        reply: Some(Response::Protocol(message).encode()),
                        engine: None,
                        close_conn: false,
                    },
                    Err(_) => {
                        panics.fetch_add(1, Ordering::SeqCst);
                        Completion::Done {
                            conn,
                            session,
                            reply: None,
                            engine: None,
                            close_conn: true,
                        }
                    }
                }
            }
            WorkItem::Call {
                conn,
                session,
                engine,
                bridge,
                request,
            } => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_request(engine.engine(), request, &bridge, &sink, conn, session)
                }));
                match result {
                    Ok(Some(response)) => Completion::Done {
                        conn,
                        session,
                        reply: Some(response.encode()),
                        engine: None,
                        close_conn: false,
                    },
                    Ok(None) => Completion::Done {
                        conn,
                        session,
                        reply: None,
                        engine: None,
                        close_conn: true,
                    },
                    Err(_) => {
                        panics.fetch_add(1, Ordering::SeqCst);
                        Completion::Done {
                            conn,
                            session,
                            reply: None,
                            engine: None,
                            close_conn: true,
                        }
                    }
                }
            }
        };
        sink.send(completion);
    }
}

// ---------------------------------------------------------------------------
// Reactor-side connection state
// ---------------------------------------------------------------------------

/// Where in a frame the connection's read cursor is.
enum ReadPhase {
    Header {
        buf: [u8; FRAME_HEADER_LEN],
        have: usize,
    },
    Payload {
        header: [u8; FRAME_HEADER_LEN],
        buf: Vec<u8>,
        have: usize,
    },
}

impl ReadPhase {
    fn start() -> Self {
        ReadPhase::Header {
            buf: [0u8; FRAME_HEADER_LEN],
            have: 0,
        }
    }

    fn mid_frame(&self) -> bool {
        match self {
            ReadPhase::Header { have, .. } => *have > 0,
            ReadPhase::Payload { .. } => true,
        }
    }
}

/// An item in a session's FIFO queue.
enum Queued {
    /// A decoded request awaiting its turn.
    Msg(Request),
    /// A protocol error to emit in order (bad message in a sound frame).
    Reject(String),
}

struct SessionState {
    engine: Option<Arc<Session>>,
    bridge: Arc<EntropyBridge>,
    queue: VecDeque<Queued>,
    in_flight: bool,
    /// The reactor has shipped an `EntropyRequest` and the next frame on
    /// this session must be the reply.
    awaiting_entropy: bool,
}

impl SessionState {
    fn new() -> Self {
        Self {
            engine: None,
            bridge: Arc::new(EntropyBridge::new()),
            queue: VecDeque::new(),
            in_flight: false,
            awaiting_entropy: false,
        }
    }
}

struct Conn {
    stream: TcpStream,
    phase: ReadPhase,
    out: Vec<u8>,
    out_cursor: usize,
    sessions: HashMap<u32, SessionState>,
    /// Requests queued or in flight across all sessions.
    pending: usize,
    /// Sessions currently owed an entropy reply.
    awaiting_entropy: usize,
    /// Reading paused by backpressure.
    paused: bool,
    /// A framing error queued its courtesy reply; flush, then close.
    close_after_flush: bool,
    last_progress: Instant,
    /// `(read, write)` interests currently registered with epoll; `None`
    /// while fully deregistered.
    registered: Option<(bool, bool)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            phase: ReadPhase::start(),
            out: Vec::new(),
            out_cursor: 0,
            sessions: HashMap::new(),
            pending: 0,
            awaiting_entropy: 0,
            paused: false,
            close_after_flush: false,
            last_progress: Instant::now(),
            registered: Some((true, false)),
        }
    }

    fn out_len(&self) -> usize {
        self.out.len() - self.out_cursor
    }

    /// Whether the peer currently owes us progress (as opposed to idling
    /// cleanly between frames).
    fn peer_owes_progress(&self) -> bool {
        self.phase.mid_frame() || self.out_len() > 0 || self.awaiting_entropy > 0
    }
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct ReactorHandle {
    pub(crate) thread: JoinHandle<()>,
    pub(crate) waker: Arc<Waker>,
}

/// Binds the reactor to an already-listening std socket and spawns the
/// reactor thread plus its worker pool.
pub(crate) fn spawn(
    listener: std::net::TcpListener,
    provider: Arc<EngineProvider>,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
    panics: Arc<AtomicUsize>,
    stats: Arc<ServerStats>,
) -> io::Result<ReactorHandle> {
    let poll = Poll::new()?;
    let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
    let mut listener = TcpListener::from_std(listener)?;
    poll.registry()
        .register(&mut listener, LISTENER, Interest::READABLE)?;

    let work = Arc::new(WorkQueue::new());
    let sink = Arc::new(CompletionSink {
        queue: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });

    let worker_count = if options.workers > 0 {
        options.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    };
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let work = Arc::clone(&work);
        let sink = Arc::clone(&sink);
        let provider = Arc::clone(&provider);
        let panics = Arc::clone(&panics);
        workers.push(
            std::thread::Builder::new()
                .name(format!("dpsync-net-worker-{i}"))
                .spawn(move || worker_loop(work, sink, provider, panics))?,
        );
    }

    let reactor = Reactor {
        poll,
        listener,
        conns: HashMap::new(),
        next_token: CONN_BASE,
        options,
        shutdown,
        stats,
        work,
        sink,
        workers,
    };
    let thread = std::thread::Builder::new()
        .name("dpsync-net-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle { thread, waker })
}

struct Reactor {
    poll: Poll,
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    work: Arc<WorkQueue>,
    sink: Arc<CompletionSink>,
    workers: Vec<JoinHandle<()>>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        while !self.shutdown.load(Ordering::SeqCst) {
            if self
                .poll
                .poll(&mut events, Some(self.options.poll_interval))
                .is_err()
            {
                break;
            }
            let batch: Vec<(Token, bool, bool)> = events
                .iter()
                .map(|e| (e.token(), e.is_readable(), e.is_writable()))
                .collect();
            for (token, readable, writable) in batch {
                match token {
                    LISTENER => self.accept_ready(),
                    WAKER => { /* completions drained below */ }
                    Token(id) => {
                        if writable {
                            self.try_flush(id);
                        }
                        if readable {
                            self.conn_readable(id);
                        }
                    }
                }
            }
            for completion in self.sink.drain() {
                self.handle_completion(completion);
            }
            self.reap_stalled();
        }
        // Shutdown: unblock the pool (dropping queued work), fail every
        // bridge so parked query workers unwind, then join the pool before
        // dropping connection state (and with it the session directories).
        self.work.shutdown();
        for conn in self.conns.values() {
            for session in conn.sessions.values() {
                session.bridge.fail();
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        continue; // drop it; the loop ends at WouldBlock
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream);
                    if self
                        .poll
                        .registry()
                        .register(&mut conn.stream, Token(id), Interest::READABLE)
                        .is_ok()
                    {
                        self.conns.insert(id, conn);
                        self.stats.note_connections(self.conns.len());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // transient (e.g. EMFILE): retry next event
            }
        }
    }

    fn conn_readable(&mut self, id: usize) {
        let mut budget = READ_BUDGET;
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.paused || conn.close_after_flush {
                return;
            }
            // `stream` and `phase` are disjoint fields, so the read target
            // can live inside the state machine.
            let stream = &mut conn.stream;
            let read = match &mut conn.phase {
                ReadPhase::Header { buf, have } => stream.read(&mut buf[*have..]),
                ReadPhase::Payload { buf, have, .. } => stream.read(&mut buf[*have..]),
            };
            match read {
                Ok(0) => {
                    // EOF — clean between frames or dead mid-frame; either
                    // way the connection is over.
                    self.close(id, false);
                    return;
                }
                Ok(n) => {
                    conn.last_progress = Instant::now();
                    budget = budget.saturating_sub(n);
                    // Advance the state machine; a completed frame pops out.
                    let mut frame: Option<([u8; FRAME_HEADER_LEN], Vec<u8>)> = None;
                    match &mut conn.phase {
                        ReadPhase::Header { buf, have } => {
                            *have += n;
                            if *have == FRAME_HEADER_LEN {
                                let header = *buf;
                                match payload_len(header) {
                                    Err(e) => {
                                        self.framing_error(id, &e);
                                        return;
                                    }
                                    Ok(0) => {
                                        conn.phase = ReadPhase::start();
                                        frame = Some((header, Vec::new()));
                                    }
                                    Ok(len) => {
                                        conn.phase = ReadPhase::Payload {
                                            header,
                                            buf: vec![0u8; len],
                                            have: 0,
                                        };
                                    }
                                }
                            }
                        }
                        ReadPhase::Payload { header, buf, have } => {
                            *have += n;
                            if *have == buf.len() {
                                let header = *header;
                                let payload = std::mem::take(buf);
                                conn.phase = ReadPhase::start();
                                frame = Some((header, payload));
                            }
                        }
                    }
                    if let Some((header, payload)) = frame {
                        if let Err(e) = check_frame(header, &payload) {
                            self.framing_error(id, &e);
                            return;
                        }
                        self.process_frame(id, frame_session(header), payload);
                    }
                    if budget == 0 {
                        return; // level-triggered epoll re-fires for the rest
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(id, false);
                    return;
                }
            }
        }
    }

    /// The stream offset can no longer be trusted: one courtesy error frame
    /// (on the default session — the received header is not trustworthy),
    /// then disconnect once it flushes.
    fn framing_error(&mut self, id: usize, error: &FrameError) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let reply = Response::Protocol(format!("bad frame: {error}")).encode();
        encode_frame_mux_into(SESSION_DEFAULT, &reply, &mut conn.out);
        conn.close_after_flush = true;
        self.note_outbound(id);
        self.try_flush(id);
    }

    fn process_frame(&mut self, id: usize, session: u32, payload: Vec<u8>) {
        const NEED_HELLO: &str = "the first message must be a hello";
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        match Request::decode(&payload) {
            Err(e) => {
                let message = format!("bad message: {e}");
                match conn.sessions.get_mut(&session) {
                    Some(state) if state.awaiting_entropy => {
                        // Mid-entropy garbage: the query's RNG stream is
                        // broken; drop the connection without a result.
                        self.close(id, false);
                        return;
                    }
                    Some(state) => {
                        state.queue.push_back(Queued::Reject(message));
                        conn.pending += 1;
                        self.pump_session(id, session);
                    }
                    None => {
                        // The frame itself was sound, so the stream is
                        // still synchronized: report and keep serving.
                        self.queue_response(id, session, Response::Protocol(message));
                    }
                }
            }
            Ok(Request::EntropyReply(bytes)) => match conn.sessions.get_mut(&session) {
                Some(state) if state.awaiting_entropy => {
                    state.awaiting_entropy = false;
                    conn.awaiting_entropy -= 1;
                    state.bridge.deliver(bytes);
                }
                Some(state) => {
                    // Unsolicited; reject in order behind queued work.
                    state
                        .queue
                        .push_back(Queued::Msg(Request::EntropyReply(bytes)));
                    conn.pending += 1;
                    self.pump_session(id, session);
                }
                None => {
                    self.queue_response(id, session, Response::Protocol(NEED_HELLO.to_string()));
                }
            },
            Ok(Request::Hello(hello)) => {
                if !conn.sessions.contains_key(&session)
                    && conn.sessions.len() >= MAX_SESSIONS_PER_CONN
                {
                    // Reject before allocating: iterating fresh session ids
                    // must not grow per-connection state.
                    self.queue_response(
                        id,
                        session,
                        Response::Protocol(format!(
                            "session limit reached ({MAX_SESSIONS_PER_CONN} per connection)"
                        )),
                    );
                } else {
                    let state = conn
                        .sessions
                        .entry(session)
                        .or_insert_with(SessionState::new);
                    if state.awaiting_entropy {
                        self.close(id, false);
                        return;
                    }
                    state.queue.push_back(Queued::Msg(Request::Hello(hello)));
                    conn.pending += 1;
                    self.pump_session(id, session);
                }
            }
            Ok(request) => match conn.sessions.get_mut(&session) {
                Some(state) if state.awaiting_entropy => {
                    self.close(id, false);
                    return;
                }
                Some(state) => {
                    state.queue.push_back(Queued::Msg(request));
                    conn.pending += 1;
                    self.pump_session(id, session);
                }
                None => {
                    self.queue_response(id, session, Response::Protocol(NEED_HELLO.to_string()));
                }
            },
        }
        self.update_backpressure(id);
    }

    /// Starts the next queued item for a session unless one is in flight.
    fn pump_session(&mut self, id: usize, session: u32) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let Some(state) = conn.sessions.get_mut(&session) else {
                return;
            };
            if state.in_flight {
                return;
            }
            let Some(item) = state.queue.pop_front() else {
                return;
            };
            match item {
                Queued::Reject(message) => {
                    conn.pending -= 1;
                    self.queue_response(id, session, Response::Protocol(message));
                }
                Queued::Msg(Request::Hello(hello)) => {
                    state.in_flight = true;
                    self.work.push(WorkItem::Open {
                        conn: id,
                        session,
                        hello,
                    });
                    return;
                }
                Queued::Msg(request) => match &state.engine {
                    None => {
                        conn.pending -= 1;
                        self.queue_response(
                            id,
                            session,
                            Response::Protocol("the first message must be a hello".to_string()),
                        );
                    }
                    Some(engine) => {
                        if matches!(request, Request::EntropyReply(_)) {
                            conn.pending -= 1;
                            self.queue_response(
                                id,
                                session,
                                Response::Protocol("entropy reply outside a query".to_string()),
                            );
                            continue;
                        }
                        let engine = Arc::clone(engine);
                        let bridge = Arc::clone(&state.bridge);
                        state.in_flight = true;
                        self.work.push(WorkItem::Call {
                            conn: id,
                            session,
                            engine,
                            bridge,
                            request,
                        });
                        return;
                    }
                },
            }
        }
    }

    fn handle_completion(&mut self, completion: Completion) {
        match completion {
            Completion::Frame {
                conn: id,
                session,
                bytes,
            } => {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return; // the connection died while the worker ran
                };
                if let Some(state) = conn.sessions.get_mut(&session) {
                    if !state.awaiting_entropy {
                        state.awaiting_entropy = true;
                        conn.awaiting_entropy += 1;
                    }
                }
                encode_frame_mux_into(session, &bytes, &mut conn.out);
                self.note_outbound(id);
                self.try_flush(id);
                self.update_backpressure(id);
            }
            Completion::Done {
                conn: id,
                session,
                reply,
                engine,
                close_conn,
            } => {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if let Some(state) = conn.sessions.get_mut(&session) {
                    state.in_flight = false;
                    if state.awaiting_entropy {
                        // The worker gave up (wrong-length or failed reply)
                        // while the reactor still expected one; keep the
                        // accounting consistent for teardown.
                        state.awaiting_entropy = false;
                        conn.awaiting_entropy -= 1;
                    }
                    if let Some(engine) = engine {
                        state.engine = Some(engine);
                    }
                }
                conn.pending = conn.pending.saturating_sub(1);
                if close_conn {
                    self.close(id, false);
                    return;
                }
                if let Some(bytes) = reply {
                    self.queue_response_bytes(id, session, bytes);
                }
                self.pump_session(id, session);
                self.update_backpressure(id);
            }
        }
    }

    fn queue_response(&mut self, id: usize, session: u32, response: Response) {
        self.queue_response_bytes(id, session, response.encode());
    }

    fn queue_response_bytes(&mut self, id: usize, session: u32, bytes: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        encode_frame_mux_into(session, &bytes, &mut conn.out);
        self.note_outbound(id);
        self.try_flush(id);
    }

    fn note_outbound(&mut self, id: usize) {
        if let Some(conn) = self.conns.get(&id) {
            self.stats.note_outbound(conn.out_len());
        }
    }

    fn try_flush(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.out_cursor < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_cursor..]) {
                Ok(0) => {
                    self.close(id, false);
                    return;
                }
                Ok(n) => {
                    conn.out_cursor += n;
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(id, false);
                    return;
                }
            }
        }
        if conn.out_cursor == conn.out.len() {
            conn.out.clear();
            conn.out_cursor = 0;
            if conn.close_after_flush {
                self.close(id, false);
                return;
            }
        } else if conn.out_cursor > (64 << 10) {
            // Reclaim the drained prefix so a slow reader cannot pin the
            // full history of its responses in memory.
            conn.out.drain(..conn.out_cursor);
            conn.out_cursor = 0;
        }
        // A drained outbound buffer is a resume condition: without this a
        // connection paused on `out_len` alone (all admitted requests
        // already completed) would stay paused forever once the client
        // catches up — nothing else re-evaluates `paused` after the final
        // WRITABLE event.
        self.update_backpressure(id);
    }

    fn update_backpressure(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.paused {
            // Hysteresis: resume only once the backlog has halved, so a
            // borderline client does not thrash the epoll registration.
            // An owed entropy reply overrides the hysteresis entirely: the
            // reply must be readable for the in-flight query to finish —
            // and `pending` can never drain below the threshold while that
            // query blocks its session's queue.
            if conn.awaiting_entropy > 0
                || (conn.pending <= MAX_PENDING_REQUESTS / 2
                    && conn.out_len() <= OUTBOUND_PAUSE_BYTES / 2)
            {
                conn.paused = false;
            }
        } else if (conn.pending >= MAX_PENDING_REQUESTS || conn.out_len() >= OUTBOUND_PAUSE_BYTES)
            && conn.awaiting_entropy == 0
        {
            // Never pause while a session owes an entropy reply: the reply
            // must be readable for the in-flight query to finish at all.
            conn.paused = true;
        }
        self.update_interest(id);
    }

    fn update_interest(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let want_read = !conn.paused && !conn.close_after_flush;
        let want_write = conn.out_len() > 0;
        if conn.registered == Some((want_read, want_write)) {
            return;
        }
        let registry = self.poll.registry();
        if !want_read && !want_write {
            // Fully quiesced (paused with nothing to send): take the socket
            // out of epoll entirely; level-triggered readiness would
            // otherwise spin.  The reap scan still covers it.
            if conn.registered.is_some() && registry.deregister(&mut conn.stream).is_ok() {
                conn.registered = None;
            }
            return;
        }
        let interest = match (want_read, want_write) {
            (true, true) => Interest::READABLE | Interest::WRITABLE,
            (true, false) => Interest::READABLE,
            (false, _) => Interest::WRITABLE,
        };
        let applied = if conn.registered.is_some() {
            registry.reregister(&mut conn.stream, Token(id), interest)
        } else {
            registry.register(&mut conn.stream, Token(id), interest)
        };
        if applied.is_ok() {
            conn.registered = Some((want_read, want_write));
        }
    }

    fn reap_stalled(&mut self) {
        let deadline = self.options.io_deadline;
        let stalled: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                conn.peer_owes_progress() && conn.last_progress.elapsed() > deadline
            })
            .map(|(id, _)| *id)
            .collect();
        for id in stalled {
            self.close(id, true);
        }
    }

    fn close(&mut self, id: usize, reaped: bool) {
        if let Some(conn) = self.conns.remove(&id) {
            for session in conn.sessions.values() {
                session.bridge.fail();
            }
            if reaped {
                self.stats.note_reaped();
            }
            self.stats.note_connections(self.conns.len());
            // Dropping the stream closes the descriptor, which removes any
            // epoll registration implicitly.
        }
    }
}
