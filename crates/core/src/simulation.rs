//! The end-to-end simulation driver.
//!
//! A simulation replays a timestamped workload through the full DP-Sync
//! stack: one [`Owner`] per table (each running its own copy of the
//! configured strategy), one shared engine, and an [`Analyst`] that poses the
//! evaluation queries on a fixed schedule.  The driver also maintains the
//! plaintext logical database so that every query answer can be scored
//! against the ground truth, and samples storage sizes for the data-volume
//! figures.  Its output, a [`SimulationReport`], is what the experiment
//! binaries in `dpsync-bench` turn into the paper's tables and figures.
//!
//! # Sequential vs. sharded vs. sparse execution
//!
//! Three drivers share the same semantics:
//!
//! * [`Simulation::run`] — the sequential reference: owners tick in workload
//!   order on the calling thread.
//! * [`Simulation::run_parallel`] — one worker thread per table owner, with a
//!   barrier at every time unit.  The barrier is what preserves Definition 2:
//!   the adversary-visible update pattern is a set of `(t, |γ_t|)` events,
//!   and since no owner enters time unit `t + 1` before every owner finished
//!   `t` (and the analyst only runs between ticks), the transcript the server
//!   assembles is identical to the sequential driver's — only the
//!   intra-tick interleaving of independent per-table uploads differs, and
//!   the server storage merges those into a canonical order.
//! * [`Simulation::run_sparse`] (in [`crate::sparse`]) — an event-driven
//!   scheduler that skips ticks on which no owner has work, built for
//!   10^5–10^6 mostly-idle owners; see ARCHITECTURE.md §9.
//!
//! With fixed seeds all drivers produce identical reports up to measured
//! wall-clock fields; see [`SimulationReport::normalized`].
//!
//! # Owner churn
//!
//! A [`TableWorkload`] may give its owner a `join_time` and/or `leave_time`:
//! the owner's `Π_Setup` then runs at the join tick instead of during
//! preparation, followed immediately by a normal tick (so records arriving
//! exactly at the join tick are delivered, not dropped), and the owner is
//! never ticked outside its active window `join_time ≤ t ≤ leave_time`.
//! All three drivers apply identical churn semantics.

use crate::analyst::{Analyst, NamedQuery};
use crate::metrics::{SimulationReport, SizeSample};
use crate::owner::Owner;
use crate::strategy::{StrategyKind, SyncStrategy};
use crate::timeline::Timestamp;
use dpsync_crypto::MasterKey;
use dpsync_dp::DpRng;
use dpsync_edb::exec::PlainDatabase;
use dpsync_edb::planner::LeakagePolicy;
use dpsync_edb::sogdb::{EdbError, SecureOutsourcedDatabase};
use dpsync_edb::{Query, Row, Schema};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::thread;

/// The workload for one outsourced table.
#[derive(Debug, Clone)]
pub struct TableWorkload {
    /// Table name ("yellow", "green").
    pub table: String,
    /// Table schema.
    pub schema: Schema,
    /// Initial database `D₀`.
    pub initial_rows: Vec<Row>,
    /// Arrivals per time unit: `arrivals[t - 1]` are the rows received at
    /// time `t` (empty vectors model `u_t = ∅`).  Arrivals indexed outside
    /// the owner's active window (see [`TableWorkload::active_at`]) are
    /// skipped by every driver.
    pub arrivals: Vec<Vec<Row>>,
    /// The tick at which the owner joins the simulation.  `0` (the default)
    /// means the owner is present from the start and `Π_Setup` runs during
    /// preparation; `J > 0` defers `Π_Setup` (and the insertion of
    /// `initial_rows` into the ground truth) to tick `J`, modelling an owner
    /// who comes online mid-run.  The join tick is part of the active
    /// window: after the deferred `Π_Setup` the owner is ticked normally, so
    /// arrivals landing exactly at tick `J` reach its cache like any others.
    pub join_time: u64,
    /// The last tick at which the owner is online, inclusive; `None` keeps
    /// the owner for the whole run.  After `leave_time` the owner is never
    /// ticked again — whatever its cache holds stays unsynced.
    pub leave_time: Option<u64>,
}

impl TableWorkload {
    /// Number of time units covered by this workload.
    pub fn horizon(&self) -> u64 {
        self.arrivals.len() as u64
    }

    /// Total rows (initial plus arrivals).
    pub fn total_rows(&self) -> u64 {
        self.initial_rows.len() as u64 + self.arrivals.iter().map(|a| a.len() as u64).sum::<u64>()
    }

    /// Whether the owner is online and tickable at time `t`: from its join
    /// tick (inclusive — a deferred `Π_Setup` runs there first, then the
    /// owner ticks normally) through its leave tick, inclusive.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.join_time && self.leave_time.is_none_or(|leave| t <= leave)
    }

    /// The rows arriving at time `t` (1-based; empty past the horizon).
    fn arrivals_at(&self, t: u64) -> &[Row] {
        self.arrivals
            .get((t - 1) as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Pose the analyst's queries every this many time units (§8 uses 360,
    /// i.e. every six hours of one-minute ticks).
    pub query_interval: u64,
    /// Sample storage sizes every this many time units (Figure 3 samples
    /// every 7200 units); a sample is always taken at the horizon.
    pub size_sample_interval: u64,
    /// The analyst's queries.
    pub queries: Vec<(String, Query)>,
    /// Master seed for every random draw in the run.
    pub seed: u64,
}

impl SimulationConfig {
    /// The evaluation defaults: queries every 360 units, sizes every 7200.
    pub fn paper_default(queries: Vec<(String, Query)>, seed: u64) -> Self {
        Self {
            query_interval: 360,
            size_sample_interval: 7200,
            queries,
            seed,
        }
    }
}

/// What the drivers need to know about one owner before the clock starts:
/// a borrowed view shared by the dense ([`TableWorkload`]) and sparse
/// ([`crate::sparse::OwnerWorkload`]) workload representations so both go
/// through one `Π_Setup` / RNG-derivation code path.
pub(crate) struct OwnerSpec<'a> {
    pub(crate) table: &'a str,
    pub(crate) schema: &'a Schema,
    pub(crate) initial_rows: &'a [Row],
    pub(crate) join_time: u64,
}

/// Pre-run state shared by all drivers: present-from-the-start owners set
/// up, logical database seeded with their initial rows, per-component RNGs
/// derived.  Owners joining mid-run keep their setup RNG in `setup_rngs`
/// until their join tick.
pub(crate) struct PreparedRun {
    pub(crate) owners: Vec<Owner>,
    pub(crate) owner_rngs: Vec<DpRng>,
    pub(crate) setup_rngs: Vec<Option<DpRng>>,
    pub(crate) analyst: Analyst,
    pub(crate) analyst_rng: DpRng,
    pub(crate) logical: PlainDatabase,
    pub(crate) sync_count: u64,
    pub(crate) strategy_kind: StrategyKind,
    pub(crate) epsilon: Option<f64>,
    pub(crate) horizon: u64,
}

/// The simulation driver.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimulationConfig,
    use_views: bool,
    index_policy: Option<LeakagePolicy>,
}

impl Simulation {
    /// Creates a driver for `config`.
    pub fn new(config: SimulationConfig) -> Self {
        Self {
            config,
            use_views: false,
            index_policy: None,
        }
    }

    /// Serves the analyst's recurring queries from auto-registered
    /// materialized views (see [`Analyst::with_views`]).  Released answers
    /// and the adversary view are byte-identical to the scan path; only
    /// measured query latencies change.
    pub fn with_views(mut self) -> Self {
        self.use_views = true;
        self.index_policy = None;
        self
    }

    /// Plans the analyst's queries over auto-registered encrypted-multimap
    /// indexes under `policy` (see [`Analyst::with_indexes`]).  Released
    /// answers are byte-identical to the scan path; under
    /// [`LeakagePolicy::TranscriptOnly`] so is the adversary view.
    pub fn with_indexes(mut self, policy: LeakagePolicy) -> Self {
        self.index_policy = Some(policy);
        self.use_views = false;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Whether the analyst serves recurring queries from materialized views.
    pub fn uses_views(&self) -> bool {
        self.use_views
    }

    /// The analyst's index-planning leakage policy, if indexes are enabled.
    pub fn index_policy(&self) -> Option<LeakagePolicy> {
        self.index_policy
    }

    /// Runs `Π_Setup` for every table present from the start and derives the
    /// per-component RNG streams.  Shared between the sequential and the
    /// parallel driver so that both start from bit-identical state.
    fn prepare(
        &self,
        workloads: &[TableWorkload],
        engine: &dyn SecureOutsourcedDatabase,
        master: &MasterKey,
        make_strategy: impl FnMut(&str) -> Box<dyn SyncStrategy>,
    ) -> Result<PreparedRun, EdbError> {
        let specs: Vec<OwnerSpec<'_>> = workloads
            .iter()
            .map(|w| OwnerSpec {
                table: &w.table,
                schema: &w.schema,
                initial_rows: &w.initial_rows,
                join_time: w.join_time,
            })
            .collect();
        let horizon = workloads
            .iter()
            .map(TableWorkload::horizon)
            .max()
            .unwrap_or(0);
        let engines: Vec<&dyn SecureOutsourcedDatabase> = vec![engine; workloads.len()];
        self.prepare_specs(&specs, horizon, &engines, master, make_strategy)
    }

    /// The shared preparation path behind [`Simulation::prepare`] and the
    /// sparse-tick driver: one engine reference per owner (the dense drivers
    /// pass the same engine for all), explicit horizon.
    ///
    /// `DpRng::derive` is stateless and label-keyed, so the per-owner streams
    /// (`owner/{table}`, `owner-ticks/{table}`) and the analyst stream are
    /// identical no matter which driver derives them or in what order.
    pub(crate) fn prepare_specs(
        &self,
        specs: &[OwnerSpec<'_>],
        horizon: u64,
        engines: &[&dyn SecureOutsourcedDatabase],
        master: &MasterKey,
        mut make_strategy: impl FnMut(&str) -> Box<dyn SyncStrategy>,
    ) -> Result<PreparedRun, EdbError> {
        assert!(!specs.is_empty(), "at least one table workload is required");
        assert_eq!(specs.len(), engines.len(), "one engine reference per owner");
        let rng = DpRng::seed_from_u64(self.config.seed);

        let mut logical = PlainDatabase::new();
        for spec in specs {
            logical.create_table(spec.table, spec.schema.clone());
        }

        let mut owners: Vec<Owner> = Vec::with_capacity(specs.len());
        let mut setup_rngs: Vec<Option<DpRng>> = Vec::with_capacity(specs.len());
        let mut sync_count = 0u64;
        let mut strategy_kind = None;
        let mut epsilon = None;
        for (spec, engine) in specs.iter().zip(engines) {
            let strategy = make_strategy(spec.table);
            strategy_kind.get_or_insert(strategy.kind());
            if epsilon.is_none() {
                epsilon = strategy.epsilon().map(|e| e.value());
            }
            let mut owner = Owner::new(spec.table, spec.schema.clone(), master, strategy);
            let mut owner_rng = rng.derive(&format!("owner/{}", spec.table));
            if spec.join_time == 0 {
                for row in spec.initial_rows {
                    logical.insert(spec.table, row.clone());
                }
                owner.setup(spec.initial_rows.to_vec(), *engine, &mut owner_rng)?;
                sync_count += 1;
                setup_rngs.push(None);
            } else {
                // The owner joins mid-run: Π_Setup is deferred to its join
                // tick, but its RNG stream is derived here from the same
                // label so the transcript is a pure function of the seed.
                setup_rngs.push(Some(owner_rng));
            }
            owners.push(owner);
        }

        let named: Vec<NamedQuery> = self
            .config
            .queries
            .iter()
            .map(|(label, q)| NamedQuery::new(label.clone(), q.clone()))
            .collect();
        let analyst = if self.use_views {
            Analyst::with_views(named)
        } else if let Some(policy) = self.index_policy {
            Analyst::with_indexes(named, policy)
        } else {
            Analyst::new(named)
        };
        let analyst_rng = rng.derive("analyst");
        let owner_rngs: Vec<DpRng> = specs
            .iter()
            .map(|spec| rng.derive(&format!("owner-ticks/{}", spec.table)))
            .collect();

        Ok(PreparedRun {
            owners,
            owner_rngs,
            setup_rngs,
            analyst,
            analyst_rng,
            logical,
            sync_count,
            strategy_kind: strategy_kind.expect("at least one workload"),
            epsilon,
            horizon,
        })
    }

    /// Runs the simulation sequentially (the reference driver).
    ///
    /// * `workloads` — one entry per table; all are replayed on a shared clock.
    /// * `engine` — the shared encrypted database.
    /// * `master` — the owners' master key (must be the key the engine was
    ///   constructed with).
    /// * `make_strategy` — called once per table to create that owner's
    ///   strategy instance.
    pub fn run(
        &self,
        workloads: &[TableWorkload],
        engine: &dyn SecureOutsourcedDatabase,
        master: &MasterKey,
        make_strategy: impl FnMut(&str) -> Box<dyn SyncStrategy>,
    ) -> Result<SimulationReport, EdbError> {
        let mut run = self.prepare(workloads, engine, master, make_strategy)?;
        let mut query_samples = Vec::new();
        let mut size_samples = Vec::new();

        for t in 1..=run.horizon {
            let time = Timestamp(t);
            for (((owner, workload), owner_rng), setup_rng) in run
                .owners
                .iter_mut()
                .zip(workloads)
                .zip(run.owner_rngs.iter_mut())
                .zip(run.setup_rngs.iter_mut())
            {
                if t == workload.join_time {
                    for row in &workload.initial_rows {
                        run.logical.insert(&workload.table, row.clone());
                    }
                    let rng = setup_rng.as_mut().expect("join tick reached once");
                    owner.setup(workload.initial_rows.clone(), engine, rng)?;
                    run.sync_count += 1;
                }
                // The join tick is inside the active window: a freshly
                // set-up owner immediately ticks, delivering any arrivals
                // landing exactly at its join tick.
                if workload.active_at(t) {
                    let arrivals = workload.arrivals_at(t);
                    for row in arrivals {
                        run.logical.insert(&workload.table, row.clone());
                    }
                    let report = owner.tick(time, arrivals, engine, owner_rng)?;
                    if report.synced {
                        run.sync_count += 1;
                    }
                }
            }

            if self.config.query_interval > 0 && t % self.config.query_interval == 0 {
                query_samples.extend(run.analyst.pose_all(
                    time,
                    engine,
                    &run.logical,
                    &mut run.analyst_rng,
                )?);
            }

            if (self.config.size_sample_interval > 0 && t % self.config.size_sample_interval == 0)
                || t == run.horizon
            {
                let gap = run.owners.iter().map(Owner::logical_gap).sum();
                size_samples.push(self.sample_sizes(
                    time,
                    workloads.iter().map(|w| w.table.as_str()),
                    engine,
                    gap,
                    &run.logical,
                ));
            }
        }

        Ok(SimulationReport {
            strategy: run.strategy_kind,
            engine: engine.name().to_string(),
            epsilon: run.epsilon,
            query_samples,
            size_samples,
            sync_count: run.sync_count,
            horizon: run.horizon,
        })
    }

    /// Runs the simulation with one worker thread per table owner.
    ///
    /// Every owner advances in lock-step with a barrier per time unit, so the
    /// adversary-visible update-pattern semantics of Definition 2 are
    /// unchanged: an upload at time `t` can never be reordered across a tick
    /// boundary, and the analyst observes the engine only at tick boundaries
    /// with all owners parked.  With a fixed seed the report is identical to
    /// [`Simulation::run`]'s up to measured wall-clock fields (compare via
    /// [`SimulationReport::normalized`]).
    pub fn run_parallel(
        &self,
        workloads: &[TableWorkload],
        engine: &dyn SecureOutsourcedDatabase,
        master: &MasterKey,
        make_strategy: impl FnMut(&str) -> Box<dyn SyncStrategy>,
    ) -> Result<SimulationReport, EdbError> {
        let mut run = self.prepare(workloads, engine, master, make_strategy)?;
        let horizon = run.horizon;
        let mut query_samples = Vec::new();
        let mut size_samples = Vec::new();

        // One slot per owner, refreshed after every tick, so the main thread
        // can take size samples at tick boundaries without touching owners.
        let gaps: Vec<AtomicU64> = run
            .owners
            .iter()
            .map(|o| AtomicU64::new(o.logical_gap()))
            .collect();
        // First error wins; once set, every thread (owners and main) idles
        // through the remaining barriers so nobody deadlocks.  Panics are
        // caught the same way (a dead thread would otherwise strand everyone
        // else on the barrier forever) and re-thrown after the scope ends.
        let failure: Mutex<Option<EdbError>> = Mutex::new(None);
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let barrier = Barrier::new(run.owners.len() + 1);

        let owners = std::mem::take(&mut run.owners);
        let owner_rngs = std::mem::take(&mut run.owner_rngs);
        let setup_rngs = std::mem::take(&mut run.setup_rngs);

        thread::scope(|scope| {
            let handles: Vec<_> = owners
                .into_iter()
                .zip(workloads)
                .zip(owner_rngs)
                .zip(setup_rngs)
                .enumerate()
                .map(
                    |(index, (((mut owner, workload), mut owner_rng), mut setup_rng))| {
                        let barrier = &barrier;
                        let failure = &failure;
                        let panicked = &panicked;
                        let gaps = &gaps;
                        scope.spawn(move || {
                            let mut synced = 0u64;
                            for t in 1..=horizon {
                                barrier.wait();
                                if failure.lock().is_none() && panicked.lock().is_none() {
                                    let tick = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            let mut syncs = 0u64;
                                            if t == workload.join_time {
                                                let rng = setup_rng
                                                    .as_mut()
                                                    .expect("join tick reached once");
                                                syncs += u64::from(
                                                    owner
                                                        .setup(
                                                            workload.initial_rows.clone(),
                                                            engine,
                                                            rng,
                                                        )?
                                                        .synced,
                                                );
                                            }
                                            // Join tick included: deliver
                                            // join-tick arrivals right after
                                            // the deferred setup.
                                            if workload.active_at(t) {
                                                syncs += u64::from(
                                                    owner
                                                        .tick(
                                                            Timestamp(t),
                                                            workload.arrivals_at(t),
                                                            engine,
                                                            &mut owner_rng,
                                                        )?
                                                        .synced,
                                                );
                                            }
                                            Ok(syncs)
                                        }),
                                    );
                                    match tick {
                                        Ok(Ok(tick_syncs)) => {
                                            synced += tick_syncs;
                                            gaps[index]
                                                .store(owner.logical_gap(), Ordering::Release);
                                        }
                                        Ok(Err(e)) => {
                                            failure.lock().get_or_insert(e);
                                        }
                                        Err(payload) => {
                                            panicked.lock().get_or_insert(payload);
                                        }
                                    }
                                }
                                barrier.wait();
                            }
                            synced
                        })
                    },
                )
                .collect();

            for t in 1..=horizon {
                let time = Timestamp(t);
                // Release the owners into tick t; maintain the ground truth
                // concurrently (owners never touch the logical database).
                barrier.wait();
                if failure.lock().is_none() && panicked.lock().is_none() {
                    for w in workloads {
                        if t == w.join_time {
                            for row in &w.initial_rows {
                                run.logical.insert(&w.table, row.clone());
                            }
                        }
                        if w.active_at(t) {
                            for row in w.arrivals_at(t) {
                                run.logical.insert(&w.table, row.clone());
                            }
                        }
                    }
                }
                // All owners finished tick t and are parked until the next
                // barrier, so the analyst sees a stable engine state.
                barrier.wait();
                if failure.lock().is_some() || panicked.lock().is_some() {
                    continue;
                }

                if self.config.query_interval > 0 && t % self.config.query_interval == 0 {
                    match run
                        .analyst
                        .pose_all(time, engine, &run.logical, &mut run.analyst_rng)
                    {
                        Ok(samples) => query_samples.extend(samples),
                        Err(e) => {
                            failure.lock().get_or_insert(e);
                            continue;
                        }
                    }
                }

                if (self.config.size_sample_interval > 0
                    && t % self.config.size_sample_interval == 0)
                    || t == horizon
                {
                    let gap = gaps.iter().map(|g| g.load(Ordering::Acquire)).sum();
                    size_samples.push(self.sample_sizes(
                        time,
                        workloads.iter().map(|w| w.table.as_str()),
                        engine,
                        gap,
                        &run.logical,
                    ));
                }
            }

            for handle in handles {
                run.sync_count += handle.join().expect("owner thread panicked");
            }
        });

        // Re-throw a caught owner panic with its original payload, matching
        // the sequential driver's abort-with-message behaviour.
        if let Some(payload) = panicked.into_inner() {
            std::panic::resume_unwind(payload);
        }
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }

        Ok(SimulationReport {
            strategy: run.strategy_kind,
            engine: engine.name().to_string(),
            epsilon: run.epsilon,
            query_samples,
            size_samples,
            sync_count: run.sync_count,
            horizon,
        })
    }

    pub(crate) fn sample_sizes<'a>(
        &self,
        time: Timestamp,
        tables: impl IntoIterator<Item = &'a str>,
        engine: &dyn SecureOutsourcedDatabase,
        logical_gap: u64,
        logical: &PlainDatabase,
    ) -> SizeSample {
        let mut outsourced_records = 0u64;
        let mut outsourced_bytes = 0u64;
        let mut dummy_records = 0u64;
        let mut dummy_bytes = 0u64;
        for table in tables {
            let stats = engine.table_stats(table);
            outsourced_records += stats.ciphertext_count;
            outsourced_bytes += stats.ciphertext_bytes;
            dummy_records += stats.dummy_records;
            dummy_bytes += stats.dummy_bytes();
        }
        SizeSample {
            time: time.value(),
            outsourced_records,
            outsourced_bytes,
            dummy_records,
            dummy_bytes,
            logical_records: logical.total_rows() as u64,
            logical_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{
        AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, OneTimeOutsourcing, StrategyKind,
        SynchronizeEveryTime, SynchronizeUponReceipt,
    };
    use dpsync_dp::Epsilon;
    use dpsync_edb::engines::ObliDbEngine;
    use dpsync_edb::query::paper_queries;
    use dpsync_edb::{DataType, Value};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ])
    }

    fn row(t: u64, p: i64) -> Row {
        Row::new(vec![Value::Timestamp(t), Value::Int(p)])
    }

    /// A small deterministic workload: one arrival every other tick.
    fn workload(horizon: u64) -> TableWorkload {
        TableWorkload {
            table: "yellow".into(),
            schema: schema(),
            initial_rows: (0..5).map(|i| row(0, 50 + i)).collect(),
            arrivals: (1..=horizon)
                .map(|t| {
                    if t % 2 == 0 {
                        vec![row(t, (t % 200) as i64)]
                    } else {
                        vec![]
                    }
                })
                .collect(),
            join_time: 0,
            leave_time: None,
        }
    }

    fn config(horizon: u64) -> SimulationConfig {
        SimulationConfig {
            query_interval: horizon / 8,
            size_sample_interval: horizon / 4,
            queries: vec![
                ("Q1".into(), paper_queries::q1_range_count("yellow")),
                ("Q2".into(), paper_queries::q2_group_by_count("yellow")),
            ],
            seed: 99,
        }
    }

    fn strategy_for(kind: StrategyKind) -> Box<dyn SyncStrategy> {
        match kind {
            StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
            StrategyKind::Oto => Box::new(OneTimeOutsourcing::new()),
            StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
            StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
                Epsilon::new_unchecked(0.5),
                30,
                Some(CacheFlush::new(400, 15)),
            )),
            StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
                Epsilon::new_unchecked(0.5),
                15,
                Some(CacheFlush::new(400, 15)),
            )),
        }
    }

    fn run(strategy: StrategyKind, horizon: u64) -> SimulationReport {
        let master = MasterKey::from_bytes([5u8; 32]);
        let engine = ObliDbEngine::new(&master);
        let sim = Simulation::new(config(horizon));
        sim.run(&[workload(horizon)], &engine, &master, |_| {
            strategy_for(strategy)
        })
        .unwrap()
    }

    #[test]
    fn sur_has_zero_error_and_zero_gap() {
        let report = run(StrategyKind::Sur, 800);
        assert_eq!(report.strategy, StrategyKind::Sur);
        assert_eq!(report.mean_l1_error("Q1"), 0.0);
        assert_eq!(report.mean_l1_error("Q2"), 0.0);
        assert_eq!(report.mean_logical_gap(), 0.0);
        assert_eq!(report.final_sizes().unwrap().dummy_records, 0);
    }

    #[test]
    fn oto_error_grows_with_unsynced_data() {
        let report = run(StrategyKind::Oto, 800);
        // OTO outsources only the 5 initial rows; by the end ~400 rows are missing.
        assert!(report.mean_l1_error("Q2") > 100.0);
        assert_eq!(report.final_sizes().unwrap().outsourced_records, 5);
        assert_eq!(report.sync_count, 1);
    }

    #[test]
    fn set_outsources_one_record_per_tick() {
        let report = run(StrategyKind::Set, 800);
        let sizes = report.final_sizes().unwrap();
        assert_eq!(sizes.outsourced_records, 5 + 800);
        // Half the ticks had no arrival, so roughly half the uploads are dummies.
        assert!(sizes.dummy_records >= 390 && sizes.dummy_records <= 410);
        assert_eq!(report.mean_l1_error("Q2"), 0.0);
    }

    #[test]
    fn dp_strategies_bound_error_and_overhead() {
        for kind in [StrategyKind::DpTimer, StrategyKind::DpAnt] {
            let report = run(kind, 800);
            let sizes = report.final_sizes().unwrap();
            // Bounded error: far below OTO's hundreds.
            assert!(
                report.mean_l1_error("Q2") < 60.0,
                "{kind:?} mean error {}",
                report.mean_l1_error("Q2")
            );
            // Bounded overhead: clearly fewer dummies than SET, which uploads
            // a dummy at every one of the ~400 empty ticks.
            assert!(
                sizes.dummy_records < 280,
                "{kind:?} dummies {}",
                sizes.dummy_records
            );
            assert!(report.epsilon.is_some());
            assert!(report.sync_count > 2);
        }
    }

    #[test]
    fn join_workload_runs_two_owners() {
        let master = MasterKey::from_bytes([6u8; 32]);
        let engine = ObliDbEngine::new(&master);
        let mut cfg = config(400);
        cfg.queries = vec![("Q3".into(), paper_queries::q3_join_count("yellow", "green"))];
        let sim = Simulation::new(cfg);
        let mut green = workload(400);
        green.table = "green".into();
        let report = sim
            .run(&[workload(400), green], &engine, &master, |_| {
                Box::new(SynchronizeUponReceipt::new())
            })
            .unwrap();
        assert_eq!(report.mean_l1_error("Q3"), 0.0);
        assert!(report.final_sizes().unwrap().outsourced_records > 0);
    }

    #[test]
    fn reports_are_deterministic_for_a_fixed_seed() {
        // Everything except wall-clock timings must be bit-identical across
        // runs with the same seed.
        let a = run(StrategyKind::DpTimer, 400).normalized();
        let b = run(StrategyKind::DpTimer, 400).normalized();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_driver_matches_sequential_driver() {
        // One owner per table on its own thread, barrier per tick: the report
        // must be bit-identical (up to wall clock) to the sequential driver.
        for kind in [
            StrategyKind::Sur,
            StrategyKind::DpTimer,
            StrategyKind::DpAnt,
        ] {
            let master = MasterKey::from_bytes([6u8; 32]);
            let mut cfg = config(400);
            cfg.queries = vec![
                ("Q2".into(), paper_queries::q2_group_by_count("yellow")),
                ("Q3".into(), paper_queries::q3_join_count("yellow", "green")),
            ];
            let sim = Simulation::new(cfg);
            let mut green = workload(400);
            green.table = "green".into();
            let workloads = [workload(400), green];

            let sequential_engine = ObliDbEngine::new(&master);
            let sequential = sim
                .run(&workloads, &sequential_engine, &master, |_| {
                    strategy_for(kind)
                })
                .unwrap()
                .normalized();

            let parallel_engine = ObliDbEngine::new(&master);
            let parallel = sim
                .run_parallel(&workloads, &parallel_engine, &master, |_| {
                    strategy_for(kind)
                })
                .unwrap()
                .normalized();

            assert_eq!(sequential, parallel, "driver mismatch for {kind:?}");
            // The adversary transcripts must merge to the same canonical view.
            assert_eq!(
                sequential_engine.adversary_view(),
                parallel_engine.adversary_view(),
                "transcript mismatch for {kind:?}"
            );
        }
    }

    #[test]
    fn workload_accessors() {
        let w = workload(100);
        assert_eq!(w.horizon(), 100);
        assert_eq!(w.total_rows(), 5 + 50);
        let cfg = SimulationConfig::paper_default(vec![], 1);
        assert_eq!(cfg.query_interval, 360);
        assert_eq!(cfg.size_sample_interval, 7200);
        let sim = Simulation::new(cfg);
        assert_eq!(sim.config().seed, 1);
    }
}
