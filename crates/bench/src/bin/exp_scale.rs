//! `exp_scale` — the million-owner scale harness over the sparse-tick
//! scheduler.
//!
//! Generates a seed-deterministic fleet with the open-loop generator
//! (`dpsync_workloads::scale`: heavy-tailed per-owner rates, diurnal bursts,
//! flash crowds, owner churn) and drives it through
//! [`Simulation::run_sparse`] — in-process against a shared `ObliDB` engine
//! by default, or through the reactor tier with `--transport tcp` (real
//! loopback sockets, `--connections` multiplexed connections × `--mux`
//! sessions each, owners round-robined over the session pool).
//!
//! Before the measured run, a small **self-check** replays a few hundred
//! owners (with churn) through both the dense sequential reference and the
//! sparse scheduler and requires byte-identical normalized reports and
//! adversary views — the same invariant the `sparse_tick_equivalence` suite
//! pins, re-verified at the harness's own workload shape on every
//! invocation.
//!
//! Output: a metrics table (sync lag, dummy overhead, update-latency
//! percentiles, ingest throughput) plus an optional BENCH-format JSON report
//! (`--out FILE`) with entries:
//!
//! * `scale_ingest` — wall-clock ns per outsourced record / records per
//!   second over the whole simulated run;
//! * `scale_update_p50` / `scale_update_p99` — `Π_Update` request latency
//!   percentiles (ns) at the sustained load;
//! * `scale_sync_lag` — mean logical gap in **records** (carried in the
//!   `median_ns_per_op` field; `throughput_per_sec` carries the final gap);
//! * `scale_dummy_overhead` — dummy records as a **percentage** of all
//!   outsourced records (in `median_ns_per_op`);
//! * `scale_analytics` — p50 analyst-query latency (ns).  With `--views` the
//!   recurring Q1/Q2 analytics are served from incrementally maintained
//!   materialized views, so this stays flat as the fleet grows; without it,
//!   every pose is a full scan over the outsourced volume.
//!
//! Usage:
//!
//! ```text
//! exp_scale [--owners 100000] [--horizon 1440] [--strategy dp-timer]
//!           [--seed 2021] [--transport inproc|tcp] [--connections 64]
//!           [--mux 4] [--views] [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` shrinks the fleet to 20 000 owners over 480 ticks for CI.
//! SET and DP-ANT wake every owner every tick (their `next_wake` is dense),
//! so at 10^5+ owners prefer SUR/OTO/DP-Timer.  Exits nonzero when the
//! self-check diverges or (TCP) the server reaps connections or panics.

use dpsync_bench::perf::{format_throughput, BenchReport, BenchResult, REPORT_VERSION};
use dpsync_bench::report::TextTable;
use dpsync_core::simulation::{Simulation, SimulationConfig};
use dpsync_core::sparse::OwnerWorkload;
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, OneTimeOutsourcing, StrategyKind,
    SyncStrategy, SynchronizeEveryTime, SynchronizeUponReceipt,
};
use dpsync_crypto::{EncryptedRecord, MasterKey};
use dpsync_dp::Epsilon;
use dpsync_edb::cost::CostModel;
use dpsync_edb::engines::ObliDbEngine;
use dpsync_edb::leakage::LeakageProfile;
use dpsync_edb::query::Predicate;
use dpsync_edb::sogdb::{EdbError, SecureOutsourcedDatabase, TableStats};
use dpsync_edb::{AdversaryView, Query, QueryOutcome, Schema, ViewDef};
use dpsync_net::{EdbTcpServer, EngineProvider, MuxConnection, ServeOptions};
use dpsync_workloads::scale::ScaleProfile;
use rand::RngCore;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Transport {
    Inproc,
    Tcp,
}

struct Config {
    owners: usize,
    horizon: u64,
    strategy: StrategyKind,
    seed: u64,
    transport: Transport,
    connections: usize,
    mux: usize,
    views: bool,
    smoke: bool,
    out: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            owners: 100_000,
            horizon: 1440,
            strategy: StrategyKind::DpTimer,
            seed: 2021,
            transport: Transport::Inproc,
            connections: 64,
            mux: 4,
            views: false,
            smoke: false,
            out: None,
        }
    }
}

const USAGE: &str =
    "usage: exp_scale [--owners N] [--horizon T] [--strategy sur|oto|set|dp-timer|dp-ant] \
     [--seed S] [--transport inproc|tcp] [--connections N] [--mux M] [--views] [--smoke] \
     [--out FILE]";

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut owners_explicit = false;
    let mut horizon_explicit = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let bad = |flag: &str, v: Option<&String>| -> ! {
        eprintln!(
            "exp_scale: invalid value {:?} for `{flag}` (see --help)",
            v.map(String::as_str).unwrap_or("<missing>")
        );
        std::process::exit(2);
    };
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--owners" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.owners = v;
                    owners_explicit = true;
                    i += 1;
                }
                None => bad("--owners", value(i)),
            },
            "--horizon" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.horizon = v;
                    horizon_explicit = true;
                    i += 1;
                }
                None => bad("--horizon", value(i)),
            },
            "--strategy" => match value(i).map(String::as_str) {
                Some("sur") => {
                    config.strategy = StrategyKind::Sur;
                    i += 1;
                }
                Some("oto") => {
                    config.strategy = StrategyKind::Oto;
                    i += 1;
                }
                Some("set") => {
                    config.strategy = StrategyKind::Set;
                    i += 1;
                }
                Some("dp-timer") => {
                    config.strategy = StrategyKind::DpTimer;
                    i += 1;
                }
                Some("dp-ant") => {
                    config.strategy = StrategyKind::DpAnt;
                    i += 1;
                }
                v => bad("--strategy", v.map(|_| &args[i + 1])),
            },
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.seed = v;
                    i += 1;
                }
                None => bad("--seed", value(i)),
            },
            "--transport" => match value(i).map(String::as_str) {
                Some("inproc") => {
                    config.transport = Transport::Inproc;
                    i += 1;
                }
                Some("tcp") => {
                    config.transport = Transport::Tcp;
                    i += 1;
                }
                v => bad("--transport", v.map(|_| &args[i + 1])),
            },
            "--connections" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.connections = v;
                    i += 1;
                }
                None => bad("--connections", value(i)),
            },
            "--mux" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.mux = v;
                    i += 1;
                }
                None => bad("--mux", value(i)),
            },
            "--views" => config.views = true,
            "--smoke" => config.smoke = true,
            "--out" => match value(i) {
                Some(v) => {
                    config.out = Some(v.clone());
                    i += 1;
                }
                None => bad("--out", None),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("exp_scale: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if config.smoke {
        if !owners_explicit {
            config.owners = 20_000;
        }
        if !horizon_explicit {
            config.horizon = 480;
        }
    }
    config.owners = config.owners.max(1);
    config.horizon = config.horizon.max(8);
    config.connections = config.connections.max(1);
    config.mux = config.mux.max(1);
    config
}

fn make_strategy(kind: StrategyKind) -> Box<dyn SyncStrategy> {
    let eps = Epsilon::new_unchecked(1.0);
    match kind {
        StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
        StrategyKind::Oto => Box::new(OneTimeOutsourcing::new()),
        StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
        StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
            eps,
            30,
            Some(CacheFlush::new(240, 15)),
        )),
        StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
            eps,
            15,
            Some(CacheFlush::new(240, 15)),
        )),
    }
}

/// A pass-through engine decorator that timestamps every `Π_Update` call, so
/// the harness can report request-latency percentiles without touching the
/// engines or the scheduler.
struct LatencyProbe<'a> {
    inner: &'a dyn SecureOutsourcedDatabase,
    update_ns: Mutex<Vec<u64>>,
    query_ns: Mutex<Vec<u64>>,
}

impl<'a> LatencyProbe<'a> {
    fn new(inner: &'a dyn SecureOutsourcedDatabase) -> Self {
        Self {
            inner,
            update_ns: Mutex::new(Vec::new()),
            query_ns: Mutex::new(Vec::new()),
        }
    }

    fn take_latencies(&self) -> Vec<u64> {
        std::mem::take(&mut self.update_ns.lock().expect("probe lock"))
    }

    fn take_query_latencies(&self) -> Vec<u64> {
        std::mem::take(&mut self.query_ns.lock().expect("probe lock"))
    }
}

impl SecureOutsourcedDatabase for LatencyProbe<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn leakage_profile(&self) -> LeakageProfile {
        self.inner.leakage_profile()
    }

    fn cost_model(&self) -> CostModel {
        self.inner.cost_model()
    }

    fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        self.inner.setup(table, schema, records)
    }

    fn update(
        &self,
        table: &str,
        time: u64,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        let started = Instant::now();
        let result = self.inner.update(table, time, records);
        self.update_ns
            .lock()
            .expect("probe lock")
            .push(started.elapsed().as_nanos() as u64);
        result
    }

    fn query(&self, query: &Query, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        let started = Instant::now();
        let result = self.inner.query(query, rng);
        self.query_ns
            .lock()
            .expect("probe lock")
            .push(started.elapsed().as_nanos() as u64);
        result
    }

    // A decorator that swallowed these behind the trait defaults would turn
    // `--views` into a silent scan fallback (the default impls report views
    // as unsupported), so both view entry points delegate explicitly.
    fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        self.inner.register_view(def)
    }

    fn query_view(&self, name: &str, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        let started = Instant::now();
        let result = self.inner.query_view(name, rng);
        self.query_ns
            .lock()
            .expect("probe lock")
            .push(started.elapsed().as_nanos() as u64);
        result
    }

    fn supports(&self, query: &Query) -> bool {
        self.inner.supports(query)
    }

    fn table_stats(&self, table: &str) -> TableStats {
        self.inner.table_stats(table)
    }

    fn adversary_view(&self) -> AdversaryView {
        self.inner.adversary_view()
    }
}

fn profile_for(config: &Config) -> ScaleProfile {
    ScaleProfile::new(config.owners, config.horizon, config.seed)
}

fn simulation_for(config: &Config, fleet: &[OwnerWorkload]) -> Simulation {
    // Query the first owner that is present from the start — churned owners
    // have no table until their join tick.
    let steady = fleet
        .iter()
        .find(|w| w.join_time == 0)
        .expect("at least one owner joins at t=0");
    let sim = Simulation::new(SimulationConfig {
        query_interval: (config.horizon / 4).max(1),
        size_sample_interval: (config.horizon / 2).max(1),
        // Q1/Q2 shapes from the paper, rebound to the scale schema's
        // `reading` column (the generator draws readings in 0..1000).
        queries: vec![
            (
                "Q1".into(),
                Query::Count {
                    table: steady.table.clone(),
                    predicate: Some(Predicate::Between("reading".into(), 100.0, 400.0)),
                },
            ),
            (
                "Q2".into(),
                Query::GroupByCount {
                    table: steady.table.clone(),
                    group_by: "reading".into(),
                    predicate: None,
                },
            ),
        ],
        seed: config.seed,
    });
    if config.views {
        sim.with_views()
    } else {
        sim
    }
}

/// Replays a small churn-heavy fleet through both the dense sequential
/// reference and the sparse scheduler; any byte difference in the normalized
/// report or the adversary view aborts the run.
fn self_check(config: &Config) {
    let mut profile = ScaleProfile::new(240, 192, config.seed);
    profile.mean_rate = 0.05;
    profile.churn_fraction = 0.25;
    let fleet = profile.generate();
    let dense: Vec<_> = fleet.iter().map(|w| w.to_dense(profile.horizon)).collect();
    let sim = simulation_for(
        &Config {
            owners: 240,
            horizon: profile.horizon,
            ..Config::default()
        },
        &fleet,
    );
    let master = MasterKey::from_bytes([0x5C; 32]);

    let reference_engine = ObliDbEngine::new(&master);
    let reference = sim
        .run(&dense, &reference_engine, &master, |_| {
            make_strategy(config.strategy)
        })
        .expect("reference run succeeds")
        .normalized();

    let sparse_engine = ObliDbEngine::new(&master);
    let sparse = sim
        .run_sparse(&fleet, profile.horizon, &sparse_engine, &master, |_| {
            make_strategy(config.strategy)
        })
        .expect("sparse run succeeds")
        .normalized();

    if reference != sparse || reference_engine.adversary_view() != sparse_engine.adversary_view() {
        eprintln!(
            "FAILED: sparse-tick self-check diverged from the dense reference \
             (strategy {:?}); not running the measured workload",
            config.strategy
        );
        std::process::exit(1);
    }
    println!(
        "self-check: dense and sparse drivers byte-identical on {} churn owners / {} ticks",
        profile.owners, profile.horizon
    );
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn connect_with_retry(addr: std::net::SocketAddr) -> MuxConnection {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match MuxConnection::connect_with_timeout(addr, Some(Duration::from_secs(60))) {
            Ok(conn) => return conn,
            Err(e) => {
                if Instant::now() > deadline {
                    panic!("cannot connect to the loopback server: {e}");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

struct RunOutcome {
    report: dpsync_core::metrics::SimulationReport,
    update_latencies_ns: Vec<u64>,
    query_latencies_ns: Vec<u64>,
    wall: Duration,
    server_failures: Vec<String>,
}

fn run_inproc(
    config: &Config,
    fleet: &[OwnerWorkload],
    sim: &Simulation,
    master: &MasterKey,
) -> RunOutcome {
    let engine = ObliDbEngine::new(master);
    let probe = LatencyProbe::new(&engine);
    let started = Instant::now();
    let report = sim
        .run_sparse(fleet, config.horizon, &probe, master, |_| {
            make_strategy(config.strategy)
        })
        .expect("simulation succeeds");
    RunOutcome {
        report,
        update_latencies_ns: {
            let mut v = probe.take_latencies();
            v.sort_unstable();
            v
        },
        query_latencies_ns: {
            let mut v = probe.take_query_latencies();
            v.sort_unstable();
            v
        },
        wall: started.elapsed(),
        server_failures: Vec::new(),
    }
}

fn run_tcp(
    config: &Config,
    fleet: &[OwnerWorkload],
    sim: &Simulation,
    master: &MasterKey,
) -> RunOutcome {
    let shared = Arc::new(ObliDbEngine::new(master));
    let server = EdbTcpServer::bind_with_options(
        "127.0.0.1:0",
        EngineProvider::Shared(Arc::clone(&shared) as Arc<dyn SecureOutsourcedDatabase>),
        ServeOptions {
            io_deadline: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("loopback server binds");
    let addr = server.local_addr();

    // A bounded pool of multiplexed sessions; owners are round-robined over
    // it.  One extra session carries the analyst's queries and size samples.
    let connections: Vec<MuxConnection> = (0..config.connections)
        .map(|_| connect_with_retry(addr))
        .collect();
    let sessions: Vec<_> = connections
        .iter()
        .flat_map(|conn| (0..config.mux).map(|_| conn.open_shared().expect("session opens")))
        .collect();
    let analyst_session = connections[0].open_shared().expect("analyst session opens");
    let analyst_probe = LatencyProbe::new(&analyst_session as &dyn SecureOutsourcedDatabase);
    let probes: Vec<LatencyProbe<'_>> = sessions
        .iter()
        .map(|s| LatencyProbe::new(s as &dyn SecureOutsourcedDatabase))
        .collect();
    let owner_engines: Vec<&dyn SecureOutsourcedDatabase> = (0..fleet.len())
        .map(|i| &probes[i % probes.len()] as &dyn SecureOutsourcedDatabase)
        .collect();

    let started = Instant::now();
    let report = sim
        .run_sparse_multi(
            fleet,
            config.horizon,
            &owner_engines,
            &analyst_probe,
            master,
            |_| make_strategy(config.strategy),
        )
        .expect("simulation succeeds");
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = probes
        .iter()
        .flat_map(LatencyProbe::take_latencies)
        .collect();
    latencies.sort_unstable();
    let mut query_latencies = analyst_probe.take_query_latencies();
    query_latencies.sort_unstable();

    let mut server_failures = Vec::new();
    if server.handler_panics() != 0 {
        server_failures.push(format!("{} handler panic(s)", server.handler_panics()));
    }
    if server.stats().reaped_connections() != 0 {
        server_failures.push(format!(
            "{} connection(s) were deadline-reaped",
            server.stats().reaped_connections()
        ));
    }
    RunOutcome {
        report,
        update_latencies_ns: latencies,
        query_latencies_ns: query_latencies,
        wall,
        server_failures,
    }
}

fn main() {
    let config = parse_args();
    let transport_label = match config.transport {
        Transport::Inproc => "inproc".to_string(),
        Transport::Tcp => format!("tcp ({}x{} sessions)", config.connections, config.mux),
    };
    println!(
        "scale harness — {} owners, {} ticks, {} strategy, {} transport, analytics via {} (seed {})\n",
        config.owners,
        config.horizon,
        config.strategy.label(),
        transport_label,
        if config.views {
            "materialized views"
        } else {
            "full scans"
        },
        config.seed
    );

    self_check(&config);

    let profile = profile_for(&config);
    println!(
        "generating fleet (≈{:.0} expected arrival events)...",
        profile.expected_events()
    );
    let fleet = profile.generate();
    let events: usize = fleet.iter().map(|w| w.arrivals.len()).sum();
    let churned = fleet
        .iter()
        .filter(|w| w.join_time > 0 || w.leave_time.is_some())
        .count();
    let sim = simulation_for(&config, &fleet);
    let master = MasterKey::from_bytes([0x5C; 32]);

    println!(
        "running {} owners ({events} arrival events, {churned} churned)...\n",
        fleet.len()
    );
    let outcome = match config.transport {
        Transport::Inproc => run_inproc(&config, &fleet, &sim, &master),
        Transport::Tcp => run_tcp(&config, &fleet, &sim, &master),
    };

    let report = &outcome.report;
    let sizes = report.final_sizes().expect("at least one size sample");
    let outsourced = sizes.outsourced_records.max(1);
    let dummy_pct = sizes.dummy_records as f64 * 100.0 / outsourced as f64;
    let mean_gap = report.mean_logical_gap();
    let wall_s = outcome.wall.as_secs_f64();
    let ingest_per_sec = sizes.outsourced_records as f64 / wall_s.max(1e-9);
    let updates = outcome.update_latencies_ns.len() as u64;
    let p50 = percentile(&outcome.update_latencies_ns, 0.50);
    let p99 = percentile(&outcome.update_latencies_ns, 0.99);
    let analyst_queries = outcome.query_latencies_ns.len() as u64;
    let query_p50 = percentile(&outcome.query_latencies_ns, 0.50);
    let query_p99 = percentile(&outcome.query_latencies_ns, 0.99);

    let mut table = TextTable::new(["metric", "value"]);
    table.add_row(["owners", &fleet.len().to_string()]);
    table.add_row(["arrival events", &events.to_string()]);
    table.add_row(["update requests", &updates.to_string()]);
    table.add_row(["outsourced records", &sizes.outsourced_records.to_string()]);
    table.add_row([
        "dummy overhead",
        &format!("{dummy_pct:.1}% ({} records)", sizes.dummy_records),
    ]);
    table.add_row(["sync lag (mean)", &format!("{mean_gap:.1} records")]);
    table.add_row([
        "sync lag (final)",
        &format!("{} records", sizes.logical_gap),
    ]);
    table.add_row(["wall time", &format!("{wall_s:.2} s")]);
    table.add_row(["ingest throughput", &format_throughput(ingest_per_sec)]);
    table.add_row(["update latency p50", &format!("{:.1} µs", p50 as f64 / 1e3)]);
    table.add_row(["update latency p99", &format!("{:.1} µs", p99 as f64 / 1e3)]);
    table.add_row(["analyst queries", &analyst_queries.to_string()]);
    table.add_row([
        "analytics latency p50",
        &format!("{:.1} µs", query_p50 as f64 / 1e3),
    ]);
    table.add_row([
        "analytics latency p99",
        &format!("{:.1} µs", query_p99 as f64 / 1e3),
    ]);
    print!("{}", table.render());

    let bench = BenchReport {
        version: REPORT_VERSION,
        label: format!("scale-{}", config.strategy.label().to_lowercase()),
        seed: config.seed,
        smoke: config.smoke,
        workers: match config.transport {
            Transport::Inproc => 1,
            Transport::Tcp => config.connections as u64,
        },
        results: vec![
            BenchResult {
                name: "scale_ingest".into(),
                median_ns_per_op: outcome.wall.as_nanos() as f64 / outsourced as f64,
                throughput_per_sec: ingest_per_sec,
                records_processed: sizes.outsourced_records,
                samples: 1,
            },
            BenchResult {
                name: "scale_update_p50".into(),
                median_ns_per_op: p50 as f64,
                throughput_per_sec: if p50 > 0 { 1e9 / p50 as f64 } else { 0.0 },
                records_processed: updates,
                samples: 1,
            },
            BenchResult {
                name: "scale_update_p99".into(),
                median_ns_per_op: p99 as f64,
                throughput_per_sec: if p99 > 0 { 1e9 / p99 as f64 } else { 0.0 },
                records_processed: updates,
                samples: 1,
            },
            BenchResult {
                name: "scale_sync_lag".into(),
                median_ns_per_op: mean_gap,
                throughput_per_sec: sizes.logical_gap as f64,
                records_processed: report.sync_count,
                samples: 1,
            },
            BenchResult {
                name: "scale_dummy_overhead".into(),
                median_ns_per_op: dummy_pct,
                throughput_per_sec: sizes.dummy_records as f64,
                records_processed: sizes.outsourced_records,
                samples: 1,
            },
            // Per-epoch analytics cost: with `--views` this is a view read
            // (flat as the fleet grows); without, a full scan (grows with
            // outsourced volume).
            BenchResult {
                name: "scale_analytics".into(),
                median_ns_per_op: query_p50 as f64,
                throughput_per_sec: if query_p50 > 0 {
                    1e9 / query_p50 as f64
                } else {
                    0.0
                },
                records_processed: analyst_queries,
                samples: 1,
            },
        ],
    };
    if let Some(path) = &config.out {
        std::fs::write(path, bench.to_json()).expect("write BENCH report");
        println!("\nBENCH report written to {path}");
    }

    if !outcome.server_failures.is_empty() {
        for f in &outcome.server_failures {
            eprintln!("\nFAILED: {f}");
        }
        std::process::exit(1);
    }
}
