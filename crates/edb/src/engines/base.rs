//! Shared plumbing for the simulated engines.
//!
//! Both engines follow the same storage discipline:
//!
//! 1. Every `Π_Setup` / `Π_Update` batch is stored as ciphertext on the
//!    [`ServerStorage`] (this is what the adversary sees and what the size
//!    metrics measure), and
//! 2. decrypted once into an internal plaintext mirror ("inside the enclave"
//!    for ObliDB, "inside the MPC" for Crypt-ε) with the recovered
//!    `is_dummy` flag appended, so queries can be executed with the
//!    dummy-aware rewriting of Appendix B.
//!
//! The engines differ only in leakage, cost model, answer perturbation and
//! query support, which live in their own modules.
//!
//! # Concurrency
//!
//! [`EngineCore`] is sharded the same way the server storage is: the
//! decrypted mirror of each table sits behind its own `RwLock`, and the table
//! map is only write-locked at `Π_Setup` time.  `ingest` therefore takes
//! `&self` and serializes only with other operations on the *same* table, so
//! one owner per table can run `Π_Update` concurrently (the paper's
//! multi-table workload: "yellow" + "green").  Queries take read locks on the
//! tables they touch, mirroring an enclave that scans a stable snapshot.

use crate::backend::{StorageBackend, StorageError};
use crate::emm::{EncryptedMultimap, IndexDef};
use crate::exec::{self, ExecError};
use crate::query::{Query, QueryAnswer};
use crate::rewrite;
use crate::row::Row;
use crate::schema::{Schema, Value};
use crate::server::ServerStorage;
use crate::sogdb::{EdbError, TableStats};
use crate::views::{MaterializedView, ViewDef};
use dpsync_crypto::{EncryptedRecord, KeyPurpose, MasterKey, Prf, RecordCryptor};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One decrypted table held inside the trusted boundary of the engine.
#[derive(Debug, Clone)]
pub struct EngineTable {
    /// Schema extended with the `is_dummy` flag column.
    pub schema: Schema,
    /// Decrypted rows (flag column included).
    pub rows: Vec<Row>,
    /// Number of real records ingested.
    pub real_records: u64,
    /// Number of dummy records ingested.
    pub dummy_records: u64,
    /// Index of the `is_dummy` flag column, cached at `Π_Setup` so queries
    /// and ingest never search the schema by name.
    pub flag_column: usize,
    /// The padded dummy row for this schema (all NULLs plus `is_dummy =
    /// true`), precomputed once at `Π_Setup` and cloned per ingested dummy.
    pub dummy_row: Row,
    /// Materialized views registered over this table, maintained
    /// incrementally by `ingest` under the same per-table lock (so a view
    /// answer can never be observed out of sync with the mirror).
    pub views: BTreeMap<String, MaterializedView>,
    /// Encrypted multimap indexes registered over this table, maintained by
    /// `ingest` under the same per-table lock and with the same one-step-per-
    /// record discipline as the views (dummies file under the dummy label).
    pub indexes: BTreeMap<String, EncryptedMultimap>,
}

/// A shareable handle to one decrypted table.
type TableHandle = Arc<RwLock<EngineTable>>;

/// Shared engine state: ciphertext storage plus the decrypted mirror.
///
/// All methods take `&self`; per-table state lives behind per-table locks so
/// concurrent `Π_Update` calls on distinct tables never contend.
#[derive(Debug)]
pub struct EngineCore {
    cryptor: RecordCryptor,
    storage: ServerStorage,
    tables: RwLock<BTreeMap<String, TableHandle>>,
    /// View name → owning table.  View names are global per engine so the
    /// analyst addresses a view without naming its table; the index keeps
    /// `view_read` O(log views) instead of a scan over every table shard.
    /// Lock order: this index is always taken *before* any table lock.
    view_index: RwLock<BTreeMap<String, String>>,
    /// Index name → owning table, with the same global-namespace and lock
    /// ordering rules as `view_index` (registry before any table lock).
    index_registry: RwLock<BTreeMap<String, String>>,
    /// Root PRF for searchable-index labels, derived from the master key's
    /// [`KeyPurpose::IndexToken`] subkey; each registered index derives its
    /// own PRF from this root so labels never collide across indexes.
    index_prf: Prf,
    query_sequence: AtomicU64,
}

impl EngineCore {
    /// Creates the core with the owner's master key (the engine needs the key
    /// material inside its trusted boundary to process queries), storing
    /// ciphertexts in memory.
    pub fn new(master: &MasterKey) -> Self {
        Self {
            cryptor: RecordCryptor::new(master),
            storage: ServerStorage::new(),
            tables: RwLock::new(BTreeMap::new()),
            view_index: RwLock::new(BTreeMap::new()),
            index_registry: RwLock::new(BTreeMap::new()),
            index_prf: Prf::new(*master.derive(KeyPurpose::IndexToken).bytes()),
            query_sequence: AtomicU64::new(0),
        }
    }

    /// Creates the core over an explicit storage backend.
    ///
    /// Tables already present on a durable backend's medium are recovered
    /// into the server storage (their transcript becomes visible through
    /// [`EngineCore::storage`] immediately), but they have no *decrypted
    /// mirror* — schemas are not persisted by the storage layer — so
    /// recovered tables cannot be queried or appended to through this
    /// engine; [`EngineCore::setup`] refuses them rather than corrupt the
    /// recovered log.  Serve them via [`crate::server::ServerStorage`]
    /// until a schema-aware reopen path exists.
    pub fn with_backend(
        master: &MasterKey,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, StorageError> {
        Ok(Self {
            cryptor: RecordCryptor::new(master),
            storage: ServerStorage::with_backend(backend)?,
            tables: RwLock::new(BTreeMap::new()),
            view_index: RwLock::new(BTreeMap::new()),
            index_registry: RwLock::new(BTreeMap::new()),
            index_prf: Prf::new(*master.derive(KeyPurpose::IndexToken).bytes()),
            query_sequence: AtomicU64::new(0),
        })
    }

    /// Whether `table` has been set up.
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.read().contains_key(table)
    }

    fn table_handle(&self, table: &str) -> Option<TableHandle> {
        self.tables.read().get(table).map(Arc::clone)
    }

    /// `Π_Setup` plumbing: registers the schema and ingests the initial batch
    /// at time 0.
    ///
    /// Refuses tables the *storage* already holds, not just tables this
    /// engine instance set up: on a recovered durable backend, re-running
    /// `Π_Setup` would append a duplicate time-0 batch to a log that already
    /// contains the table's full history, corrupting the recovered
    /// transcript.  (Rebuilding the decrypted mirror from recovered
    /// ciphertexts needs the schema re-registered through a dedicated reopen
    /// path — future work; until then, recovered tables are served by
    /// `ServerStorage` directly.)
    pub fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        {
            let mut tables = self.tables.write();
            if tables.contains_key(table) || self.storage.existing_shard(table).is_some() {
                return Err(EdbError::AlreadySetUp(table.to_string()));
            }
            let extended = rewrite::schema_with_dummy_flag(&schema);
            let flag_column = extended
                .column_index(rewrite::IS_DUMMY_COLUMN)
                .expect("flag column was just appended");
            let dummy_row = Row::new(rewrite::values_with_dummy_flag(
                vec![Value::Null; extended.arity() - 1],
                true,
            ));
            tables.insert(
                table.to_string(),
                Arc::new(RwLock::new(EngineTable {
                    schema: extended,
                    rows: Vec::new(),
                    real_records: 0,
                    dummy_records: 0,
                    flag_column,
                    dummy_row,
                    views: BTreeMap::new(),
                    indexes: BTreeMap::new(),
                })),
            );
        }
        self.ingest(table, 0, records)
    }

    /// `Π_Update` plumbing: ingests an encrypted batch at `time`.
    ///
    /// Write-locks only `table`'s shard (storage and mirror), so owners of
    /// other tables proceed concurrently.
    pub fn ingest(
        &self,
        table: &str,
        time: u64,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        let Some(handle) = self.table_handle(table) else {
            return Err(EdbError::NotSetUp(table.to_string()));
        };
        // The trusted side validates the whole batch first: a record that
        // fails authentication or row decoding rejects the batch before
        // anything is persisted or observed, so a failed protocol run leaves
        // no trace in the durable log, the transcript, or the mirror.
        // Dummies take the fast path (`None`): the padded dummy row was
        // precomputed per schema at setup, so each dummy ingest is one clone
        // — no per-record value construction.  (The *ciphertexts* arriving
        // here are still unique: freshness is enforced at encryption time,
        // see `dpsync_crypto::PreparedPlaintext`.)
        let mut decoded: Vec<Option<Row>> = Vec::with_capacity(records.len());
        for record in &records {
            let view = self.cryptor.decrypt_view(record)?;
            if view.is_dummy() {
                decoded.push(None);
            } else {
                let row = Row::from_bytes(view.payload())
                    .map_err(|e| EdbError::CorruptRow(e.to_string()))?;
                decoded.push(Some(row));
            }
        }

        // Then the server stores (and observes) the ciphertexts; a backend
        // I/O failure still aborts before the mirror is touched, so an
        // unacknowledged batch is visible nowhere.
        let ciphertexts: Vec<_> = records.iter().map(EncryptedRecord::to_bytes).collect();
        self.storage.ingest(table, time, &ciphertexts)?;

        // Mirror append + incremental view and index maintenance, under one
        // table write lock.  Every record of the batch — dummy or real —
        // takes exactly one maintenance step per registered view (dummies as
        // explicit no-ops) and inserts exactly one entry per registered index
        // (dummies under the dummy label), so maintenance cost and index
        // growth depend only on the padded batch volume the transcript
        // already reveals, never on the data.
        let mut guard = handle.write();
        let entry = &mut *guard;
        for row in decoded {
            let position = entry.rows.len() as u64;
            match row {
                None => {
                    for view in entry.views.values_mut() {
                        view.apply_dummy();
                    }
                    for index in entry.indexes.values_mut() {
                        index.apply_dummy(position);
                    }
                    let dummy = entry.dummy_row.clone();
                    entry.rows.push(dummy);
                    entry.dummy_records += 1;
                }
                Some(row) => {
                    let mirror =
                        Row::new(rewrite::values_with_dummy_flag(row.into_values(), false));
                    for view in entry.views.values_mut() {
                        view.apply_row(&entry.schema, &mirror);
                    }
                    for index in entry.indexes.values_mut() {
                        index.apply_row(&mirror, position);
                    }
                    entry.rows.push(mirror);
                    entry.real_records += 1;
                }
            }
        }
        Ok(())
    }

    /// Registers a materialized view over an existing table, backfilling its
    /// state from the mirror (dummy rows take the no-op path, exactly as
    /// they would have during live maintenance).
    ///
    /// View names are global per engine.  Re-registering an identical
    /// definition is an idempotent no-op — the analyst helper re-registers
    /// its hot queries freely — while binding an existing name to a
    /// different definition is rejected.
    pub fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        let Some(handle) = self.table_handle(def.table()) else {
            return Err(EdbError::NotSetUp(def.table().to_string()));
        };
        let mut index = self.view_index.write();
        if let Some(owner) = index.get(def.name()) {
            let existing = self
                .table_handle(owner)
                .and_then(|h| h.read().views.get(def.name()).map(|v| v.def().clone()));
            return if existing.as_ref() == Some(def) {
                Ok(())
            } else {
                Err(EdbError::InvalidView(format!(
                    "view `{}` is already registered with a different definition",
                    def.name()
                )))
            };
        }
        let mut guard = handle.write();
        let entry = &mut *guard;
        let mut view = MaterializedView::new(def.clone(), &entry.schema)?;
        for row in &entry.rows {
            view.apply_mirror_row(&entry.schema, row, entry.flag_column);
        }
        entry.views.insert(def.name().to_string(), view);
        index.insert(def.name().to_string(), def.table().to_string());
        Ok(())
    }

    /// Reads a registered view: returns the underlying query (for the
    /// engine's cost estimate and query observation), the current answer,
    /// and the touched-record count a full scan would have reported.
    ///
    /// The answer itself is produced in O(result size); the returned touch
    /// count is the *transcript* value — engines observe a view read exactly
    /// as they would the equivalent scan, so the adversary cannot tell views
    /// are on.
    pub fn view_read(&self, name: &str) -> Result<(Query, QueryAnswer, u64), EdbError> {
        let owner = self
            .view_index
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EdbError::UnknownView(name.to_string()))?;
        let handle = self
            .table_handle(&owner)
            .ok_or_else(|| EdbError::UnknownView(name.to_string()))?;
        let entry = handle.read();
        let view = entry
            .views
            .get(name)
            .ok_or_else(|| EdbError::UnknownView(name.to_string()))?;
        Ok((
            view.def().query().clone(),
            view.answer(),
            entry.rows.len() as u64,
        ))
    }

    /// Registers an encrypted multimap index over an existing table,
    /// backfilling its entries from the mirror (dummy rows file under the
    /// dummy label, exactly as they would have during live maintenance).
    ///
    /// Index names are global per engine, with the same idempotency rule as
    /// views: re-registering an identical definition is a no-op, binding an
    /// existing name to a different definition is rejected.
    pub fn register_index(&self, def: &IndexDef) -> Result<(), EdbError> {
        let Some(handle) = self.table_handle(def.table()) else {
            return Err(EdbError::NotSetUp(def.table().to_string()));
        };
        let mut registry = self.index_registry.write();
        if let Some(owner) = registry.get(def.name()) {
            let existing = self
                .table_handle(owner)
                .and_then(|h| h.read().indexes.get(def.name()).map(|i| i.def().clone()));
            return if existing.as_ref() == Some(def) {
                Ok(())
            } else {
                Err(EdbError::InvalidIndex(format!(
                    "index `{}` is already registered with a different definition",
                    def.name()
                )))
            };
        }
        let mut guard = handle.write();
        let entry = &mut *guard;
        let prf = Prf::new(self.index_prf.derive_key(&format!(
            "emm/{}/{}",
            def.table(),
            def.column()
        )));
        let mut index = EncryptedMultimap::new(def.clone(), &entry.schema, prf)?;
        for (position, row) in entry.rows.iter().enumerate() {
            index.apply_mirror_row(row, entry.flag_column, position as u64);
        }
        entry.indexes.insert(def.name().to_string(), index);
        registry.insert(def.name().to_string(), def.table().to_string());
        Ok(())
    }

    /// Serves `query` through the registered index `name` instead of a full
    /// scan, returning the answer and the number of index entries fetched
    /// (the response-volume signal an indexed read reveals).
    ///
    /// The answer is byte-identical to [`EngineCore::execute`] on the same
    /// query: the index yields a candidate superset of the rows matching its
    /// column's condition (in mirror order), and the full rewritten query is
    /// then executed over exactly those candidates — so residual predicate
    /// conjuncts, grouping, projection, and dummy filtering all behave as in
    /// the scan path.
    pub fn indexed_read(&self, name: &str, query: &Query) -> Result<(QueryAnswer, u64), EdbError> {
        let owner = self
            .index_registry
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EdbError::UnknownIndex(name.to_string()))?;
        let handle = self
            .table_handle(&owner)
            .ok_or_else(|| EdbError::UnknownIndex(name.to_string()))?;
        if let Query::JoinCount { .. } = query {
            return self.indexed_join(name, &owner, &handle, query);
        }
        let (table, predicate) = match query {
            Query::Count { table, predicate }
            | Query::GroupByCount {
                table, predicate, ..
            }
            | Query::Select {
                table, predicate, ..
            } => (table, predicate.as_ref()),
            Query::JoinCount { .. } => unreachable!("joins handled above"),
        };
        if table != &owner {
            return Err(EdbError::InvalidIndex(format!(
                "index `{name}` covers table `{owner}`, not `{table}`"
            )));
        }
        let entry = handle.read();
        let index = entry
            .indexes
            .get(name)
            .ok_or_else(|| EdbError::UnknownIndex(name.to_string()))?;
        let positions = index.lookup(predicate)?;
        let candidates: Vec<Row> = positions
            .iter()
            .map(|&p| entry.rows[p as usize].clone())
            .collect();
        let rewritten = rewrite::rewrite_query(query);
        let answer = exec::execute(&rewritten, |n| {
            (n == owner).then(|| (Some(&entry.schema), candidates.as_slice()))
        })?;
        Ok((answer, positions.len() as u64))
    }

    /// Index-nested-loop join: scans the non-indexed side's mirror and
    /// probes the index with each real row's join value, re-checking the
    /// fetched candidates with the executor's exact match semantics
    /// (dummy-flag filter, NULL-key skip, typed `group_key` equality).
    ///
    /// Touched count = the probe side's full padded mirror plus every index
    /// entry fetched — the honest cost/leakage of this plan.
    fn indexed_join(
        &self,
        name: &str,
        owner: &str,
        handle: &TableHandle,
        query: &Query,
    ) -> Result<(QueryAnswer, u64), EdbError> {
        let Query::JoinCount {
            left,
            right,
            left_column,
            right_column,
        } = query
        else {
            unreachable!("caller matched JoinCount");
        };
        let column = {
            let entry = handle.read();
            let index = entry
                .indexes
                .get(name)
                .ok_or_else(|| EdbError::UnknownIndex(name.to_string()))?;
            index.def().column().to_string()
        };
        // Orient the loop: the indexed side is probed, the other side drives.
        let (outer_table, outer_column) = if owner == right && &column == right_column {
            (left.as_str(), left_column.as_str())
        } else if owner == left && &column == left_column {
            (right.as_str(), right_column.as_str())
        } else {
            return Err(EdbError::InvalidIndex(format!(
                "index `{name}` is on `{owner}.{column}`, which is not a join column of this query"
            )));
        };
        let Some(outer_handle) = self.table_handle(outer_table) else {
            return Err(EdbError::NotSetUp(outer_table.to_string()));
        };
        // Read-lock in name order, same discipline as `execute`.
        let handles: BTreeMap<&str, TableHandle> =
            [(owner, Arc::clone(handle)), (outer_table, outer_handle)]
                .into_iter()
                .collect();
        let guards: BTreeMap<&str, parking_lot::RwLockReadGuard<'_, EngineTable>> =
            handles.iter().map(|(n, h)| (*n, h.read())).collect();
        let inner = guards.get(owner).expect("locked above");
        let outer = guards.get(outer_table).expect("locked above");
        let index = inner
            .indexes
            .get(name)
            .ok_or_else(|| EdbError::UnknownIndex(name.to_string()))?;
        let oi =
            outer
                .schema
                .column_index(outer_column)
                .ok_or_else(|| ExecError::UnknownColumn {
                    table: outer_table.to_string(),
                    column: outer_column.to_string(),
                })?;
        let ii = index.column_index();
        let mut pairs = 0u64;
        let mut fetched = 0u64;
        for row in &outer.rows {
            if row.value(outer.flag_column) != Some(&Value::Bool(false)) {
                continue;
            }
            let Some(v) = row.value(oi) else { continue };
            if v.is_null() {
                continue;
            }
            let Some(positions) = index.probe(v) else {
                // No exact integer image: such a value can never equal one of
                // the indexed column's (integer-typed) values.
                continue;
            };
            fetched += positions.len() as u64;
            for p in positions {
                let candidate = &inner.rows[p as usize];
                if candidate.value(inner.flag_column) != Some(&Value::Bool(false)) {
                    continue;
                }
                let Some(cv) = candidate.value(ii) else {
                    continue;
                };
                if !cv.is_null() && cv.group_key() == v.group_key() {
                    pairs += 1;
                }
            }
        }
        Ok((
            QueryAnswer::Scalar(pairs as f64),
            outer.rows.len() as u64 + fetched,
        ))
    }

    /// Executes `query` over the decrypted mirror with dummy-aware rewriting.
    ///
    /// Returns the exact answer plus the number of ciphertexts touched (used
    /// by the cost models and the adversary's transcript).  Takes read locks
    /// on every table the query names, held for the duration of execution.
    pub fn execute(&self, query: &Query) -> Result<(QueryAnswer, u64), EdbError> {
        let rewritten = rewrite::rewrite_query(query);
        // Resolve handles first (map read lock released immediately), then
        // read-lock the touched tables in name order for a stable snapshot.
        let handles: BTreeMap<&str, TableHandle> = {
            let tables = self.tables.read();
            query
                .tables()
                .iter()
                .filter_map(|name| tables.get(*name).map(|h| (*name, Arc::clone(h))))
                .collect()
        };
        let guards: BTreeMap<&str, parking_lot::RwLockReadGuard<'_, EngineTable>> =
            handles.iter().map(|(name, h)| (*name, h.read())).collect();

        // Count per *mention*, not per distinct table: a self-join touches the
        // table once per side, and the cost model / adversary transcript must
        // reflect that.
        let touched: u64 = query
            .tables()
            .iter()
            .map(|name| guards.get(*name).map_or(0, |t| t.rows.len() as u64))
            .sum();
        // Joins: the AST rewrite is the identity, so filter dummies by
        // materializing dummy-free sides here.  Schemas are *borrowed* from
        // the guards for the duration of execution — the per-query
        // `schema.clone()` this used to do was pure churn.
        let answer = match &*rewritten {
            Query::JoinCount { .. } => {
                let filtered: BTreeMap<&str, Vec<Row>> = guards
                    .iter()
                    .map(|(name, t)| {
                        let rows = t
                            .rows
                            .iter()
                            .filter(|r| r.value(t.flag_column) == Some(&Value::Bool(false)))
                            .cloned()
                            .collect::<Vec<_>>();
                        (*name, rows)
                    })
                    .collect();
                exec::execute(&rewritten, |name| {
                    let table = guards.get(name)?;
                    let rows = filtered.get(name)?;
                    Some((Some(&table.schema), rows.as_slice()))
                })?
            }
            _ => exec::execute(&rewritten, |name| {
                let table = guards.get(name)?;
                Some((Some(&table.schema), table.rows.as_slice()))
            })?,
        };
        Ok((answer, touched))
    }

    /// Number of ciphertexts stored for `table`.
    pub fn ciphertext_count(&self, table: &str) -> u64 {
        self.storage.ciphertext_count(table)
    }

    /// Size statistics for `table`.
    pub fn table_stats(&self, table: &str) -> TableStats {
        let (real, dummy) = self
            .table_handle(table)
            .map(|h| {
                let t = h.read();
                (t.real_records, t.dummy_records)
            })
            .unwrap_or((0, 0));
        TableStats {
            ciphertext_count: self.storage.ciphertext_count(table),
            ciphertext_bytes: self.storage.table_bytes(table),
            real_records: real,
            dummy_records: dummy,
        }
    }

    /// Access to the server storage (interior-mutable: recording query
    /// observations also goes through `&self`).
    pub fn storage(&self) -> &ServerStorage {
        &self.storage
    }

    /// Returns and increments the query sequence counter.
    pub fn next_query_sequence(&self) -> u64 {
        self.query_sequence.fetch_add(1, Ordering::Relaxed)
    }

    /// A snapshot of the decrypted mirror for `table` (used in white-box
    /// tests; clones the rows).
    pub fn table_snapshot(&self, table: &str) -> Option<EngineTable> {
        self.table_handle(table).map(|h| h.read().clone())
    }
}

/// Helper shared by the engines' tests and the workload crate: encrypts a
/// batch of plaintext rows (plus `dummies` dummy records) with the owner-side
/// cryptor.
///
/// One payload buffer is reused across all rows, and the dummies ride the
/// prepared fast path — each one still a fresh encryption (fresh nonce and
/// keystream), only the padded plaintext is shared.
pub fn encrypt_batch(
    cryptor: &mut RecordCryptor,
    rows: &[Row],
    dummies: usize,
) -> Vec<EncryptedRecord> {
    let mut out = Vec::with_capacity(rows.len() + dummies);
    cryptor
        .encrypt_batch_into(rows, |row, buf| row.encode_into(buf), dummies, &mut out)
        .expect("row fits record payload");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{paper_queries, Predicate};
    use crate::schema::DataType;
    use std::thread;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ])
    }

    fn row(t: u64, p: i64) -> Row {
        Row::new(vec![Value::Timestamp(t), Value::Int(p)])
    }

    fn core_with_data() -> (EngineCore, RecordCryptor) {
        let master = MasterKey::from_bytes([9u8; 32]);
        let mut owner_cryptor = RecordCryptor::new(&master);
        let core = EngineCore::new(&master);
        let initial = encrypt_batch(&mut owner_cryptor, &[row(1, 60), row(2, 80)], 3);
        core.setup("yellow", schema(), initial).unwrap();
        (core, owner_cryptor)
    }

    #[test]
    fn setup_then_update_accumulates_rows_and_ciphertexts() {
        let (core, mut cryptor) = core_with_data();
        let batch = encrypt_batch(&mut cryptor, &[row(3, 90)], 1);
        core.ingest("yellow", 30, batch).unwrap();
        let stats = core.table_stats("yellow");
        assert_eq!(stats.ciphertext_count, 7);
        assert_eq!(stats.real_records, 3);
        assert_eq!(stats.dummy_records, 4);
        assert_eq!(
            stats.ciphertext_bytes,
            7 * EncryptedRecord::TOTAL_LEN as u64
        );
        // The adversary saw two updates: setup (t=0) and the t=30 batch.
        let view = core.storage().adversary_view();
        assert_eq!(view.update_pattern().times(), vec![0, 30]);
        assert_eq!(view.update_pattern().volumes(), vec![5, 2]);
    }

    #[test]
    fn execute_ignores_dummies() {
        let (core, _) = core_with_data();
        let (answer, touched) = core
            .execute(&paper_queries::q1_range_count("yellow"))
            .unwrap();
        assert_eq!(answer, QueryAnswer::Scalar(2.0));
        assert_eq!(touched, 5);
    }

    #[test]
    fn join_execution_filters_both_sides() {
        let master = MasterKey::from_bytes([9u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let core = EngineCore::new(&master);
        core.setup(
            "yellow",
            schema(),
            encrypt_batch(&mut cryptor, &[row(5, 1), row(6, 2)], 4),
        )
        .unwrap();
        core.setup(
            "green",
            schema(),
            encrypt_batch(&mut cryptor, &[row(5, 3), row(7, 4)], 4),
        )
        .unwrap();
        let (answer, touched) = core
            .execute(&paper_queries::q3_join_count("yellow", "green"))
            .unwrap();
        // Only t=5 matches, and dummy rows (NULL pick_time) must not join.
        assert_eq!(answer, QueryAnswer::Scalar(1.0));
        assert_eq!(touched, 12);
    }

    #[test]
    fn join_with_asymmetric_pad_volumes_leaks_no_dummies() {
        // The two sides carry *different* DP pad volumes (4 vs 9 dummies):
        // a dummy leaking into either side of the join would change the
        // count — all-NULL dummy rows joining each other would add 4 × 9
        // phantom pairs, and a dummy pairing with a real row would add at
        // least one.  The flag filter and the executor's NULL-key skip keep
        // the answer the pure real-row join count.
        let master = MasterKey::from_bytes([9u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let core = EngineCore::new(&master);
        core.setup(
            "yellow",
            schema(),
            encrypt_batch(&mut cryptor, &[row(5, 1), row(6, 2), row(6, 3)], 4),
        )
        .unwrap();
        core.setup(
            "green",
            schema(),
            encrypt_batch(&mut cryptor, &[row(6, 4), row(8, 5)], 9),
        )
        .unwrap();
        let (answer, touched) = core
            .execute(&paper_queries::q3_join_count("yellow", "green"))
            .unwrap();
        // Real matches only: yellow's two t=6 rows join green's one t=6 row.
        assert_eq!(answer, QueryAnswer::Scalar(2.0));
        // The transcript still reflects the padded volumes on both sides.
        assert_eq!(touched, (3 + 4) + (2 + 9));
    }

    #[test]
    fn concurrent_ingest_to_distinct_tables() {
        let master = MasterKey::from_bytes([3u8; 32]);
        let core = EngineCore::new(&master);
        {
            let mut cryptor = RecordCryptor::with_sequence(&master, 1 << 40);
            core.setup("yellow", schema(), encrypt_batch(&mut cryptor, &[], 0))
                .unwrap();
            let mut cryptor = RecordCryptor::with_sequence(&master, 2 << 40);
            core.setup("green", schema(), encrypt_batch(&mut cryptor, &[], 0))
                .unwrap();
        }
        thread::scope(|scope| {
            for (i, table) in ["yellow", "green"].into_iter().enumerate() {
                let core = &core;
                let master = &master;
                scope.spawn(move || {
                    let mut cryptor = RecordCryptor::with_sequence(master, ((i as u64) + 10) << 40);
                    for t in 1..=50u64 {
                        let batch = encrypt_batch(&mut cryptor, &[row(t, t as i64)], 1);
                        core.ingest(table, t, batch).unwrap();
                    }
                });
            }
        });
        for table in ["yellow", "green"] {
            let stats = core.table_stats(table);
            assert_eq!(stats.real_records, 50);
            assert_eq!(stats.dummy_records, 50);
        }
        // The merged transcript covers both tables' uploads plus both setups.
        let view = core.storage().adversary_view();
        assert_eq!(view.update_pattern().len(), 2 + 2 * 50);
    }

    #[test]
    fn double_setup_and_missing_table_errors() {
        let (core, mut cryptor) = core_with_data();
        assert!(matches!(
            core.setup("yellow", schema(), vec![]),
            Err(EdbError::AlreadySetUp(_))
        ));
        let batch = encrypt_batch(&mut cryptor, &[row(9, 9)], 0);
        assert!(matches!(
            core.ingest("green", 10, batch),
            Err(EdbError::NotSetUp(_))
        ));
        assert!(core.has_table("yellow"));
        assert!(!core.has_table("green"));
    }

    #[test]
    fn wrong_key_records_fail_to_ingest() {
        let master = MasterKey::from_bytes([9u8; 32]);
        let other = MasterKey::from_bytes([1u8; 32]);
        let mut wrong_cryptor = RecordCryptor::new(&other);
        let core = EngineCore::new(&master);
        let batch = encrypt_batch(&mut wrong_cryptor, &[row(1, 1)], 0);
        let err = core.setup("yellow", schema(), batch).unwrap_err();
        assert!(matches!(err, EdbError::Crypto(_)));
    }

    #[test]
    fn rejected_batch_leaves_no_trace_anywhere() {
        // Validation happens before the durable append and before the
        // mirror is touched: a batch with one bad record must be invisible
        // in storage, the transcript, and the decrypted mirror — otherwise a
        // crash-recovered log would replay a batch the protocol never
        // acknowledged.
        let (core, mut cryptor) = core_with_data();
        let stats_before = core.table_stats("yellow");
        let view_before = core.storage().adversary_view();

        let wrong = MasterKey::from_bytes([1u8; 32]);
        let mut wrong_cryptor = RecordCryptor::new(&wrong);
        let mut batch = encrypt_batch(&mut cryptor, &[row(7, 70)], 1);
        batch.extend(encrypt_batch(&mut wrong_cryptor, &[row(8, 80)], 0));

        let err = core.ingest("yellow", 60, batch).unwrap_err();
        assert!(matches!(err, EdbError::Crypto(_)));
        assert_eq!(core.table_stats("yellow"), stats_before);
        assert_eq!(core.storage().adversary_view(), view_before);
        let mirror = core.table_snapshot("yellow").unwrap();
        assert_eq!(
            mirror.rows.len() as u64,
            stats_before.real_records + stats_before.dummy_records
        );
    }

    #[test]
    fn query_sequence_increments() {
        let (core, _) = core_with_data();
        assert_eq!(core.next_query_sequence(), 0);
        assert_eq!(core.next_query_sequence(), 1);
    }

    #[test]
    fn view_backfills_then_tracks_ingest_incrementally() {
        let (core, mut cryptor) = core_with_data();
        let def = ViewDef::new("q1", paper_queries::q1_range_count("yellow")).unwrap();
        core.register_view(&def).unwrap();
        // Backfill covers the already-ingested batch (2 real + 3 dummies).
        let (query, answer, touched) = core.view_read("q1").unwrap();
        assert_eq!(query, paper_queries::q1_range_count("yellow"));
        assert_eq!(answer, QueryAnswer::Scalar(2.0));
        assert_eq!(touched, 5);
        // New batches are applied as deltas, dummies as no-ops.
        let batch = encrypt_batch(&mut cryptor, &[row(3, 90), row(4, 900)], 2);
        core.ingest("yellow", 30, batch).unwrap();
        let (_, answer, touched) = core.view_read("q1").unwrap();
        assert_eq!(answer, QueryAnswer::Scalar(3.0));
        assert_eq!(touched, 9);
        // The view answer matches the rewritten full scan bit-for-bit.
        let (scan, _) = core
            .execute(&paper_queries::q1_range_count("yellow"))
            .unwrap();
        assert_eq!(scan, answer);
        // Maintenance touched every mirror record exactly once.
        let snapshot = core.table_snapshot("yellow").unwrap();
        assert_eq!(snapshot.views["q1"].maintained_records(), 9);
    }

    #[test]
    fn group_view_matches_scan_after_mixed_batches() {
        let (core, mut cryptor) = core_with_data();
        let def = ViewDef::new("q2", paper_queries::q2_group_by_count("yellow")).unwrap();
        core.register_view(&def).unwrap();
        let batch = encrypt_batch(&mut cryptor, &[row(3, 60), row(4, 80), row(5, 60)], 3);
        core.ingest("yellow", 42, batch).unwrap();
        let (_, view_answer, _) = core.view_read("q2").unwrap();
        let (scan_answer, _) = core
            .execute(&paper_queries::q2_group_by_count("yellow"))
            .unwrap();
        assert_eq!(view_answer, scan_answer);
    }

    #[test]
    fn view_registration_errors_and_idempotency() {
        let (core, _) = core_with_data();
        let def = ViewDef::new("q1", paper_queries::q1_range_count("yellow")).unwrap();
        core.register_view(&def).unwrap();
        // Same definition again: idempotent.
        core.register_view(&def).unwrap();
        // Same name, different definition: rejected.
        let other = ViewDef::new("q1", paper_queries::q2_group_by_count("yellow")).unwrap();
        assert!(matches!(
            core.register_view(&other),
            Err(EdbError::InvalidView(_))
        ));
        // Unknown table and unknown group column.
        let missing = ViewDef::new("g", paper_queries::q1_range_count("green")).unwrap();
        assert!(matches!(
            core.register_view(&missing),
            Err(EdbError::NotSetUp(_))
        ));
        let bad_column = ViewDef::new(
            "bad",
            Query::GroupByCount {
                table: "yellow".into(),
                group_by: "ghost".into(),
                predicate: None,
            },
        )
        .unwrap();
        assert!(matches!(
            core.register_view(&bad_column),
            Err(EdbError::Exec(_))
        ));
        // Reads of unregistered names fail cleanly.
        assert!(matches!(
            core.view_read("nope"),
            Err(EdbError::UnknownView(_))
        ));
    }

    #[test]
    fn rejected_batch_leaves_views_untouched() {
        let (core, mut cryptor) = core_with_data();
        let def = ViewDef::new("q1", paper_queries::q1_range_count("yellow")).unwrap();
        core.register_view(&def).unwrap();
        let before = core.view_read("q1").unwrap();

        let wrong = MasterKey::from_bytes([1u8; 32]);
        let mut wrong_cryptor = RecordCryptor::new(&wrong);
        let mut batch = encrypt_batch(&mut cryptor, &[row(7, 70)], 1);
        batch.extend(encrypt_batch(&mut wrong_cryptor, &[row(8, 80)], 0));
        assert!(core.ingest("yellow", 60, batch).is_err());

        assert_eq!(core.view_read("q1").unwrap(), before);
        let snapshot = core.table_snapshot("yellow").unwrap();
        assert_eq!(snapshot.views["q1"].maintained_records(), 5);
    }

    #[test]
    fn index_backfills_then_tracks_ingest_incrementally() {
        let (core, mut cryptor) = core_with_data();
        let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
        core.register_index(&def).unwrap();
        // Backfill covers the already-ingested batch (2 real + 3 dummies).
        let q1 = paper_queries::q1_range_count("yellow");
        let (answer, fetched) = core.indexed_read("idx", &q1).unwrap();
        assert_eq!(answer, QueryAnswer::Scalar(2.0));
        assert_eq!(fetched, 2);
        // New batches maintain the index as deltas; dummies add entries too,
        // but under the dummy label, so lookups never fetch them.
        let batch = encrypt_batch(&mut cryptor, &[row(3, 90), row(4, 900)], 2);
        core.ingest("yellow", 30, batch).unwrap();
        let (answer, fetched) = core.indexed_read("idx", &q1).unwrap();
        assert_eq!(answer, QueryAnswer::Scalar(3.0));
        assert_eq!(fetched, 3);
        // The indexed answer matches the full scan bit-for-bit.
        let (scan, _) = core.execute(&q1).unwrap();
        assert_eq!(scan, answer);
        // Maintenance inserted exactly one entry per padded record.
        let snapshot = core.table_snapshot("yellow").unwrap();
        assert_eq!(snapshot.indexes["idx"].maintained_records(), 9);
        assert_eq!(snapshot.indexes["idx"].entry_count(), 9);
    }

    #[test]
    fn indexed_group_by_and_select_match_scan() {
        let (core, mut cryptor) = core_with_data();
        let batch = encrypt_batch(&mut cryptor, &[row(3, 60), row(4, 60), row(5, 90)], 3);
        core.ingest("yellow", 30, batch).unwrap();
        let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
        core.register_index(&def).unwrap();
        // A grouped query with an equality conjunct on the indexed column.
        let grouped = Query::GroupByCount {
            table: "yellow".into(),
            group_by: "pick_time".into(),
            predicate: Some(Predicate::Eq("pickup_id".into(), Value::Int(60))),
        };
        let (indexed, fetched) = core.indexed_read("idx", &grouped).unwrap();
        let (scan, _) = core.execute(&grouped).unwrap();
        assert_eq!(indexed, scan);
        assert_eq!(fetched, 3);
        // A projection with a residual conjunct the index cannot serve:
        // candidates are re-filtered by the executor.
        let select = Query::Select {
            table: "yellow".into(),
            columns: vec!["pick_time".into()],
            predicate: Some(
                Predicate::Eq("pickup_id".into(), Value::Int(60))
                    .and(Predicate::GreaterThan("pick_time".into(), 2.0)),
            ),
        };
        let (indexed, _) = core.indexed_read("idx", &select).unwrap();
        let (scan, _) = core.execute(&select).unwrap();
        assert_eq!(indexed, scan);
        assert_eq!(indexed.as_rows().unwrap().len(), 2);
    }

    #[test]
    fn indexed_join_matches_scan_join() {
        let master = MasterKey::from_bytes([9u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let core = EngineCore::new(&master);
        core.setup(
            "yellow",
            schema(),
            encrypt_batch(&mut cryptor, &[row(5, 1), row(6, 2), row(6, 3)], 4),
        )
        .unwrap();
        core.setup(
            "green",
            schema(),
            encrypt_batch(&mut cryptor, &[row(6, 4), row(8, 5), row(6, 6)], 9),
        )
        .unwrap();
        let def = IndexDef::new("jix", "green", "pick_time").unwrap();
        core.register_index(&def).unwrap();
        let q3 = paper_queries::q3_join_count("yellow", "green");
        let (indexed, touched) = core.indexed_read("jix", &q3).unwrap();
        let (scan, _) = core.execute(&q3).unwrap();
        assert_eq!(indexed, scan);
        assert_eq!(indexed, QueryAnswer::Scalar(4.0));
        // Probe side scans yellow's padded mirror (7); the two t=6 probes
        // each fetch green's two t=6 entries, the t=5 probe fetches none.
        assert_eq!(touched, 7 + 4);
    }

    #[test]
    fn index_registration_errors_and_idempotency() {
        let (core, _) = core_with_data();
        let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
        core.register_index(&def).unwrap();
        // Same definition again: idempotent.
        core.register_index(&def).unwrap();
        // Same name, different definition: rejected.
        let other = IndexDef::new("idx", "yellow", "pick_time").unwrap();
        assert!(matches!(
            core.register_index(&other),
            Err(EdbError::InvalidIndex(_))
        ));
        // Unknown table and unknown column.
        let missing = IndexDef::new("g", "green", "pickup_id").unwrap();
        assert!(matches!(
            core.register_index(&missing),
            Err(EdbError::NotSetUp(_))
        ));
        let ghost = IndexDef::new("ghost", "yellow", "ghost").unwrap();
        assert!(matches!(
            core.register_index(&ghost),
            Err(EdbError::Exec(_))
        ));
        // Reads through unregistered names fail cleanly.
        assert!(matches!(
            core.indexed_read("nope", &paper_queries::q1_range_count("yellow")),
            Err(EdbError::UnknownIndex(_))
        ));
        // Reads naming a table the index does not cover are rejected.
        assert!(matches!(
            core.indexed_read("idx", &paper_queries::q1_range_count("blue")),
            Err(EdbError::InvalidIndex(_))
        ));
        // A join whose columns the index does not serve is rejected.
        assert!(matches!(
            core.indexed_read("idx", &paper_queries::q3_join_count("yellow", "yellow")),
            Err(EdbError::InvalidIndex(_))
        ));
    }

    #[test]
    fn rejected_batch_leaves_indexes_untouched() {
        let (core, mut cryptor) = core_with_data();
        let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
        core.register_index(&def).unwrap();
        let q1 = paper_queries::q1_range_count("yellow");
        let before = core.indexed_read("idx", &q1).unwrap();

        let wrong = MasterKey::from_bytes([1u8; 32]);
        let mut wrong_cryptor = RecordCryptor::new(&wrong);
        let mut batch = encrypt_batch(&mut cryptor, &[row(7, 70)], 1);
        batch.extend(encrypt_batch(&mut wrong_cryptor, &[row(8, 80)], 0));
        assert!(core.ingest("yellow", 60, batch).is_err());

        assert_eq!(core.indexed_read("idx", &q1).unwrap(), before);
        let snapshot = core.table_snapshot("yellow").unwrap();
        assert_eq!(snapshot.indexes["idx"].maintained_records(), 5);
    }

    #[test]
    fn stats_for_unknown_table_are_zero() {
        let (core, _) = core_with_data();
        assert_eq!(core.table_stats("nope"), TableStats::default());
        assert!(core.table_snapshot("nope").is_none());
        assert_eq!(core.ciphertext_count("yellow"), 5);
    }
}
