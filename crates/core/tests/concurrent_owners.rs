//! Multi-owner concurrency: two owners driving `Π_Update` against one shared
//! engine from separate threads, with a barrier per time unit, must leave the
//! adversary with exactly the transcript a single-threaded run produces.
//!
//! This is the execution-model half of Definition 2: the update pattern is a
//! set of `(t, |γ_t|)` events, so as long as no upload crosses a tick
//! boundary, intra-tick interleaving of per-table uploads must be invisible
//! in the canonical merged [`AdversaryView`].

use dpsync_core::owner::Owner;
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, StrategyKind, SyncStrategy, SynchronizeEveryTime,
    SynchronizeUponReceipt,
};
use dpsync_core::timeline::Timestamp;
use dpsync_crypto::MasterKey;
use dpsync_dp::{DpRng, Epsilon};
use dpsync_edb::engines::ObliDbEngine;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::view::AdversaryView;
use dpsync_edb::{DataType, Row, Schema, Value};
use std::sync::Barrier;
use std::thread;

const HORIZON: u64 = 600;

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("pick_time", DataType::Timestamp),
        ("pickup_id", DataType::Int),
    ])
}

fn row(t: u64, p: i64) -> Row {
    Row::new(vec![Value::Timestamp(t), Value::Int(p)])
}

/// Table-specific arrivals: yellow receives on even ticks, green on ticks
/// divisible by 3, so the two owners' sync schedules genuinely interleave.
fn arrivals(table: &str, t: u64) -> Vec<Row> {
    match table {
        "yellow" if t.is_multiple_of(2) => vec![row(t, (t % 100) as i64)],
        "green" if t.is_multiple_of(3) => vec![row(t, (t % 50) as i64)],
        _ => vec![],
    }
}

fn strategy_for(kind: StrategyKind) -> Box<dyn SyncStrategy> {
    match kind {
        StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
        StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
        StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
            Epsilon::new_unchecked(0.5),
            10,
            Some(CacheFlush::new(150, 5)),
        )),
        other => panic!("not exercised here: {other:?}"),
    }
}

fn make_owner(table: &str, master: &MasterKey, kind: StrategyKind) -> (Owner, DpRng) {
    let owner = Owner::new(table, schema(), master, strategy_for(kind));
    let rng = DpRng::seed_from_u64(41).derive(&format!("owner-ticks/{table}"));
    (owner, rng)
}

/// The single-threaded reference: owners tick back to back on one thread.
fn sequential_transcript(kind: StrategyKind) -> AdversaryView {
    let master = MasterKey::from_bytes([8u8; 32]);
    let engine = ObliDbEngine::new(&master);
    let mut owners: Vec<(Owner, DpRng)> = ["yellow", "green"]
        .iter()
        .map(|table| make_owner(table, &master, kind))
        .collect();
    for (owner, rng) in &mut owners {
        owner.setup(vec![row(0, 1)], &engine, rng).unwrap();
    }
    for t in 1..=HORIZON {
        for (owner, rng) in &mut owners {
            let batch = arrivals(owner.table(), t);
            owner.tick(Timestamp(t), &batch, &engine, rng).unwrap();
        }
    }
    engine.adversary_view()
}

/// The concurrent run: one thread per owner, barrier-synchronized per tick,
/// both calling `Π_Update` on the same engine.
fn interleaved_transcript(kind: StrategyKind) -> AdversaryView {
    let master = MasterKey::from_bytes([8u8; 32]);
    let engine = ObliDbEngine::new(&master);
    // Setup runs on the main thread (the paper's Π_Setup precedes the
    // synchronized timeline).
    let mut owners: Vec<(Owner, DpRng)> = ["yellow", "green"]
        .iter()
        .map(|table| make_owner(table, &master, kind))
        .collect();
    for (owner, rng) in &mut owners {
        owner.setup(vec![row(0, 1)], &engine, rng).unwrap();
    }

    let barrier = Barrier::new(owners.len());
    thread::scope(|scope| {
        for (mut owner, mut rng) in owners.drain(..) {
            let barrier = &barrier;
            let engine: &dyn SecureOutsourcedDatabase = &engine;
            scope.spawn(move || {
                for t in 1..=HORIZON {
                    barrier.wait();
                    let batch = arrivals(owner.table(), t);
                    owner.tick(Timestamp(t), &batch, engine, &mut rng).unwrap();
                }
            });
        }
    });
    engine.adversary_view()
}

#[test]
fn interleaved_owners_produce_the_reference_transcript() {
    for kind in [StrategyKind::Sur, StrategyKind::Set, StrategyKind::DpAnt] {
        let reference = sequential_transcript(kind);
        let interleaved = interleaved_transcript(kind);
        assert_eq!(
            reference, interleaved,
            "merged transcript diverged from the single-threaded reference for {kind:?}"
        );
        // Sanity: the run actually produced interleavable work.
        assert!(reference.update_pattern().len() > 10, "{kind:?} too quiet");
    }
}

#[test]
fn merged_transcript_is_time_ordered_with_table_tiebreak() {
    let view = interleaved_transcript(StrategyKind::Set);
    let events = view.update_events();
    assert!(
        events.windows(2).all(|w| w[0].time <= w[1].time),
        "canonical transcript must be time-sorted"
    );
    // SET posts one upload per table per tick: every tick appears twice.
    let times: Vec<u64> = view.update_pattern().times();
    for t in 1..=HORIZON {
        assert_eq!(
            times.iter().filter(|&&x| x == t).count(),
            2,
            "tick {t} should carry one upload per owner"
        );
    }
}
