//! Verifies the Table-4 mechanisms empirically: runs the DP-Timer and DP-ANT
//! update-pattern mechanisms on neighboring growing databases many times and
//! checks that the observed odds ratio of the released update volumes stays
//! within `e^epsilon` (the executable counterpart of Theorems 10 and 11).
//!
//! Usage: `cargo run --release -p dpsync-bench --bin exp_table4_privacy [--seed S]`
//!
//! This is an **analytic** experiment: the Monte-Carlo trials run entirely in
//! process, so it accepts no `--transport`/`--backend` flags — passing one is
//! an error, not a no-op.

use dpsync_bench::experiments::tables::{table4_text, verify_update_pattern_privacy};
use dpsync_bench::ExperimentConfig;

fn main() {
    let config =
        ExperimentConfig::from_args_analytic("exp_table4_privacy", std::env::args().skip(1));
    let epsilon = 1.0;
    let trials = 20_000;
    println!(
        "Table 4 — empirical verification of the update-pattern mechanisms (epsilon = {epsilon}, {trials} trials per neighboring database)\n"
    );
    let verification = verify_update_pattern_privacy(epsilon, trials, config.seed);
    print!("{}", table4_text(&verification).render());
    if verification.timer.passes && verification.ant.passes {
        println!(
            "\nBoth DP strategies stay within the e^epsilon bound (Theorems 10 and 11); \
             worst-case headroom {:.2}x under the statistically corrected bound \
             across point buckets and tail events.",
            verification
                .timer
                .headroom()
                .min(verification.ant.headroom())
        );
    } else {
        println!("\nWARNING: a strategy exceeded the e^epsilon bound — investigate before trusting the implementation.");
        std::process::exit(1);
    }
}
