//! Cryptographic substrate for DP-Sync.
//!
//! DP-Sync's interoperability requirements (paper §2, P4) demand an encrypted
//! database in which *each record is encrypted independently into a separate
//! ciphertext* and in which dummy records are indistinguishable from real
//! ones.  This crate provides that substrate, implemented from scratch on top
//! of the ChaCha20 stream cipher (RFC 8439):
//!
//! * [`chacha`] — the ChaCha20 block function and keystream generator.
//! * [`prf`] — a keyed pseudo-random function, and a PRF-based message
//!   authentication code built on the block function.
//! * [`keys`] — master-key handling and per-purpose sub-key derivation.
//! * [`record`] — fixed-size authenticated record encryption with an
//!   encrypted `is_dummy` marker, so ciphertexts of dummy and real records
//!   are byte-for-byte indistinguishable to the server.
//!
//! None of this code is intended to compete with audited cryptography
//! libraries; it exists so that the encrypted-database substrates in
//! `dpsync-edb` actually move ciphertext bytes around (padding, sizes and
//! costs are real) without pulling external crypto dependencies into the
//! reproduction.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chacha;
pub mod keys;
pub mod prf;
pub mod record;

pub use chacha::{ChaCha20, Keystream, CHACHA_KEY_LEN, CHACHA_NONCE_LEN};
pub use keys::{KeyPurpose, MasterKey, SubKey};
pub use prf::{Mac, Prf};
pub use record::{
    CiphertextBytes, EncryptedRecord, PlaintextView, PreparedPlaintext, RecordCryptor,
    RecordPlaintext, RECORD_PAYLOAD_LEN,
};

/// Error type for all cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext failed authentication (wrong key, truncation, tampering).
    AuthenticationFailed,
    /// A plaintext payload exceeded the fixed record payload size.
    PayloadTooLarge {
        /// Length the caller supplied.
        got: usize,
        /// Maximum allowed payload length.
        max: usize,
    },
    /// A ciphertext had an unexpected length and cannot be parsed.
    MalformedCiphertext {
        /// Length the caller supplied.
        got: usize,
        /// Expected total ciphertext length.
        expected: usize,
    },
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "ciphertext failed authentication"),
            CryptoError::PayloadTooLarge { got, max } => {
                write!(
                    f,
                    "record payload of {got} bytes exceeds the {max}-byte limit"
                )
            }
            CryptoError::MalformedCiphertext { got, expected } => {
                write!(f, "ciphertext is {got} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CryptoError::PayloadTooLarge { got: 300, max: 256 };
        assert!(e.to_string().contains("300"));
        let e = CryptoError::MalformedCiphertext {
            got: 10,
            expected: 64,
        };
        assert!(e.to_string().contains("expected 64"));
        assert!(CryptoError::AuthenticationFailed
            .to_string()
            .contains("authentication"));
    }
}
