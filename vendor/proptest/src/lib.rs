//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the [`strategy::Strategy`] trait (ranges, tuples, `prop_map`,
//! collections, `any::<T>()`), [`test_runner::ProptestConfig`], and the
//! [`proptest!`] / `prop_assert*` macros. Differences from upstream:
//!
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (every generated binding is `Debug`-printed) but is not reduced.
//! * **Deterministic seeding** — cases derive from a fixed seed XOR'd with the
//!   `PROPTEST_SEED` environment variable when set, so CI runs are stable.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

/// The `prop` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions of the form
/// `fn name(binding in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($binding:pat_param in $strat:expr),+ $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::case_rng(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let $binding = {
                            let __value =
                                $crate::strategy::Strategy::new_value(&$strat, &mut __rng);
                            __inputs.push(format!(
                                "    {} = {:?}", stringify!($binding), __value
                            ));
                            __value
                        };
                    )+
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest: case {}/{} of `{}` failed with inputs:\n{}\n(set PROPTEST_SEED to vary the stream)",
                            __case + 1, __config.cases, stringify!($name),
                            __inputs.join("\n"),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
