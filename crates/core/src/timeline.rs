//! Discrete time, logical updates and the growing database.
//!
//! The paper models time as discrete units (one minute in the evaluation's
//! client simulation) and a growing database as an initial database `D₀` plus
//! a sequence of logical updates `u_t`, each either a single record or ∅
//! (§4.1).  The generalization to multiple records per unit mentioned in the
//! paper is supported: a [`LogicalUpdate`] may carry any number of rows.

use dpsync_edb::Row;
use serde::{Deserialize, Serialize};

/// A discrete time unit (the evaluation uses one-minute units).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// The raw tick count.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The next time unit.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Whether this time is a multiple of `period` (and not the epoch).
    pub fn is_multiple_of(self, period: u64) -> bool {
        period > 0 && self.0 > 0 && self.0.is_multiple_of(period)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// The logical update at one time unit: zero, one, or several rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogicalUpdate {
    rows: Vec<Row>,
}

impl LogicalUpdate {
    /// No record arrived (`u_t = ∅`).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single arriving record.
    pub fn single(row: Row) -> Self {
        Self { rows: vec![row] }
    }

    /// Several records arriving in the same time unit.
    pub fn batch(rows: Vec<Row>) -> Self {
        Self { rows }
    }

    /// The arriving rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of arriving rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing arrived.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The logical growing database `D = {D_t}` held by the owner.
///
/// `D_t = D₀ ∪ u₁ ∪ ... ∪ u_t`; this structure tracks the accumulated rows so
/// the simulation can compute ground-truth query answers at any point.
#[derive(Debug, Clone, Default)]
pub struct GrowingDatabase {
    initial: Vec<Row>,
    updates: Vec<LogicalUpdate>,
}

impl GrowingDatabase {
    /// Creates a growing database with initial contents `D₀`.
    pub fn new(initial: Vec<Row>) -> Self {
        Self {
            initial,
            updates: Vec::new(),
        }
    }

    /// Appends the logical update for the next time unit.
    pub fn push_update(&mut self, update: LogicalUpdate) {
        self.updates.push(update);
    }

    /// `|D₀|`.
    pub fn initial_len(&self) -> u64 {
        self.initial.len() as u64
    }

    /// The initial rows.
    pub fn initial_rows(&self) -> &[Row] {
        &self.initial
    }

    /// The logical update at time `t` (1-based as in the paper; `t = 0` is
    /// the initial database).  Returns an empty update beyond the recorded
    /// horizon.
    pub fn update_at(&self, t: Timestamp) -> LogicalUpdate {
        if t.0 == 0 {
            return LogicalUpdate::empty();
        }
        self.updates
            .get((t.0 - 1) as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of recorded time units (the database length `L`).
    pub fn horizon(&self) -> u64 {
        self.updates.len() as u64
    }

    /// `|D_t|`: the number of rows the owner has logically received by `t`.
    pub fn len_at(&self, t: Timestamp) -> u64 {
        let upto = (t.0 as usize).min(self.updates.len());
        self.initial.len() as u64
            + self.updates[..upto]
                .iter()
                .map(|u| u.len() as u64)
                .sum::<u64>()
    }

    /// All rows received by time `t` (initial rows first, then arrivals in order).
    pub fn rows_at(&self, t: Timestamp) -> Vec<Row> {
        let upto = (t.0 as usize).min(self.updates.len());
        let mut rows = self.initial.clone();
        for update in &self.updates[..upto] {
            rows.extend(update.rows().iter().cloned());
        }
        rows
    }

    /// Total number of rows across the entire horizon.
    pub fn total_len(&self) -> u64 {
        self.len_at(Timestamp(self.horizon()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsync_edb::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i)])
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(29);
        assert_eq!(t.next(), Timestamp(30));
        assert_eq!(t.value(), 29);
        assert!(Timestamp(60).is_multiple_of(30));
        assert!(!Timestamp(45).is_multiple_of(30));
        assert!(
            !Timestamp(0).is_multiple_of(30),
            "the epoch is not a sync point"
        );
        assert!(!Timestamp(10).is_multiple_of(0), "period zero never fires");
        assert_eq!(Timestamp::ZERO.to_string(), "t=0");
        assert_eq!(Timestamp::from(7u64), Timestamp(7));
    }

    #[test]
    fn logical_update_variants() {
        assert!(LogicalUpdate::empty().is_empty());
        assert_eq!(LogicalUpdate::single(row(1)).len(), 1);
        let batch = LogicalUpdate::batch(vec![row(1), row(2), row(3)]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.rows()[2], row(3));
    }

    #[test]
    fn growing_database_accumulates() {
        let mut db = GrowingDatabase::new(vec![row(0), row(1)]);
        db.push_update(LogicalUpdate::single(row(2)));
        db.push_update(LogicalUpdate::empty());
        db.push_update(LogicalUpdate::batch(vec![row(3), row(4)]));

        assert_eq!(db.initial_len(), 2);
        assert_eq!(db.horizon(), 3);
        assert_eq!(db.len_at(Timestamp(0)), 2);
        assert_eq!(db.len_at(Timestamp(1)), 3);
        assert_eq!(db.len_at(Timestamp(2)), 3);
        assert_eq!(db.len_at(Timestamp(3)), 5);
        assert_eq!(
            db.len_at(Timestamp(100)),
            5,
            "beyond the horizon the database stops growing"
        );
        assert_eq!(db.total_len(), 5);
        assert_eq!(db.rows_at(Timestamp(3)).len(), 5);
        assert_eq!(db.rows_at(Timestamp(0)), vec![row(0), row(1)]);
    }

    #[test]
    fn update_at_is_one_based() {
        let mut db = GrowingDatabase::new(vec![]);
        db.push_update(LogicalUpdate::single(row(7)));
        assert!(db.update_at(Timestamp(0)).is_empty());
        assert_eq!(db.update_at(Timestamp(1)).rows(), &[row(7)]);
        assert!(db.update_at(Timestamp(2)).is_empty());
    }
}
