//! Quickstart: outsource a small growing database with a DP-Timer strategy
//! and watch the update pattern the server observes.
//!
//! Run with: `cargo run --example quickstart`

use dp_sync::core::strategy::{DpTimerStrategy, SyncStrategy};
use dp_sync::core::{Owner, Timestamp};
use dp_sync::crypto::MasterKey;
use dp_sync::dp::{DpRng, Epsilon};
use dp_sync::edb::engines::ObliDbEngine;
use dp_sync::edb::query::paper_queries;
use dp_sync::edb::sogdb::SecureOutsourcedDatabase;
use dp_sync::edb::{DataType, Row, Schema, Value};

fn main() {
    // 1. The owner generates a master key and sets up the encrypted database.
    let mut rng = DpRng::seed_from_u64(42);
    let master = MasterKey::generate(&mut rng);
    let engine = ObliDbEngine::new(&master);

    // 2. Pick a synchronization strategy: DP-Timer with epsilon = 0.5 and a
    //    30-minute period (the paper's defaults).
    let strategy = DpTimerStrategy::new(Epsilon::new_unchecked(0.5), 30);
    println!(
        "strategy: {} (epsilon = {})",
        strategy.kind(),
        strategy.epsilon().unwrap()
    );

    // 3. Create the owner for an "events" table and outsource the initial data.
    let schema = Schema::from_pairs(&[
        ("pick_time", DataType::Timestamp),
        ("pickup_id", DataType::Int),
    ]);
    let mut owner = Owner::new("events", schema, &master, Box::new(strategy));
    let initial: Vec<Row> = (0..10)
        .map(|i| Row::new(vec![Value::Timestamp(0), Value::Int(50 + i)]))
        .collect();
    owner
        .setup(initial, &engine, &mut rng)
        .expect("setup succeeds");

    // 4. Feed arrivals for four hours of one-minute ticks; a record arrives
    //    roughly every three minutes.
    for t in 1..=240u64 {
        let arrivals: Vec<Row> = if t % 3 == 0 {
            vec![Row::new(vec![
                Value::Timestamp(t),
                Value::Int((t % 200) as i64),
            ])]
        } else {
            vec![]
        };
        owner
            .tick(Timestamp(t), &arrivals, &engine, &mut rng)
            .expect("tick succeeds");
    }

    // 5. The analyst queries the outsourced data at any time.
    let outcome = engine
        .query(&paper_queries::q1_range_count("events"), &mut rng)
        .expect("query succeeds");
    println!(
        "Q1 (count of pickup_id in [50, 100]) over the outsourced data: {:.0}",
        outcome.answer.as_scalar().unwrap()
    );
    println!(
        "records received: {}, outsourced (real): {}, dummies uploaded: {}, logical gap: {}",
        owner.received_total(),
        owner.outsourced_real(),
        owner.outsourced_dummy(),
        owner.logical_gap()
    );

    // 6. What did the server actually learn? Only the update pattern below —
    //    noisy volumes on a fixed schedule, never the true arrival times.
    println!("\nupdate pattern observed by the server (time, volume):");
    for event in engine.adversary_view().update_events() {
        println!("  t={:<4} volume={}", event.time, event.volume);
    }
}
