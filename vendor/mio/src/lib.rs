//! Offline vendored stand-in for [`mio`](https://docs.rs/mio): a minimal
//! readiness reactor over Linux `epoll`.
//!
//! The workspace builds without crates.io access, so this crate provides the
//! small slice of mio's surface the DP-Sync service tier needs — [`Poll`],
//! [`Registry`], [`Events`], [`Token`], [`Interest`], [`Waker`] and
//! nonblocking [`net::TcpListener`] / [`net::TcpStream`] wrappers — backed by
//! raw `epoll_create1` / `epoll_ctl` / `epoll_wait` / `eventfd` syscalls
//! (libc is already linked by `std`; the FFI declarations below are the only
//! unsafe code in the workspace, and every downstream crate keeps
//! `#![forbid(unsafe_code)]`).
//!
//! Two deliberate simplifications against upstream mio:
//!
//! * registrations are **level-triggered** (no `EPOLLET` except for the
//!   [`Waker`]'s eventfd): a socket with unread input or writable space keeps
//!   reporting ready, so callers manage *interest* (register for `WRITABLE`
//!   only while output is pending) instead of edge re-arming — simpler to
//!   reason about and immune to lost-wakeup bugs;
//! * [`Source`] is any `AsRawFd` type rather than a trait with registration
//!   callbacks — the epoll registration itself is identical.
//!
//! Swap the `[workspace.dependencies]` path entry for the registry version to
//! go back upstream (the reactor in `dpsync-net` confines itself to the
//! shared API subset modulo the two points above).

#![deny(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

pub mod net;

// ---------------------------------------------------------------------------
// FFI: the five syscalls the reactor needs.  libc is linked by std.
// ---------------------------------------------------------------------------

/// `struct epoll_event`; packed on x86-64 (the kernel ABI requires it there).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct epoll_event` for non-x86-64 targets (naturally aligned).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

// ---------------------------------------------------------------------------
// Tokens and interests
// ---------------------------------------------------------------------------

/// An opaque per-registration identifier, echoed back in every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interests a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether read readiness is included.
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether write readiness is included.
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    fn to_epoll(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.is_readable() {
            bits |= EPOLLIN;
        }
        if self.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token the ready registration was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the registration is ready for reading (includes peer hangup,
    /// which surfaces as a zero-byte read).
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// Whether the registration is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// Whether the peer closed its write half (or the whole connection).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Whether the registration is in an error state.
    pub fn is_error(&self) -> bool {
        self.bits & EPOLLERR != 0
    }
}

/// A reusable buffer of readiness [`Event`]s filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    capacity: usize,
    list: Vec<Event>,
}

impl Events {
    /// An event buffer that receives at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            capacity: capacity.max(1),
            list: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.list.iter()
    }

    /// Whether the last poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

// ---------------------------------------------------------------------------
// Poll and Registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct EpollFd(RawFd);

impl Drop for EpollFd {
    fn drop(&mut self) {
        unsafe {
            let _ = close(self.0);
        }
    }
}

/// Handle used to (de)register event sources; clones share one epoll
/// instance, so a [`Waker`] can outlive the borrow of its [`Poll`].
#[derive(Debug, Clone)]
pub struct Registry {
    epfd: Arc<EpollFd>,
}

impl Registry {
    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token.0 as u64,
        };
        let rc = unsafe { epoll_ctl(self.epfd.0, op, fd, &mut event) };
        if rc < 0 {
            Err(last_os_error())
        } else {
            Ok(())
        }
    }

    /// Registers an event source (level-triggered).
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.raw_fd(), interests.to_epoll(), token)
    }

    /// Changes the interests (and/or token) of an existing registration.
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.raw_fd(), interests.to_epoll(), token)
    }

    /// Removes a registration.  Dropping a source closes its descriptor and
    /// removes it implicitly; explicit deregistration exists for sources
    /// whose token is being retired while the descriptor lives on.
    pub fn deregister<S: Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.raw_fd(), 0, Token(0))
    }
}

/// The reactor core: wraps one epoll instance.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a new epoll instance.
    pub fn new() -> io::Result<Poll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(Poll {
            registry: Registry {
                epfd: Arc::new(EpollFd(fd)),
            },
        })
    }

    /// The registry handle for this poll instance.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// elapses (`None` waits indefinitely) or a [`Waker`] fires.  `EINTR`
    /// retries internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.list.clear();
        // Round a sub-millisecond timeout *up* so a short deadline cannot
        // degenerate into a busy loop.
        let millis: c_int = match timeout {
            None => -1,
            Some(t) => {
                let ms = t.as_millis();
                let ms = if ms == 0 && !t.is_zero() { 1 } else { ms };
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        let mut raw = vec![EpollEvent { events: 0, data: 0 }; events.capacity];
        loop {
            let n = unsafe {
                epoll_wait(
                    self.registry.epfd.0,
                    raw.as_mut_ptr(),
                    raw.len() as c_int,
                    millis,
                )
            };
            if n >= 0 {
                for item in raw.iter().take(n as usize) {
                    events.list.push(Event {
                        token: Token(item.data as usize),
                        bits: item.events,
                    });
                }
                return Ok(());
            }
            let err = last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Source
// ---------------------------------------------------------------------------

/// Anything that can be registered with a [`Registry`].  Blanket-implemented
/// for every `AsRawFd` type; the descriptor must be nonblocking for the
/// readiness contract to make sense.
pub trait Source {
    /// The raw descriptor to register.
    fn raw_fd(&self) -> RawFd;
}

impl<T: AsRawFd> Source for T {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// Wakes a [`Poll`] from another thread.
///
/// Backed by an `eventfd` registered edge-triggered: each [`Waker::wake`]
/// increments the counter, which re-arms the edge, so the next `epoll_wait`
/// returns an event carrying the waker's token.  The counter is never
/// drained — it would take 2⁶⁴−1 wakes to saturate, far beyond any
/// process lifetime here.
#[derive(Debug)]
pub struct Waker {
    fd: EpollFd,
}

impl Waker {
    /// Creates a waker and registers it with `registry` under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_os_error());
        }
        let waker = Waker { fd: EpollFd(fd) };
        registry.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLET, token)?;
        Ok(waker)
    }

    /// Makes the next (or current) `poll` return an event with this waker's
    /// token.  Safe to call from any thread, any number of times.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let rc = unsafe {
            write(
                self.fd.0,
                std::ptr::addr_of!(one).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            )
        };
        if rc < 0 {
            let err = last_os_error();
            // A saturated counter (EAGAIN) still leaves the fd readable, so
            // the wake-up is already pending; that is success for our
            // purposes.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);
    const CLIENT: Token = Token(7);

    #[test]
    fn accept_read_write_readiness_round_trip() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(16);

        let mut listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, LISTENER, Interest::READABLE)
            .unwrap();

        // A blocking std client on the other side keeps the test simple.
        let mut client = std::net::TcpStream::connect(addr).unwrap();

        // The listener becomes readable: accept.
        let mut accepted = None;
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == LISTENER && e.is_readable())
            {
                let (stream, _) = listener.accept().unwrap();
                accepted = Some(stream);
                break;
            }
        }
        let mut server = accepted.expect("listener never became readable");
        poll.registry()
            .register(&mut server, CLIENT, Interest::READABLE)
            .unwrap();

        // Client sends; server side must report readable and read it back.
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        'outer: for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for event in &events {
                if event.token() == CLIENT && event.is_readable() {
                    let mut buf = [0u8; 16];
                    let n = server.read(&mut buf).unwrap();
                    got.extend_from_slice(&buf[..n]);
                    break 'outer;
                }
            }
        }
        assert_eq!(got, b"ping");

        // Write interest on an idle socket reports writable immediately.
        poll.registry()
            .reregister(&mut server, CLIENT, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));

        // Peer hangup surfaces as read-closed readiness.
        drop(client);
        let mut saw_closed = false;
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == CLIENT && (e.is_read_closed() || e.is_readable()))
            {
                saw_closed = true;
                break;
            }
        }
        assert!(saw_closed, "peer hangup never reported");
        poll.registry().deregister(&mut server).unwrap();
    }

    #[test]
    fn waker_wakes_a_sleeping_poll_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let waker = Arc::new(Waker::new(poll.registry(), WAKER).unwrap());

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
        });

        // Far shorter than the 10 s timeout: the wake must cut the sleep.
        let started = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        handle.join().unwrap();

        // Repeated wakes keep re-arming the edge-triggered eventfd.
        waker.wake().unwrap();
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER));
    }

    #[test]
    fn poll_times_out_when_nothing_is_ready() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let started = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}
