//! Master keys and per-purpose sub-key derivation.
//!
//! The data owner holds a single [`MasterKey`]; every cryptographic purpose
//! (record encryption, record authentication, nonce derivation, index
//! tokens) uses an independent [`SubKey`] derived through the PRF with a
//! domain-separation label, so compromising one purpose never exposes the
//! others.

use crate::chacha::CHACHA_KEY_LEN;
use crate::prf::Prf;
use rand::Rng;

/// The purposes DP-Sync derives sub-keys for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyPurpose {
    /// Stream-cipher key for record payload encryption.
    RecordEncryption,
    /// MAC key for record authentication.
    RecordAuthentication,
    /// PRF key for deriving per-record nonces.
    NonceDerivation,
    /// PRF key for computing searchable index tokens (used by the engines).
    IndexToken,
}

impl KeyPurpose {
    /// The domain-separation label baked into the derivation.
    pub fn label(self) -> &'static str {
        match self {
            KeyPurpose::RecordEncryption => "dpsync/v1/record-encryption",
            KeyPurpose::RecordAuthentication => "dpsync/v1/record-authentication",
            KeyPurpose::NonceDerivation => "dpsync/v1/nonce-derivation",
            KeyPurpose::IndexToken => "dpsync/v1/index-token",
        }
    }

    /// All purposes, in a stable order.
    pub const ALL: [KeyPurpose; 4] = [
        KeyPurpose::RecordEncryption,
        KeyPurpose::RecordAuthentication,
        KeyPurpose::NonceDerivation,
        KeyPurpose::IndexToken,
    ];
}

/// A 256-bit sub-key bound to a purpose.
#[derive(Clone, PartialEq, Eq)]
pub struct SubKey {
    purpose: KeyPurpose,
    bytes: [u8; CHACHA_KEY_LEN],
}

impl std::fmt::Debug for SubKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubKey")
            .field("purpose", &self.purpose)
            .field("bytes", &"<redacted>")
            .finish()
    }
}

impl SubKey {
    /// The purpose this key was derived for.
    pub fn purpose(&self) -> KeyPurpose {
        self.purpose
    }

    /// The raw key bytes.
    pub fn bytes(&self) -> &[u8; CHACHA_KEY_LEN] {
        &self.bytes
    }
}

/// The owner's master key.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKey {
    bytes: [u8; CHACHA_KEY_LEN],
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterKey")
            .field("bytes", &"<redacted>")
            .finish()
    }
}

impl MasterKey {
    /// Wraps existing key bytes (e.g. loaded from a key-management system).
    pub fn from_bytes(bytes: [u8; CHACHA_KEY_LEN]) -> Self {
        Self { bytes }
    }

    /// Generates a fresh master key from the supplied RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; CHACHA_KEY_LEN];
        rng.fill(&mut bytes);
        Self { bytes }
    }

    /// Derives the sub-key for `purpose`.
    pub fn derive(&self, purpose: KeyPurpose) -> SubKey {
        let prf = Prf::new(self.bytes);
        SubKey {
            purpose,
            bytes: prf.derive_key(purpose.label()),
        }
    }

    /// The raw master key bytes (needed when persisting the key).
    pub fn bytes(&self) -> &[u8; CHACHA_KEY_LEN] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn derivation_is_deterministic() {
        let mk = MasterKey::from_bytes([5u8; 32]);
        assert_eq!(
            mk.derive(KeyPurpose::RecordEncryption).bytes(),
            mk.derive(KeyPurpose::RecordEncryption).bytes()
        );
    }

    #[test]
    fn purposes_yield_distinct_keys() {
        let mk = MasterKey::from_bytes([5u8; 32]);
        let keys: Vec<_> = KeyPurpose::ALL
            .iter()
            .map(|&p| mk.derive(p).bytes().to_vec())
            .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "purposes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn different_master_keys_yield_different_subkeys() {
        let a = MasterKey::from_bytes([1u8; 32]);
        let b = MasterKey::from_bytes([2u8; 32]);
        assert_ne!(
            a.derive(KeyPurpose::IndexToken).bytes(),
            b.derive(KeyPurpose::IndexToken).bytes()
        );
    }

    #[test]
    fn generate_uses_rng_deterministically() {
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        assert_eq!(
            MasterKey::generate(&mut r1).bytes(),
            MasterKey::generate(&mut r2).bytes()
        );
        let mut r3 = StdRng::seed_from_u64(78);
        assert_ne!(
            MasterKey::generate(&mut r1).bytes(),
            MasterKey::generate(&mut r3).bytes()
        );
    }

    #[test]
    fn subkey_knows_its_purpose() {
        let mk = MasterKey::from_bytes([9u8; 32]);
        let sk = mk.derive(KeyPurpose::RecordAuthentication);
        assert_eq!(sk.purpose(), KeyPurpose::RecordAuthentication);
    }

    #[test]
    fn debug_output_redacts_material() {
        let mk = MasterKey::from_bytes([0xEE; 32]);
        assert!(format!("{mk:?}").contains("redacted"));
        assert!(format!("{:?}", mk.derive(KeyPurpose::IndexToken)).contains("redacted"));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            KeyPurpose::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), KeyPurpose::ALL.len());
    }
}
