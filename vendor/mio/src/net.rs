//! Nonblocking TCP types for registration with a [`Registry`](crate::Registry).
//!
//! Thin wrappers over `std::net` that force nonblocking mode at construction,
//! so every read/write/accept obeys the readiness contract (`WouldBlock`
//! instead of stalling the reactor thread).

use std::io::{self, Read, Write};
use std::net::{self, Shutdown, SocketAddr, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};

/// A nonblocking TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: net::TcpListener,
}

impl TcpListener {
    /// Binds a new nonblocking listener.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Wraps an already-bound std listener, switching it to nonblocking.
    pub fn from_std(inner: net::TcpListener) -> io::Result<TcpListener> {
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accepts one pending connection; `WouldBlock` when the backlog is
    /// empty.  The accepted stream is nonblocking.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        Ok((TcpStream::from_std(stream)?, addr))
    }

    /// The local address the listener is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsRawFd for TcpListener {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

/// A nonblocking TCP stream.
#[derive(Debug)]
pub struct TcpStream {
    inner: net::TcpStream,
}

impl TcpStream {
    /// Wraps a std stream, switching it to nonblocking.
    pub fn from_std(inner: net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address of this end.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Disables (or not) Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Shuts down one or both halves of the connection.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }
}

impl Read for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Read for &TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&self.inner).read(buf)
    }
}

impl Write for TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Write for &TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&self.inner).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&self.inner).flush()
    }
}

impl AsRawFd for TcpStream {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}
