//! Builds and runs one simulated month for a (strategy, engine) pair, and
//! fans batches of independent runs out over the worker pool.
//!
//! Determinism: every random stream in a run is derived from the run's own
//! config seed (workload, owners, analyst), and within a run the sharded
//! simulation driver is barrier-synchronized per time unit — so a batch of
//! runs produces byte-identical [`SimulationReport`]s (up to wall-clock
//! fields, see [`SimulationReport::normalized`]) whether it executes
//! sequentially or on the pool, in any worker count.

use crate::experiments::config::{
    serve_addr, BackendKind, EngineKind, ExperimentConfig, ScratchDir, TransportKind,
};
use crate::pool::parallel_map;
use dpsync_core::metrics::SimulationReport;
use dpsync_core::simulation::{Simulation, SimulationConfig, TableWorkload};
use dpsync_core::strategy::StrategyKind;
use dpsync_crypto::MasterKey;
use dpsync_edb::backend::{BackendConfig, GroupCommitConfig, SegmentLogConfig};
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::Query;
use dpsync_net::{BackendRequest, RemoteEdb};
use dpsync_workloads::queries;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One simulation run specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Which engine hosts the outsourced data.
    pub engine: EngineKind,
    /// Which synchronization strategy the owner runs.
    pub strategy: StrategyKind,
    /// Experiment configuration (scale, seed, parameters).
    pub config: ExperimentConfig,
}

impl RunSpec {
    /// The query set this run poses: the Crypt-ε-like engine cannot evaluate
    /// Q3 (joins), matching footnote 2 of the paper.
    pub fn query_set(&self) -> Vec<(String, Query)> {
        match self.engine {
            EngineKind::ObliDb => queries::paper_query_set(),
            EngineKind::CryptEpsilon => queries::single_table_query_set(),
        }
    }

    /// Whether the run replays the Green Boro table as well (needed for Q3).
    pub fn includes_green(&self) -> bool {
        matches!(self.engine, EngineKind::ObliDb)
    }
}

/// Derives the deterministic master key for a run.
fn master_key(config: &ExperimentConfig) -> MasterKey {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&config.seed.to_le_bytes());
    bytes[8] = 0xD5;
    MasterKey::from_bytes(bytes)
}

/// Monotone counter distinguishing concurrent disk runs within one process.
static DISK_RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Root under which every disk-backed scratch directory is created:
/// `DPSYNC_DISK_ROOT` when set (CI points it at a job-scoped temp dir), the
/// system temp directory otherwise.  Shared by the experiment runner and
/// the disk-ingest benchmark so both measure the same medium.
pub fn disk_scratch_root() -> PathBuf {
    std::env::var_os("DPSYNC_DISK_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// Scratch directory for one disk-backed run, removed on drop (a thin
/// wrapper over [`ScratchDir`], so cleanup also happens when the run
/// panics mid-simulation).
///
/// The root is `DPSYNC_DISK_ROOT` when set (CI points it at a job-scoped
/// temp dir), the system temp directory otherwise; every run gets a unique
/// subdirectory so pooled runs never collide.
#[derive(Debug)]
pub struct DiskRunDir {
    dir: ScratchDir,
}

impl DiskRunDir {
    fn new() -> Self {
        let path = disk_scratch_root().join(format!(
            "dpsync-run-{}-{}",
            std::process::id(),
            DISK_RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Self {
            dir: ScratchDir::claim(path),
        }
    }

    /// The scratch directory path.
    pub fn path(&self) -> &std::path::Path {
        self.dir.path()
    }
}

/// Builds the engine a spec asks for, on the spec's storage backend and
/// transport.
///
/// * `Inproc` builds the engine in this process (disk runs get a per-run
///   scratch directory; hold the returned guard for as long as the engine
///   lives — dropping it deletes the run's segment logs).
/// * `Tcp` opens a fresh session against the `dpsync-serve` process at
///   [`serve_addr`]; the server builds the engine (and owns any disk
///   scratch state, removed when the session ends), so no local guard is
///   returned.  The connection *is* the run: dropping the engine closes it.
pub fn build_run_engine(
    spec: &RunSpec,
    master: &MasterKey,
) -> (Box<dyn SecureOutsourcedDatabase>, Option<DiskRunDir>) {
    match spec.config.transport {
        TransportKind::Inproc => match spec.config.backend {
            BackendKind::Memory => (spec.engine.build(master), None),
            BackendKind::Disk | BackendKind::DiskGroup => {
                let dir = DiskRunDir::new();
                let mut config = SegmentLogConfig::new(dir.path());
                if spec.config.backend == BackendKind::DiskGroup {
                    config = config.with_group_commit(GroupCommitConfig::default());
                }
                let backend = BackendConfig::SegmentLog(config)
                    .build()
                    .expect("scratch directory for a disk run is creatable");
                let engine = spec
                    .engine
                    .build_with_backend(master, backend)
                    .expect("fresh segment log opens");
                (engine, Some(dir))
            }
        },
        TransportKind::Tcp => {
            let addr = serve_addr();
            let backend = match spec.config.backend {
                BackendKind::Memory => BackendRequest::Memory,
                BackendKind::Disk => BackendRequest::Disk,
                BackendKind::DiskGroup => BackendRequest::DiskGroup,
            };
            let engine = RemoteEdb::connect_engine(addr.as_str(), spec.engine, master, backend)
                .unwrap_or_else(|e| {
                    panic!(
                        "cannot open a remote session at {addr}: {e}\n\
                         (--transport tcp needs a running server: \
                         `cargo run --release -p dpsync-net --bin dpsync-serve`{})",
                        if spec.config.backend == BackendKind::Memory {
                            ""
                        } else {
                            " with --disk-root DIR"
                        }
                    )
                });
            (Box::new(engine), None)
        }
    }
}

/// Builds the table workloads for a run.
pub fn build_workloads(spec: &RunSpec) -> Vec<TableWorkload> {
    let mut workloads = vec![spec
        .config
        .yellow_dataset()
        .to_workload(queries::YELLOW_TABLE)];
    if spec.includes_green() {
        workloads.push(
            spec.config
                .green_dataset()
                .to_workload(queries::GREEN_TABLE),
        );
    }
    workloads
}

fn simulation_for(spec: &RunSpec) -> Simulation {
    Simulation::new(SimulationConfig {
        query_interval: spec.config.query_interval,
        size_sample_interval: spec.config.size_sample_interval,
        queries: spec.query_set(),
        seed: spec.config.seed ^ (spec.strategy as u64).wrapping_mul(0x9e37_79b9),
    })
}

/// Runs one full simulation and returns its report.
///
/// Uses the sharded driver (one owner thread per table); see
/// [`run_simulation_sequential`] for the single-threaded reference.
pub fn run_simulation(spec: &RunSpec) -> SimulationReport {
    let master = master_key(&spec.config);
    let (engine, _disk_dir) = build_run_engine(spec, &master);
    let workloads = build_workloads(spec);
    let report = simulation_for(spec)
        .run_parallel(&workloads, engine.as_ref(), &master, |_| {
            spec.config.params.build(spec.strategy)
        })
        .expect("simulation over generated workloads cannot fail");
    // `engine` drops before `_disk_dir`, so the segment files are closed
    // when the scratch directory is removed.
    drop(engine);
    report
}

/// Runs one full simulation on the single-threaded reference driver.
///
/// Exists so determinism tests (and suspicious readers) can check that the
/// sharded path reproduces the sequential reports byte for byte.
pub fn run_simulation_sequential(spec: &RunSpec) -> SimulationReport {
    let master = master_key(&spec.config);
    let (engine, _disk_dir) = build_run_engine(spec, &master);
    let workloads = build_workloads(spec);
    let report = simulation_for(spec)
        .run(&workloads, engine.as_ref(), &master, |_| {
            spec.config.params.build(spec.strategy)
        })
        .expect("simulation over generated workloads cannot fail");
    drop(engine);
    report
}

/// Runs a batch of independent specs on the worker pool, preserving order.
pub fn run_specs(specs: &[RunSpec]) -> Vec<SimulationReport> {
    parallel_map(specs, run_simulation)
}

/// Runs every strategy against one engine, in the paper's order, fanned out
/// over the worker pool.
pub fn run_all_strategies(
    engine: EngineKind,
    config: ExperimentConfig,
) -> Vec<(StrategyKind, SimulationReport)> {
    let specs: Vec<RunSpec> = StrategyKind::ALL
        .iter()
        .map(|&strategy| RunSpec {
            engine,
            strategy,
            config,
        })
        .collect();
    StrategyKind::ALL
        .iter()
        .copied()
        .zip(run_specs(&specs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 60,
            seed: 3,
            ..Default::default()
        }
        .rescale()
    }

    #[test]
    fn oblidb_run_covers_all_three_queries() {
        let spec = RunSpec {
            engine: EngineKind::ObliDb,
            strategy: StrategyKind::DpTimer,
            config: smoke_config(),
        };
        assert!(spec.includes_green());
        assert_eq!(spec.query_set().len(), 3);
        let report = run_simulation(&spec);
        assert_eq!(report.engine, "oblidb");
        assert_eq!(report.strategy, StrategyKind::DpTimer);
        let labels = report.query_labels();
        assert!(labels.contains(&"Q1".to_string()));
        assert!(labels.contains(&"Q3".to_string()));
        assert!(report.final_sizes().unwrap().outsourced_records > 0);
    }

    #[test]
    fn crypt_epsilon_run_skips_joins() {
        let spec = RunSpec {
            engine: EngineKind::CryptEpsilon,
            strategy: StrategyKind::Sur,
            config: smoke_config(),
        };
        assert!(!spec.includes_green());
        let report = run_simulation(&spec);
        assert_eq!(report.engine, "crypt-epsilon");
        assert!(!report.query_labels().contains(&"Q3".to_string()));
        // Crypt-ε adds per-query noise, so even SUR has non-zero error.
        assert!(report.mean_l1_error("Q2") > 0.0);
    }

    #[test]
    fn all_strategies_produce_reports_in_order() {
        let results = run_all_strategies(EngineKind::ObliDb, smoke_config());
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].0, StrategyKind::Sur);
        assert_eq!(results[4].0, StrategyKind::DpAnt);
        // Qualitative shape of Table 5: OTO's error dwarfs everyone else's,
        // SET stores the most data.
        let report_for = |kind: StrategyKind| &results.iter().find(|(k, _)| *k == kind).unwrap().1;
        let oto_err = report_for(StrategyKind::Oto).mean_l1_error("Q2");
        let timer_err = report_for(StrategyKind::DpTimer).mean_l1_error("Q2");
        assert!(
            oto_err > timer_err * 5.0,
            "oto {oto_err} vs timer {timer_err}"
        );
        let set_records = report_for(StrategyKind::Set)
            .final_sizes()
            .unwrap()
            .outsourced_records;
        let sur_records = report_for(StrategyKind::Sur)
            .final_sizes()
            .unwrap()
            .outsourced_records;
        assert!(set_records > sur_records);
    }

    #[test]
    fn disk_backends_reproduce_the_memory_report() {
        // The storage backend must be invisible in every report field: same
        // seed, same answers, same transcript-derived sizes — for per-batch
        // fsync and group commit alike.
        let memory_spec = RunSpec {
            engine: EngineKind::ObliDb,
            strategy: StrategyKind::DpTimer,
            config: smoke_config(),
        };
        let memory = run_simulation(&memory_spec).normalized();
        for backend in [BackendKind::Disk, BackendKind::DiskGroup] {
            let disk_spec = RunSpec {
                config: ExperimentConfig {
                    backend,
                    ..memory_spec.config
                },
                ..memory_spec
            };
            let disk = run_simulation(&disk_spec).normalized();
            assert_eq!(memory, disk, "backend {backend}");
        }
    }

    #[test]
    fn disk_runs_clean_up_their_scratch_directories() {
        let dir = DiskRunDir::new();
        let path = dir.path().to_path_buf();
        std::fs::create_dir_all(&path).unwrap();
        std::fs::write(path.join("seg-000000.dpl"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists(), "drop removes the scratch directory");
    }

    #[test]
    fn runs_are_reproducible() {
        let spec = RunSpec {
            engine: EngineKind::ObliDb,
            strategy: StrategyKind::DpAnt,
            config: smoke_config(),
        };
        let a = run_simulation(&spec);
        let b = run_simulation(&spec);
        assert_eq!(a.final_sizes(), b.final_sizes());
        assert_eq!(a.sync_count, b.sync_count);
    }
}
