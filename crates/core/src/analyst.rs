//! The analyst's runtime.
//!
//! The analyst is the (trusted, authorized) party that poses queries against
//! the outsourced database.  In the evaluation the analyst also knows the
//! ground truth — the logical database — so it can measure the L1 error of
//! every answer; in production the error is of course unknown, which is
//! exactly why the paper proves the logical-gap bounds instead.

use crate::metrics::QuerySample;
use crate::timeline::Timestamp;
use dpsync_edb::emm::IndexDef;
use dpsync_edb::exec::PlainDatabase;
use dpsync_edb::planner::{LeakagePolicy, Plan, Planner, Statistics};
use dpsync_edb::query::QueryAnswer;
use dpsync_edb::sogdb::{EdbError, QueryOutcome, SecureOutsourcedDatabase};
use dpsync_edb::views::ViewDef;
use dpsync_edb::Query;
use rand::RngCore;
use std::collections::BTreeSet;

/// A named query in the analyst's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedQuery {
    /// Short label ("Q1", "Q2", "Q3").
    pub label: String,
    /// The query itself.
    pub query: Query,
}

impl NamedQuery {
    /// Creates a named query.
    pub fn new(label: impl Into<String>, query: Query) -> Self {
        Self {
            label: label.into(),
            query,
        }
    }
}

/// Registration status of one recurring query's server-side view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ViewState {
    /// Not yet registered (e.g. the table has not been set up yet); the
    /// analyst retries at the next pose.
    Pending,
    /// Registered; reads go through `query_view`.
    Registered,
    /// The query shape or the engine cannot serve this as a view; reads
    /// stay on the scan path permanently.
    Unsupported,
}

/// Registration status of one workload-derived encrypted-multimap index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IndexState {
    /// Not yet registered (the table may not exist yet); retried next pose.
    Pending,
    /// Registered on the server; the planner may route reads through it.
    Registered,
    /// The engine or column cannot carry this index; never retried.
    Unsupported,
}

/// The analyst: a fixed set of queries posed periodically.
///
/// With [`Analyst::with_views`], the analyst treats its workload as *hot*:
/// each materializable query is auto-registered as a server-side view (named
/// after its label) the first time its table exists, and subsequent poses
/// read the view in O(result size).  Answers and the adversary's transcript
/// are unchanged — only the measured query latency drops.
///
/// With [`Analyst::with_indexes`], the analyst derives candidate
/// encrypted-multimap indexes from its workload (one per predicate or join
/// column, named `idx_{table}_{column}`), registers them lazily, and runs a
/// leakage-aware [`Planner`] per pose: under
/// [`LeakagePolicy::TranscriptOnly`] every read stays a full scan (and the
/// adversary's view is byte-identical to an index-free run), while
/// [`LeakagePolicy::AllowIndexedVolume`] lets selective reads pay the
/// declared indexed-volume leakage for sub-scan cost.
#[derive(Debug, Clone, Default)]
pub struct Analyst {
    queries: Vec<NamedQuery>,
    use_views: bool,
    view_states: Vec<ViewState>,
    index_policy: Option<LeakagePolicy>,
    index_states: Vec<(IndexDef, IndexState)>,
}

impl Analyst {
    /// Creates an analyst with the given query workload (scan reads).
    pub fn new(queries: Vec<NamedQuery>) -> Self {
        Self {
            queries,
            use_views: false,
            view_states: Vec::new(),
            index_policy: None,
            index_states: Vec::new(),
        }
    }

    /// Creates an analyst that auto-registers its recurring queries as
    /// materialized views and serves reads from them where possible.
    pub fn with_views(queries: Vec<NamedQuery>) -> Self {
        let view_states = vec![ViewState::Pending; queries.len()];
        Self {
            queries,
            use_views: true,
            view_states,
            index_policy: None,
            index_states: Vec::new(),
        }
    }

    /// Creates an analyst that derives selection indexes from its workload
    /// and plans each pose under the given leakage policy.
    pub fn with_indexes(queries: Vec<NamedQuery>, policy: LeakagePolicy) -> Self {
        let index_states = candidate_indexes(&queries)
            .into_iter()
            .map(|def| (def, IndexState::Pending))
            .collect();
        Self {
            queries,
            use_views: false,
            view_states: Vec::new(),
            index_policy: Some(policy),
            index_states,
        }
    }

    /// The configured queries.
    pub fn queries(&self) -> &[NamedQuery] {
        &self.queries
    }

    /// Whether this analyst serves recurring queries from materialized views.
    pub fn uses_views(&self) -> bool {
        self.use_views
    }

    /// The leakage policy of an index-planning analyst, if any.
    pub fn index_policy(&self) -> Option<LeakagePolicy> {
        self.index_policy
    }

    /// Poses every supported query against `edb`, comparing each answer with
    /// the ground truth computed over `logical`, and returns one sample per
    /// query.  Unsupported queries (e.g. joins on the Crypt-ε-like engine)
    /// are skipped, mirroring the paper's footnote 2.
    ///
    /// A views-enabled analyst first (lazily, idempotently) registers each
    /// materializable query and then reads through the view; queries whose
    /// shape or engine cannot be served by a view fall back to the scan
    /// path, and tables that have not been set up yet are retried at the
    /// next pose.
    pub fn pose_all(
        &mut self,
        time: Timestamp,
        edb: &dyn SecureOutsourcedDatabase,
        logical: &PlainDatabase,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<QuerySample>, EdbError> {
        let plan_context = self.refresh_index_plan(edb, logical)?;
        let mut samples = Vec::with_capacity(self.queries.len());
        for index in 0..self.queries.len() {
            let named = &self.queries[index];
            if !edb.supports(&named.query) {
                continue;
            }
            if self.use_views && self.view_states[index] == ViewState::Pending {
                self.view_states[index] = register_hot_query(edb, named)?;
            }
            let named = &self.queries[index];
            let truth = logical.execute(&named.query)?;
            let outcome = if self.use_views && self.view_states[index] == ViewState::Registered {
                edb.query_view(&named.label, rng)?
            } else if let Some((planner, registered)) = plan_context.as_ref() {
                pose_planned(edb, planner, registered, &named.query, rng)?
            } else {
                edb.query(&named.query, rng)?
            };
            // The analyst is the trust boundary for released answers: a
            // Laplace-perturbed count can come back negative, and a count
            // below zero is never a useful answer, so it is floored at zero
            // *here* — never inside the engine, whose release (and whose
            // server-side transcript) must keep the raw perturbed value.
            let released = clamp_released(outcome.answer);
            samples.push(QuerySample {
                time: time.value(),
                query: named.label.clone(),
                l1_error: released.l1_error(&truth),
                estimated_qet: outcome.estimated_seconds,
                measured_qet: outcome.measured_seconds,
            });
        }
        Ok(samples)
    }

    /// Index-planning bookkeeping done once per pose: retries pending
    /// registrations and rebuilds the planner's statistics from the
    /// analyst's logical copy of the data.  `None` for non-index analysts.
    fn refresh_index_plan(
        &mut self,
        edb: &dyn SecureOutsourcedDatabase,
        logical: &PlainDatabase,
    ) -> Result<Option<(Planner, Vec<IndexDef>)>, EdbError> {
        let Some(policy) = self.index_policy else {
            return Ok(None);
        };
        for (def, state) in &mut self.index_states {
            if *state == IndexState::Pending {
                *state = register_workload_index(edb, def)?;
            }
        }
        let mut stats = Statistics::new();
        let mut observed = BTreeSet::new();
        for named in &self.queries {
            for table in named.query.tables() {
                if !observed.insert(table.to_string()) {
                    continue;
                }
                if let Some(plain) = logical.table(table) {
                    if let Some(schema) = plain.schema() {
                        stats.observe_table(table, schema, plain.rows());
                    }
                }
            }
        }
        let registered = self
            .index_states
            .iter()
            .filter(|(_, state)| *state == IndexState::Registered)
            .map(|(def, _)| def.clone())
            .collect();
        Ok(Some((Planner::new(policy, stats), registered)))
    }
}

/// Poses one query through the plan the leakage-aware planner chose.
fn pose_planned(
    edb: &dyn SecureOutsourcedDatabase,
    planner: &Planner,
    indexes: &[IndexDef],
    query: &Query,
    rng: &mut dyn RngCore,
) -> Result<QueryOutcome, EdbError> {
    let planned = planner.plan(query, indexes, &edb.cost_model());
    match planned.plan {
        Plan::FullScan => edb.query(query, rng),
        Plan::IndexLookup { index } | Plan::IndexNestedLoop { index } => {
            match edb.query_indexed(&index, query, rng) {
                Ok(outcome) => Ok(outcome),
                // Defensive: the engine refused the indexed path at read
                // time (e.g. shape restrictions); answer by scan instead.
                Err(EdbError::UnsupportedQuery { .. } | EdbError::InvalidIndex(_)) => {
                    edb.query(query, rng)
                }
                Err(other) => Err(other),
            }
        }
    }
}

/// Derives the workload's candidate indexes: one per (table, predicate
/// column) and one per join side, named `idx_{table}_{column}`.
fn candidate_indexes(queries: &[NamedQuery]) -> Vec<IndexDef> {
    let mut seen = BTreeSet::new();
    let mut defs = Vec::new();
    for named in queries {
        let pairs: Vec<(&str, &str)> = match &named.query {
            Query::Count { table, predicate }
            | Query::GroupByCount {
                table, predicate, ..
            }
            | Query::Select {
                table, predicate, ..
            } => predicate
                .iter()
                .flat_map(|p| p.columns())
                .map(|column| (table.as_str(), column))
                .collect(),
            Query::JoinCount {
                left,
                right,
                left_column,
                right_column,
            } => vec![
                (left.as_str(), left_column.as_str()),
                (right.as_str(), right_column.as_str()),
            ],
        };
        for (table, column) in pairs {
            if !seen.insert((table.to_string(), column.to_string())) {
                continue;
            }
            if let Ok(def) = IndexDef::new(format!("idx_{table}_{column}"), table, column) {
                defs.push(def);
            }
        }
    }
    defs
}

/// One lazy registration attempt for a workload-derived index.
fn register_workload_index(
    edb: &dyn SecureOutsourcedDatabase,
    def: &IndexDef,
) -> Result<IndexState, EdbError> {
    match edb.register_index(def) {
        Ok(()) => Ok(IndexState::Registered),
        // No index support on this engine, a name/definition conflict, or a
        // column the table lacks or cannot index: permanent scan fallback.
        Err(EdbError::UnsupportedQuery { .. } | EdbError::InvalidIndex(_) | EdbError::Exec(_)) => {
            Ok(IndexState::Unsupported)
        }
        // The table has not joined the fleet yet: retry at the next pose.
        Err(EdbError::NotSetUp(_)) => Ok(IndexState::Pending),
        Err(other) => Err(other),
    }
}

/// Floors noisy counts at zero on the analyst's side of the trust boundary.
///
/// Selection results pass through unchanged — only count shapes can go
/// negative under Laplace perturbation.
fn clamp_released(answer: QueryAnswer) -> QueryAnswer {
    match answer {
        QueryAnswer::Scalar(v) => QueryAnswer::Scalar(v.max(0.0)),
        QueryAnswer::Groups(groups) => {
            QueryAnswer::Groups(groups.into_iter().map(|(k, v)| (k, v.max(0.0))).collect())
        }
        rows @ QueryAnswer::Rows(_) => rows,
    }
}

/// One lazy registration attempt for a recurring query.
fn register_hot_query(
    edb: &dyn SecureOutsourcedDatabase,
    named: &NamedQuery,
) -> Result<ViewState, EdbError> {
    // A shape that cannot be materialized (joins, selects) stays on the
    // scan path without ever hitting the server.
    let Ok(def) = ViewDef::new(named.label.clone(), named.query.clone()) else {
        return Ok(ViewState::Unsupported);
    };
    match edb.register_view(&def) {
        Ok(()) => Ok(ViewState::Registered),
        // No view support on this engine, a name conflict, or a column the
        // table does not have: permanent fallback to scans.
        Err(EdbError::UnsupportedQuery { .. } | EdbError::InvalidView(_) | EdbError::Exec(_)) => {
            Ok(ViewState::Unsupported)
        }
        // The table has not joined the fleet yet: retry at the next pose.
        Err(EdbError::NotSetUp(_)) => Ok(ViewState::Pending),
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsync_crypto::{MasterKey, RecordCryptor};
    use dpsync_dp::DpRng;
    use dpsync_edb::engines::base::encrypt_batch;
    use dpsync_edb::engines::{CryptEpsilonEngine, ObliDbEngine};
    use dpsync_edb::query::paper_queries;
    use dpsync_edb::{DataType, Row, Schema, Value};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ])
    }

    fn row(t: u64, p: i64) -> Row {
        Row::new(vec![Value::Timestamp(t), Value::Int(p)])
    }

    fn analyst() -> Analyst {
        Analyst::new(vec![
            NamedQuery::new("Q1", paper_queries::q1_range_count("yellow")),
            NamedQuery::new("Q2", paper_queries::q2_group_by_count("yellow")),
            NamedQuery::new("Q3", paper_queries::q3_join_count("yellow", "green")),
        ])
    }

    fn logical(rows_yellow: &[Row], rows_green: &[Row]) -> PlainDatabase {
        let mut db = PlainDatabase::new();
        db.create_table("yellow", schema());
        db.create_table("green", schema());
        for r in rows_yellow {
            db.insert("yellow", r.clone());
        }
        for r in rows_green {
            db.insert("green", r.clone());
        }
        db
    }

    #[test]
    fn oblidb_samples_have_zero_error_when_fully_synced() {
        let master = MasterKey::from_bytes([1u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = ObliDbEngine::new(&master);
        let yellow: Vec<Row> = (0..30).map(|i| row(i, 50 + i as i64)).collect();
        let green: Vec<Row> = (0..10).map(|i| row(i, 5)).collect();
        engine
            .setup("yellow", schema(), encrypt_batch(&mut cryptor, &yellow, 3))
            .unwrap();
        engine
            .setup("green", schema(), encrypt_batch(&mut cryptor, &green, 3))
            .unwrap();
        let mut rng = DpRng::seed_from_u64(1);
        let samples = analyst()
            .pose_all(Timestamp(360), &engine, &logical(&yellow, &green), &mut rng)
            .unwrap();
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert_eq!(s.l1_error, 0.0, "query {} should be exact", s.query);
            assert!(s.estimated_qet > 0.0);
            assert_eq!(s.time, 360);
        }
    }

    #[test]
    fn unsynced_records_create_error() {
        let master = MasterKey::from_bytes([2u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = ObliDbEngine::new(&master);
        let synced: Vec<Row> = (0..20).map(|i| row(i, 60)).collect();
        let all: Vec<Row> = (0..50).map(|i| row(i, 60)).collect();
        engine
            .setup("yellow", schema(), encrypt_batch(&mut cryptor, &synced, 0))
            .unwrap();
        engine.setup("green", schema(), vec![]).unwrap();
        let mut rng = DpRng::seed_from_u64(2);
        let samples = analyst()
            .pose_all(Timestamp(720), &engine, &logical(&all, &[]), &mut rng)
            .unwrap();
        let q1 = samples.iter().find(|s| s.query == "Q1").unwrap();
        assert_eq!(q1.l1_error, 30.0, "30 unsynced matching records");
    }

    #[test]
    fn crypt_epsilon_skips_joins() {
        let master = MasterKey::from_bytes([3u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = CryptEpsilonEngine::new(&master);
        let yellow: Vec<Row> = (0..10).map(|i| row(i, 60)).collect();
        engine
            .setup("yellow", schema(), encrypt_batch(&mut cryptor, &yellow, 0))
            .unwrap();
        engine.setup("green", schema(), vec![]).unwrap();
        let mut rng = DpRng::seed_from_u64(3);
        let samples = analyst()
            .pose_all(Timestamp(360), &engine, &logical(&yellow, &[]), &mut rng)
            .unwrap();
        let labels: Vec<_> = samples.iter().map(|s| s.query.as_str()).collect();
        assert_eq!(labels, vec!["Q1", "Q2"], "Q3 must be skipped for Crypt-ε");
    }

    #[test]
    fn negative_noisy_counts_are_clamped_at_the_analyst_boundary() {
        use dpsync_dp::Epsilon;
        // Fixed seed exercising a Laplace draw that goes negative: the
        // engine releases the raw perturbed count (the transcript keeps it),
        // and the analyst floors it at zero before scoring, so the sample's
        // L1 error against the empty ground truth is exactly zero.
        let master = MasterKey::from_bytes([7u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = CryptEpsilonEngine::with_query_epsilon(&master, Epsilon::new_unchecked(0.05));
        engine
            .setup("yellow", schema(), encrypt_batch(&mut cryptor, &[], 0))
            .unwrap();
        let db = logical(&[], &[]);
        let q1 = paper_queries::q1_range_count("yellow");

        // Probe the exact draw the analyst will consume: seed 0's first
        // Laplace sample on the empty table is negative.
        let mut probe_rng = DpRng::seed_from_u64(0);
        let raw = engine
            .query(&q1, &mut probe_rng)
            .unwrap()
            .answer
            .as_scalar()
            .unwrap();
        assert!(raw < 0.0, "seed 0 must produce a negative draw, got {raw}");

        let mut rng = DpRng::seed_from_u64(0);
        let samples = Analyst::new(vec![NamedQuery::new("Q1", q1)])
            .pose_all(Timestamp(60), &engine, &db, &mut rng)
            .unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(
            samples[0].l1_error, 0.0,
            "the clamped answer must match the empty ground truth exactly"
        );
    }

    #[test]
    fn accessors() {
        let a = analyst();
        assert_eq!(a.queries().len(), 3);
        assert_eq!(a.queries()[0].label, "Q1");
        assert!(!a.uses_views());
        assert!(Analyst::with_views(vec![]).uses_views());
        assert!(Analyst::default().queries().is_empty());
    }

    #[test]
    fn view_analyst_samples_match_scan_analyst() {
        // Two identically-loaded engines, same seeds: the views-enabled
        // analyst must release identical samples except for the measured
        // wall clock.  Q3 (a join) silently stays on the scan path.
        let build = || {
            let master = MasterKey::from_bytes([5u8; 32]);
            let mut cryptor = RecordCryptor::new(&master);
            let engine = ObliDbEngine::new(&master);
            let yellow: Vec<Row> = (0..25).map(|i| row(i, 50 + i as i64)).collect();
            let green: Vec<Row> = (0..8).map(|i| row(i, 5)).collect();
            engine
                .setup("yellow", schema(), encrypt_batch(&mut cryptor, &yellow, 4))
                .unwrap();
            engine
                .setup("green", schema(), encrypt_batch(&mut cryptor, &green, 2))
                .unwrap();
            (engine, logical(&yellow, &green))
        };
        let (scan_engine, db) = build();
        let (view_engine, _) = build();
        let mut scan_rng = DpRng::seed_from_u64(11);
        let mut view_rng = DpRng::seed_from_u64(11);
        let mut hot = Analyst::with_views(analyst().queries().to_vec());
        // Pose twice: the first registers + backfills, the second reads the
        // maintained state.  Samples must match the scan path both times.
        for _ in 0..2 {
            let scan_samples = analyst()
                .pose_all(Timestamp(360), &scan_engine, &db, &mut scan_rng)
                .unwrap();
            let view_samples = hot
                .pose_all(Timestamp(360), &view_engine, &db, &mut view_rng)
                .unwrap();
            assert_eq!(view_samples.len(), scan_samples.len());
            for (v, s) in view_samples.iter().zip(&scan_samples) {
                assert_eq!(v.query, s.query);
                assert_eq!(v.l1_error, s.l1_error);
                assert_eq!(v.estimated_qet, s.estimated_qet);
            }
        }
        // Two poses each: the servers' query transcripts are identical.
        assert_eq!(
            scan_engine.adversary_view().queries(),
            view_engine.adversary_view().queries()
        );
    }

    #[test]
    fn transcript_only_index_analyst_is_byte_identical_to_scans() {
        // Indexes get registered and maintained server-side, but the
        // TranscriptOnly policy keeps every read on the scan plan — so the
        // adversary's entire view must match an index-free run byte for byte.
        let build = || {
            let master = MasterKey::from_bytes([8u8; 32]);
            let mut cryptor = RecordCryptor::new(&master);
            let engine = ObliDbEngine::new(&master);
            let yellow: Vec<Row> = (0..40).map(|i| row(i, 40 + i as i64)).collect();
            let green: Vec<Row> = (0..12).map(|i| row(i % 4, 7)).collect();
            engine
                .setup("yellow", schema(), encrypt_batch(&mut cryptor, &yellow, 5))
                .unwrap();
            engine
                .setup("green", schema(), encrypt_batch(&mut cryptor, &green, 3))
                .unwrap();
            (engine, logical(&yellow, &green))
        };
        let (scan_engine, db) = build();
        let (index_engine, _) = build();
        let mut scan_rng = DpRng::seed_from_u64(21);
        let mut index_rng = DpRng::seed_from_u64(21);
        let mut planned = Analyst::with_indexes(
            analyst().queries().to_vec(),
            dpsync_edb::planner::LeakagePolicy::TranscriptOnly,
        );
        for _ in 0..2 {
            let scan_samples = analyst()
                .pose_all(Timestamp(360), &scan_engine, &db, &mut scan_rng)
                .unwrap();
            let index_samples = planned
                .pose_all(Timestamp(360), &index_engine, &db, &mut index_rng)
                .unwrap();
            assert_eq!(index_samples.len(), scan_samples.len());
            for (i, s) in index_samples.iter().zip(&scan_samples) {
                assert_eq!((i.l1_error, i.estimated_qet), (s.l1_error, s.estimated_qet));
            }
        }
        assert_eq!(
            scan_engine.adversary_view(),
            index_engine.adversary_view(),
            "TranscriptOnly must not change the adversary's view at all"
        );
    }

    #[test]
    fn permissive_index_analyst_matches_answers_and_declares_index_reads() {
        let build = || {
            let master = MasterKey::from_bytes([9u8; 32]);
            let mut cryptor = RecordCryptor::new(&master);
            let engine = ObliDbEngine::new(&master);
            // Selective pickup ids: Q1's [50, 100] range catches few rows,
            // so the planner routes Q1 through the index.
            let yellow: Vec<Row> = (0..60).map(|i| row(i, (i as i64) * 10)).collect();
            let green: Vec<Row> = (0..10).map(|i| row(i % 3, 7)).collect();
            engine
                .setup("yellow", schema(), encrypt_batch(&mut cryptor, &yellow, 6))
                .unwrap();
            engine
                .setup("green", schema(), encrypt_batch(&mut cryptor, &green, 2))
                .unwrap();
            (engine, logical(&yellow, &green))
        };
        let (scan_engine, db) = build();
        let (index_engine, _) = build();
        let mut scan_rng = DpRng::seed_from_u64(31);
        let mut index_rng = DpRng::seed_from_u64(31);
        let mut planned = Analyst::with_indexes(
            analyst().queries().to_vec(),
            dpsync_edb::planner::LeakagePolicy::AllowIndexedVolume,
        );
        let scan_samples = analyst()
            .pose_all(Timestamp(360), &scan_engine, &db, &mut scan_rng)
            .unwrap();
        let index_samples = planned
            .pose_all(Timestamp(360), &index_engine, &db, &mut index_rng)
            .unwrap();
        assert_eq!(index_samples.len(), scan_samples.len());
        for (i, s) in index_samples.iter().zip(&scan_samples) {
            assert_eq!(
                i.l1_error, s.l1_error,
                "indexed answers must equal scan answers bit for bit"
            );
        }
        let view = index_engine.adversary_view();
        assert!(
            view.queries().iter().any(|o| o.kind == "index"),
            "at least one read must go through the index under the permissive policy"
        );
    }

    #[test]
    fn view_registration_retries_until_table_exists() {
        let master = MasterKey::from_bytes([6u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = ObliDbEngine::new(&master);
        let mut hot = Analyst::with_views(vec![NamedQuery::new(
            "Q1",
            paper_queries::q1_range_count("yellow"),
        )]);
        let mut rng = DpRng::seed_from_u64(12);
        // Table missing: the pose fails downstream (logical db also lacks
        // it), but registration must not poison the state.
        let empty = PlainDatabase::new();
        assert!(hot
            .pose_all(Timestamp(30), &engine, &empty, &mut rng)
            .is_err());
        // Once the table exists the view registers and serves reads.
        let yellow: Vec<Row> = (0..10).map(|i| row(i, 60)).collect();
        engine
            .setup("yellow", schema(), encrypt_batch(&mut cryptor, &yellow, 0))
            .unwrap();
        let db = logical(&yellow, &[]);
        let samples = hot.pose_all(Timestamp(60), &engine, &db, &mut rng).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].l1_error, 0.0);
    }
}
