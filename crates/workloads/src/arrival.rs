//! Arrival-process models.
//!
//! An arrival process decides, for each discrete time unit, how many records
//! the owner receives.  The taxi generator uses the diurnal profile; the
//! other models are useful for stress-testing strategies under different
//! data densities (e.g. the "sparse database" discussion in Observation 2).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An arrival-process model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// At most one record per tick, arriving with the given probability.
    Bernoulli {
        /// Per-tick arrival probability in `[0, 1]`.
        probability: f64,
    },
    /// A day-periodic profile: the per-tick arrival probability oscillates
    /// between `base` and `base + amplitude` with the given period (minutes
    /// per day), peaking mid-period.  Still at most one record per tick, as
    /// in the paper's cleaned trace.
    Diurnal {
        /// Minimum arrival probability (overnight).
        base: f64,
        /// Additional probability at the daily peak.
        amplitude: f64,
        /// Period length in ticks (1440 for one-minute ticks).
        period: u64,
    },
    /// Bursty arrivals: every tick, with probability `burst_probability`, a
    /// burst of `burst_size` records arrives (exercises the multi-record
    /// generalization mentioned in §4.1).
    Bursty {
        /// Probability of a burst at each tick.
        burst_probability: f64,
        /// Records per burst.
        burst_size: u64,
    },
    /// Exactly one record every `period` ticks (deterministic).
    Periodic {
        /// Ticks between consecutive arrivals.
        period: u64,
    },
}

impl ArrivalProcess {
    /// Samples the number of arrivals at time `t` (1-based tick index).
    pub fn sample<R: Rng + ?Sized>(&self, t: u64, rng: &mut R) -> u64 {
        match *self {
            ArrivalProcess::Bernoulli { probability } => {
                u64::from(rng.gen::<f64>() < probability.clamp(0.0, 1.0))
            }
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let period = period.max(1);
                let phase = (t % period) as f64 / period as f64;
                // A raised-cosine day profile peaking at mid-period.
                let p = base + amplitude * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                u64::from(rng.gen::<f64>() < p.clamp(0.0, 1.0))
            }
            ArrivalProcess::Bursty {
                burst_probability,
                burst_size,
            } => {
                if rng.gen::<f64>() < burst_probability.clamp(0.0, 1.0) {
                    burst_size
                } else {
                    0
                }
            }
            ArrivalProcess::Periodic { period } => {
                u64::from(period > 0 && t.is_multiple_of(period.max(1)))
            }
        }
    }

    /// Generates the arrival counts for ticks `1..=horizon`.
    pub fn generate<R: Rng + ?Sized>(&self, horizon: u64, rng: &mut R) -> Vec<u64> {
        (1..=horizon).map(|t| self.sample(t, rng)).collect()
    }

    /// The expected number of arrivals per tick (exact for every model).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Bernoulli { probability } => probability.clamp(0.0, 1.0),
            ArrivalProcess::Diurnal {
                base, amplitude, ..
            } => (base + amplitude * 0.5).clamp(0.0, 1.0),
            ArrivalProcess::Bursty {
                burst_probability,
                burst_size,
            } => burst_probability.clamp(0.0, 1.0) * burst_size as f64,
            ArrivalProcess::Periodic { period } => {
                if period == 0 {
                    0.0
                } else {
                    1.0 / period as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsync_dp::DpRng;

    #[test]
    fn bernoulli_rate_matches_probability() {
        let p = ArrivalProcess::Bernoulli { probability: 0.3 };
        let mut rng = DpRng::seed_from_u64(1);
        let arrivals = p.generate(50_000, &mut rng);
        let rate = arrivals.iter().sum::<u64>() as f64 / arrivals.len() as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert_eq!(p.mean_rate(), 0.3);
        assert!(arrivals.iter().all(|&a| a <= 1));
    }

    #[test]
    fn diurnal_profile_peaks_mid_period() {
        let p = ArrivalProcess::Diurnal {
            base: 0.05,
            amplitude: 0.8,
            period: 1440,
        };
        let mut rng = DpRng::seed_from_u64(2);
        // Compare arrivals near the trough (t % 1440 ≈ 0) and the peak (≈720).
        let mut trough = 0u64;
        let mut peak = 0u64;
        for day in 0..200u64 {
            for offset in 0..30u64 {
                trough += p.sample(day * 1440 + offset, &mut rng);
                peak += p.sample(day * 1440 + 720 + offset, &mut rng);
            }
        }
        assert!(peak > trough * 3, "peak {peak} trough {trough}");
        assert!((p.mean_rate() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn bursty_produces_multi_record_ticks() {
        let p = ArrivalProcess::Bursty {
            burst_probability: 0.1,
            burst_size: 5,
        };
        let mut rng = DpRng::seed_from_u64(3);
        let arrivals = p.generate(10_000, &mut rng);
        assert!(arrivals.contains(&5));
        assert!(arrivals.iter().all(|&a| a == 0 || a == 5));
        let rate = arrivals.iter().sum::<u64>() as f64 / arrivals.len() as f64;
        assert!((rate - 0.5).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn periodic_is_deterministic() {
        let p = ArrivalProcess::Periodic { period: 10 };
        let mut rng = DpRng::seed_from_u64(4);
        let arrivals = p.generate(100, &mut rng);
        assert_eq!(arrivals.iter().sum::<u64>(), 10);
        assert_eq!(arrivals[9], 1);
        assert_eq!(arrivals[8], 0);
        assert_eq!(p.mean_rate(), 0.1);
        assert_eq!(ArrivalProcess::Periodic { period: 0 }.mean_rate(), 0.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = ArrivalProcess::Bernoulli { probability: 0.4 };
        let a = p.generate(1000, &mut DpRng::seed_from_u64(9));
        let b = p.generate(1000, &mut DpRng::seed_from_u64(9));
        let c = p.generate(1000, &mut DpRng::seed_from_u64(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
