//! Remote mode: run the full DP-Sync stack against a server on the other
//! side of a TCP socket — and verify the transport changes nothing.
//!
//! DP-Sync's model is an *outsourced* database: the owner and the analyst
//! sit on one side of a trust boundary, the untrusted server on the other.
//! This example makes that boundary physical.  It starts an
//! [`EdbTcpServer`] on a loopback port (the in-process stand-in for a
//! `dpsync-serve` deployment), connects a [`RemoteEdb`] client, and replays
//! a fixed-seed DP-Timer month over the socket — then replays the identical
//! workload in-process and shows that the simulation report and, more
//! importantly, the server's adversary view are byte-identical.  The wire
//! adds latency, never leakage.
//!
//! Run with: `cargo run --example remote_sync`

use dp_sync::core::simulation::{Simulation, SimulationConfig, TableWorkload};
use dp_sync::core::strategy::{CacheFlush, DpTimerStrategy};
use dp_sync::crypto::MasterKey;
use dp_sync::dp::Epsilon;
use dp_sync::edb::engines::EngineKind;
use dp_sync::edb::query::paper_queries;
use dp_sync::edb::sogdb::SecureOutsourcedDatabase;
use dp_sync::edb::{DataType, Row, Schema, Value};
use dp_sync::net::wire::BackendRequest;
use dp_sync::net::{EdbTcpServer, EngineFactory, EngineProvider, RemoteEdb};

fn workload(horizon: u64) -> TableWorkload {
    TableWorkload {
        table: "yellow".into(),
        schema: Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ]),
        initial_rows: (0..12)
            .map(|i| Row::new(vec![Value::Timestamp(0), Value::Int(50 + i)]))
            .collect(),
        arrivals: (1..=horizon)
            .map(|t| {
                if t % 3 == 0 {
                    vec![Row::new(vec![
                        Value::Timestamp(t),
                        Value::Int((t % 150) as i64),
                    ])]
                } else {
                    vec![]
                }
            })
            .collect(),
        join_time: 0,
        leave_time: None,
    }
}

fn simulation(horizon: u64) -> Simulation {
    Simulation::new(SimulationConfig {
        query_interval: horizon / 6,
        size_sample_interval: horizon / 3,
        queries: vec![
            ("Q1".into(), paper_queries::q1_range_count("yellow")),
            ("Q2".into(), paper_queries::q2_group_by_count("yellow")),
        ],
        seed: 2021,
    })
}

fn strategy() -> Box<DpTimerStrategy> {
    Box::new(DpTimerStrategy::with_flush(
        Epsilon::new_unchecked(0.5),
        30,
        Some(CacheFlush::new(300, 15)),
    ))
}

fn main() {
    const HORIZON: u64 = 720;
    let master = MasterKey::from_bytes([0x5A; 32]);

    // ---- The server side of the trust boundary. --------------------------
    let server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory::default()),
    )
    .expect("bind a loopback port");
    println!("server listening on {}", server.local_addr());

    // ---- The owner/analyst side: everything below runs over the socket. ---
    let remote = RemoteEdb::connect_engine(
        server.local_addr(),
        EngineKind::ObliDb,
        &master,
        BackendRequest::Memory,
    )
    .expect("open a session");
    println!(
        "session open: engine `{}`, leakage class {}",
        remote.name(),
        remote.leakage_profile().class
    );

    let remote_report = simulation(HORIZON)
        .run(&[workload(HORIZON)], &remote, &master, |_| strategy())
        .expect("remote simulation")
        .normalized();
    let remote_view = remote.adversary_view();
    println!(
        "over TCP      : {} syncs, {} update events, {} bytes outsourced, mean Q2 error {:.2}",
        remote_report.sync_count,
        remote_view.update_pattern().len(),
        remote_view.total_ciphertext_bytes(),
        remote_report.mean_l1_error("Q2"),
    );

    // ---- The identical run, in-process. -----------------------------------
    let local = EngineKind::ObliDb.build(&master);
    let local_report = simulation(HORIZON)
        .run(&[workload(HORIZON)], local.as_ref(), &master, |_| {
            strategy()
        })
        .expect("local simulation")
        .normalized();
    let local_view = local.adversary_view();
    println!(
        "in-process    : {} syncs, {} update events, {} bytes outsourced, mean Q2 error {:.2}",
        local_report.sync_count,
        local_view.update_pattern().len(),
        local_view.total_ciphertext_bytes(),
        local_report.mean_l1_error("Q2"),
    );

    // ---- The whole point. --------------------------------------------------
    assert_eq!(
        remote_report, local_report,
        "reports must be byte-identical"
    );
    assert_eq!(
        remote_view, local_view,
        "adversary views must be byte-identical"
    );
    println!("reports and adversary views are byte-identical across transports ✓");
    println!("(the TCP transport adds latency, not leakage)");
}
