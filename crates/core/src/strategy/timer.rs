//! DP-Timer: timer-based differentially-private synchronization (Algorithm 1).
//!
//! DP-Timer synchronizes on a fixed schedule — every `T` time units — but
//! perturbs *how many* records each synchronization carries: the count of
//! records received in the window is passed through the `Perturb` operator
//! (Laplace noise with scale `1/ε`), and the owner fetches the noisy count
//! from the cache, padding with dummies or deferring surplus records as the
//! noise dictates.  Because each window's count touches disjoint records, the
//! per-window mechanisms compose in parallel and the whole update pattern is
//! ε-DP (Theorem 10).

use super::{CacheFlush, StrategyKind, SyncDecision, SyncReason, SyncStrategy, TickContext};
use crate::perturb::{perturbed_count, PerturbedCount};
use crate::timeline::Timestamp;
use dpsync_dp::{Composition, Epsilon, PrivacyAccountant};
use rand::RngCore;

/// The DP-Timer strategy.
#[derive(Debug, Clone)]
pub struct DpTimerStrategy {
    epsilon: Epsilon,
    period: u64,
    flush: Option<CacheFlush>,
    /// Records received in the current window (`c` in Algorithm 1).
    window_count: u64,
    /// Number of strategy-scheduled synchronizations posted so far (`k`).
    syncs_posted: u64,
    accountant: PrivacyAccountant,
}

impl DpTimerStrategy {
    /// Creates a DP-Timer with period `T`, privacy budget ε, and the paper's
    /// default cache-flush configuration.
    pub fn new(epsilon: Epsilon, period: u64) -> Self {
        Self::with_flush(epsilon, period, Some(CacheFlush::paper_default()))
    }

    /// Creates a DP-Timer with an explicit (or disabled) cache flush.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn with_flush(epsilon: Epsilon, period: u64, flush: Option<CacheFlush>) -> Self {
        assert!(period > 0, "DP-Timer period T must be positive");
        Self {
            epsilon,
            period,
            flush,
            window_count: 0,
            syncs_posted: 0,
            accountant: PrivacyAccountant::new(epsilon),
        }
    }

    /// The timer period `T`.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The cache-flush configuration, if enabled.
    pub fn flush(&self) -> Option<CacheFlush> {
        self.flush
    }

    /// Number of strategy-scheduled synchronizations posted so far.
    pub fn syncs_posted(&self) -> u64 {
        self.syncs_posted
    }
}

impl SyncStrategy for DpTimerStrategy {
    fn kind(&self) -> StrategyKind {
        StrategyKind::DpTimer
    }

    fn epsilon(&self) -> Option<Epsilon> {
        Some(self.epsilon)
    }

    fn initial_fetch(&mut self, initial_size: u64, rng: &mut dyn RngCore) -> u64 {
        self.accountant
            .spend("setup", self.epsilon, Composition::Parallel);
        perturbed_count(initial_size, self.epsilon, rng).fetch_size()
    }

    fn on_tick(&mut self, ctx: &TickContext, rng: &mut dyn RngCore) -> SyncDecision {
        self.window_count += ctx.arrived;

        let mut fetch = 0u64;
        let mut reason = SyncReason::Strategy;
        let mut fires = false;

        if ctx.time.is_multiple_of(self.period) {
            // Window boundary: release a noisy count of this window's arrivals
            // and reset the window counter (Algorithm 1, lines 7-10).
            self.accountant.spend(
                format!("window@{}", ctx.time.value()),
                self.epsilon,
                Composition::Parallel,
            );
            let perturbed = perturbed_count(self.window_count, self.epsilon, rng);
            self.window_count = 0;
            if let PerturbedCount::Fetch(n) = perturbed {
                fetch += n;
                fires = true;
                self.syncs_posted += 1;
            }
        }

        if let Some(flush) = self.flush {
            if flush.fires_at(ctx.time) {
                // The flush volume is fixed and data-independent (0-DP).
                fetch += flush.size;
                reason = SyncReason::Flush;
                fires = true;
            }
        }

        if fires {
            SyncDecision::Sync { fetch, reason }
        } else {
            SyncDecision::None
        }
    }

    fn next_wake(&self, now: Timestamp) -> Option<Timestamp> {
        // Idle non-boundary ticks only accumulate `arrived == 0` into the
        // window counter — a no-op that draws no randomness — so the next
        // mandatory consultation is the first period or flush boundary.
        let next_multiple = |p: u64| (now.value() / p + 1) * p;
        let mut wake = next_multiple(self.period);
        if let Some(flush) = self.flush {
            wake = wake.min(next_multiple(flush.interval));
        }
        Some(Timestamp(wake))
    }

    fn accountant(&self) -> Option<&PrivacyAccountant> {
        Some(&self.accountant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timestamp;
    use dpsync_dp::DpRng;

    fn ctx(time: u64, arrived: u64) -> TickContext {
        TickContext {
            time: Timestamp(time),
            arrived,
            cache_len: 0,
        }
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new_unchecked(v)
    }

    #[test]
    fn syncs_only_at_multiples_of_t_or_flush() {
        let mut s = DpTimerStrategy::with_flush(eps(0.5), 30, Some(CacheFlush::new(2000, 15)));
        let mut rng = DpRng::seed_from_u64(1);
        for t in 1..=4_000u64 {
            let decision = s.on_tick(&ctx(t, u64::from(t % 2 == 0)), &mut rng);
            let is_boundary = t % 30 == 0 || t % 2000 == 0;
            if !is_boundary {
                assert_eq!(decision, SyncDecision::None, "unexpected sync at t={t}");
            }
        }
        assert!(s.syncs_posted() > 0);
    }

    #[test]
    fn flush_ticks_always_upload_at_least_the_flush_size() {
        let flush = CacheFlush::new(100, 7);
        let mut s = DpTimerStrategy::with_flush(eps(0.5), 30, Some(flush));
        let mut rng = DpRng::seed_from_u64(2);
        for t in 1..=1_000u64 {
            let decision = s.on_tick(&ctx(t, 1), &mut rng);
            if flush.fires_at(Timestamp(t)) {
                assert!(decision.is_sync());
                assert!(
                    decision.fetch() >= 7,
                    "flush at t={t} fetched {}",
                    decision.fetch()
                );
            }
        }
    }

    #[test]
    fn window_counts_track_arrivals_on_average() {
        // With one arrival per tick and T=30, the average fetch at window
        // boundaries should be close to 30 (the Laplace noise has mean 0).
        let mut s = DpTimerStrategy::with_flush(eps(1.0), 30, None);
        let mut rng = DpRng::seed_from_u64(3);
        let mut fetches = Vec::new();
        for t in 1..=30_000u64 {
            let d = s.on_tick(&ctx(t, 1), &mut rng);
            if d.is_sync() {
                fetches.push(d.fetch() as f64);
            }
        }
        let mean = fetches.iter().sum::<f64>() / fetches.len() as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean fetch {mean}");
        assert_eq!(fetches.len() as u64, s.syncs_posted());
    }

    #[test]
    fn initial_fetch_is_noisy_but_near_the_initial_size() {
        let rng = DpRng::seed_from_u64(4);
        let mut total = 0u64;
        let trials = 200;
        for i in 0..trials {
            let mut s = DpTimerStrategy::with_flush(eps(0.5), 30, None);
            total += s.initial_fetch(100, &mut rng.derive_indexed("init", i));
        }
        let mean = total as f64 / f64::from(trials as u32);
        assert!((mean - 100.0).abs() < 3.0, "mean initial fetch {mean}");
    }

    #[test]
    fn accountant_never_exceeds_epsilon_via_parallel_composition() {
        let mut s = DpTimerStrategy::with_flush(eps(0.5), 10, None);
        let mut rng = DpRng::seed_from_u64(5);
        let _ = s.initial_fetch(50, &mut rng);
        for t in 1..=500u64 {
            let _ = s.on_tick(&ctx(t, 1), &mut rng);
        }
        let budget = s.accountant().unwrap().budget();
        assert!(!budget.exhausted(), "consumed {}", budget.consumed);
        assert_eq!(budget.consumed, 0.5);
    }

    #[test]
    fn kind_epsilon_and_period_accessors() {
        let s = DpTimerStrategy::new(eps(0.5), 30);
        assert_eq!(s.kind(), StrategyKind::DpTimer);
        assert_eq!(s.epsilon().unwrap().value(), 0.5);
        assert_eq!(s.period(), 30);
        assert_eq!(s.flush(), Some(CacheFlush::paper_default()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        let _ = DpTimerStrategy::new(eps(0.5), 0);
    }

    #[test]
    fn next_wake_is_the_first_period_or_flush_boundary() {
        let s = DpTimerStrategy::with_flush(eps(0.5), 30, Some(CacheFlush::new(2000, 15)));
        assert_eq!(s.next_wake(Timestamp(0)), Some(Timestamp(30)));
        assert_eq!(s.next_wake(Timestamp(29)), Some(Timestamp(30)));
        assert_eq!(s.next_wake(Timestamp(30)), Some(Timestamp(60)));
        assert_eq!(s.next_wake(Timestamp(1995)), Some(Timestamp(2000)));
        let no_flush = DpTimerStrategy::with_flush(eps(0.5), 30, None);
        assert_eq!(no_flush.next_wake(Timestamp(1995)), Some(Timestamp(2010)));
    }

    #[test]
    fn eliding_idle_ticks_between_wakes_changes_nothing() {
        // A dense strategy ticked at every t and a sparse twin ticked only at
        // `next_wake` boundaries must post identical decisions and leave their
        // RNGs in identical states (the elision contract of `next_wake`).
        use rand::RngCore as _;
        let flush = Some(CacheFlush::new(40, 5));
        let mut dense = DpTimerStrategy::with_flush(eps(0.5), 30, flush);
        let mut sparse = DpTimerStrategy::with_flush(eps(0.5), 30, flush);
        let mut dense_rng = DpRng::seed_from_u64(7);
        let mut sparse_rng = DpRng::seed_from_u64(7);
        let mut next = sparse.next_wake(Timestamp(0)).unwrap();
        for t in 1..=600u64 {
            let dense_d = dense.on_tick(&ctx(t, 0), &mut dense_rng);
            if Timestamp(t) == next {
                let sparse_d = sparse.on_tick(&ctx(t, 0), &mut sparse_rng);
                assert_eq!(dense_d, sparse_d, "decision diverged at t={t}");
                next = sparse.next_wake(Timestamp(t)).unwrap();
            } else {
                assert_eq!(dense_d, SyncDecision::None, "sync on elided tick t={t}");
            }
        }
        assert_eq!(dense.syncs_posted(), sparse.syncs_posted());
        assert_eq!(dense_rng.next_u64(), sparse_rng.next_u64());
    }

    #[test]
    fn sparse_windows_sometimes_skip() {
        // With no arrivals at all, roughly half the windows should skip
        // (noisy count <= 0), so the update pattern is not a deterministic
        // every-T schedule when the data is empty.
        let mut s = DpTimerStrategy::with_flush(eps(0.5), 10, None);
        let mut rng = DpRng::seed_from_u64(6);
        let mut skipped = 0;
        let mut fired = 0;
        for t in 1..=10_000u64 {
            let d = s.on_tick(&ctx(t, 0), &mut rng);
            if t % 10 == 0 {
                if d.is_sync() {
                    fired += 1;
                } else {
                    skipped += 1;
                }
            }
        }
        assert!(skipped > 300, "skipped={skipped}");
        assert!(fired > 300, "fired={fired}");
    }
}
