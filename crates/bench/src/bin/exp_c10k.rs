//! `exp_c10k` — the reactor server under C10k-style load on loopback.
//!
//! Opens `--connections` real TCP connections against an in-process
//! [`EdbTcpServer`] (shared-mode, `ObliDB` engine), multiplexes `--mux`
//! logical owner sessions over each, and drives `--ticks` interleaved
//! `Π_Update` ticks per session, measuring per-request latency the whole
//! way.  Every session owns its own table, so the workload exercises the
//! sharded server storage exactly like thousands of independent owners.
//!
//! The run is only accepted when three invariants hold:
//!
//! 1. the server sustained every connection concurrently
//!    (`peak_connections >= --connections`),
//! 2. zero handler panics and zero deadline-reaped connections, and
//! 3. the server's merged adversary-view transcript is **byte-identical**
//!    to a single-threaded in-process reference run of the same workload —
//!    the Definition-2 check: neither readiness scheduling, worker-pool
//!    interleaving nor session multiplexing may be visible in the
//!    transcript.
//!
//! Usage:
//!
//! ```text
//! exp_c10k [--connections 1000] [--mux 2] [--ticks 3] [--drivers 16] [--seed S]
//! ```
//!
//! Exits nonzero when any invariant fails, so CI can gate on it directly.

use dpsync_bench::perf::format_throughput;
use dpsync_bench::report::TextTable;
use dpsync_crypto::{MasterKey, RecordCryptor};
use dpsync_edb::engines::base::encrypt_batch;
use dpsync_edb::engines::ObliDbEngine;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::{DataType, Row, Schema, Value};
use dpsync_net::{EdbTcpServer, EngineProvider, MuxConnection, MuxSession, ServeOptions};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Config {
    connections: usize,
    mux: usize,
    ticks: u64,
    drivers: usize,
    seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            connections: 1000,
            mux: 2,
            ticks: 3,
            drivers: 16,
            seed: 2021,
        }
    }
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--connections" => {
                if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                    config.connections = v;
                    i += 1;
                }
            }
            "--mux" => {
                if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                    config.mux = v;
                    i += 1;
                }
            }
            "--ticks" => {
                if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                    config.ticks = v;
                    i += 1;
                }
            }
            "--drivers" => {
                if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                    config.drivers = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = value(i).and_then(|v| v.parse().ok()) {
                    config.seed = v;
                    i += 1;
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: exp_c10k [--connections 1000] [--mux 2] [--ticks 3] [--drivers 16] [--seed S]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("exp_c10k: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    config.connections = config.connections.max(1);
    config.mux = config.mux.max(1);
    config.drivers = config.drivers.clamp(1, config.connections);
    config
}

fn schema() -> Schema {
    Schema::from_pairs(&[("pick_time", DataType::Timestamp), ("fare", DataType::Int)])
}

fn table_name(session: usize) -> String {
    format!("owners_{session:05}")
}

/// The deterministic per-session arrival stream: one real row per tick, plus
/// one dummy every third tick, so merged per-tick volumes vary but are a pure
/// function of `(session, tick)` — identical in the remote and reference runs.
fn tick_rows(session: usize, tick: u64, seed: u64) -> (Vec<Row>, usize) {
    let mix = seed ^ (session as u64).wrapping_mul(0x9E37_79B9) ^ tick;
    let rows = vec![Row::new(vec![
        Value::Timestamp(tick),
        Value::Int((mix % 500) as i64),
    ])];
    let dummies = tick.is_multiple_of(3) as usize;
    (rows, dummies)
}

fn setup_rows(session: usize, seed: u64) -> Vec<Row> {
    let mix = seed ^ (session as u64).wrapping_mul(0x517C_C1B7);
    vec![Row::new(vec![
        Value::Timestamp(0),
        Value::Int((mix % 500) as i64),
    ])]
}

/// Runs one session's full lifecycle against `engine`, encrypting with the
/// shared master key and reporting each `Π_Update` latency through `lat`.
fn drive_session(
    engine: &dyn SecureOutsourcedDatabase,
    master: &MasterKey,
    session: usize,
    phase: SessionPhase,
    seed: u64,
    lat: &mut Vec<u64>,
) {
    let mut cryptor = RecordCryptor::new(master);
    match phase {
        SessionPhase::Setup => {
            let records = encrypt_batch(&mut cryptor, &setup_rows(session, seed), 0);
            engine
                .setup(&table_name(session), schema(), records)
                .expect("setup succeeds");
        }
        SessionPhase::Tick(t) => {
            let (rows, dummies) = tick_rows(session, t, seed);
            let records = encrypt_batch(&mut cryptor, &rows, dummies);
            let started = Instant::now();
            engine
                .update(&table_name(session), t, records)
                .expect("update succeeds");
            lat.push(started.elapsed().as_nanos() as u64);
        }
    }
}

#[derive(Clone, Copy)]
enum SessionPhase {
    Setup,
    Tick(u64),
}

/// The single-threaded in-process reference: the same workload, session by
/// session in index order, against a fresh engine on the calling thread.
fn reference_transcript(
    master: &MasterKey,
    sessions: usize,
    ticks: u64,
    seed: u64,
) -> ObliDbEngine {
    let engine = ObliDbEngine::new(master);
    let mut sink = Vec::new();
    for session in 0..sessions {
        drive_session(
            &engine,
            master,
            session,
            SessionPhase::Setup,
            seed,
            &mut sink,
        );
    }
    for t in 1..=ticks {
        for session in 0..sessions {
            drive_session(
                &engine,
                master,
                session,
                SessionPhase::Tick(t),
                seed,
                &mut sink,
            );
        }
    }
    engine
}

/// Dials the in-process server, retrying briefly: a thousand simultaneous
/// SYNs can overflow the listen backlog, and the kernel answers that with
/// drops the client must absorb.
fn connect_with_retry(addr: std::net::SocketAddr) -> MuxConnection {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match MuxConnection::connect_with_timeout(addr, Some(Duration::from_secs(60))) {
            Ok(conn) => return conn,
            Err(e) => {
                if Instant::now() > deadline {
                    panic!("cannot connect to the loopback server: {e}");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn format_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

fn main() {
    let config = parse_args();
    let sessions_total = config.connections * config.mux;
    println!(
        "C10k reactor load — {} connections x {} sessions, {} ticks, {} drivers (seed {})\n",
        config.connections, config.mux, config.ticks, config.drivers, config.seed
    );

    let master = MasterKey::from_bytes([0xC1; 32]);
    let shared = Arc::new(ObliDbEngine::new(&master));
    let server = EdbTcpServer::bind_with_options(
        "127.0.0.1:0",
        EngineProvider::Shared(Arc::clone(&shared) as Arc<dyn SecureOutsourcedDatabase>),
        ServeOptions {
            // Generous: thousands of sessions sharing one core mean an
            // individual request can legitimately queue for a while.
            io_deadline: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("loopback server binds");
    let addr = server.local_addr();

    // Shard the connections across driver threads; each driver owns its
    // connections' sessions end to end.  Session indices are global so every
    // session has a unique table.
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); config.drivers];
    for c in 0..config.connections {
        shards[c % config.drivers].push(c);
    }
    // All drivers hold their connections open across this barrier, so the
    // server's peak-connection counter must reach the full count.
    let all_connected = Arc::new(Barrier::new(config.drivers));
    let ticks_started = Arc::new(Barrier::new(config.drivers + 1));

    let started = Instant::now();
    let (latencies, connect_elapsed) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in &shards {
            let all_connected = Arc::clone(&all_connected);
            let ticks_started = Arc::clone(&ticks_started);
            let master = &master;
            let config = &config;
            handles.push(scope.spawn(move || {
                // Connect phase: open every connection and session in the
                // shard, run the setups, then rendezvous.
                let mut sessions: Vec<(usize, MuxSession)> = Vec::new();
                let mut lat = Vec::new();
                for &c in shard {
                    let conn = connect_with_retry(addr);
                    for m in 0..config.mux {
                        let session_index = c * config.mux + m;
                        let session = conn.open_shared().expect("session opens");
                        drive_session(
                            &session,
                            master,
                            session_index,
                            SessionPhase::Setup,
                            config.seed,
                            &mut lat,
                        );
                        sessions.push((session_index, session));
                    }
                }
                all_connected.wait();
                ticks_started.wait();

                // Tick phase: interleave every session's updates, tick by
                // tick, measuring each request.
                lat.reserve(sessions.len() * config.ticks as usize);
                for t in 1..=config.ticks {
                    for (session_index, session) in &sessions {
                        drive_session(
                            session,
                            master,
                            *session_index,
                            SessionPhase::Tick(t),
                            config.seed,
                            &mut lat,
                        );
                    }
                }
                lat
            }));
        }

        ticks_started.wait();
        let connect_elapsed = started.elapsed();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("driver thread completes"));
        }
        (all, connect_elapsed)
    });
    let total_elapsed = started.elapsed();
    let tick_elapsed = total_elapsed.saturating_sub(connect_elapsed);

    // Every driver is done; the server-side transcript is stable.  Read it
    // straight off the shared engine (the same object the server serves).
    let remote_view = shared.adversary_view();
    let peak_connections = server.stats().peak_connections();
    let peak_outbound = server.stats().peak_outbound_bytes();
    let reaped = server.stats().reaped_connections();
    let panics = server.handler_panics();

    println!("replaying the single-threaded in-process reference...");
    let reference = reference_transcript(&master, sessions_total, config.ticks, config.seed);
    let reference_view = reference.adversary_view();
    let transcript_ok = remote_view == reference_view;

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let updates = sorted.len() as u64;
    let records_ingested: u64 = (0..sessions_total)
        .map(|s| {
            (1..=config.ticks)
                .map(|t| {
                    let (rows, dummies) = tick_rows(s, t, config.seed);
                    (rows.len() + dummies) as u64
                })
                .sum::<u64>()
        })
        .sum();
    let rec_per_sec = if tick_elapsed.as_nanos() > 0 {
        records_ingested as f64 * 1e9 / tick_elapsed.as_nanos() as f64
    } else {
        0.0
    };

    let mut table = TextTable::new(["metric", "value"]);
    table.add_row(["connections sustained", &peak_connections.to_string()]);
    table.add_row(["owner sessions", &sessions_total.to_string()]);
    table.add_row(["update requests", &updates.to_string()]);
    table.add_row(["records ingested", &records_ingested.to_string()]);
    table.add_row([
        "connect+setup time",
        &format!("{:.2} s", connect_elapsed.as_secs_f64()),
    ]);
    table.add_row([
        "tick wall time",
        &format!("{:.2} s", tick_elapsed.as_secs_f64()),
    ]);
    table.add_row(["ingest throughput", &format_throughput(rec_per_sec)]);
    table.add_row(["update latency p50", &format_ms(percentile(&sorted, 0.50))]);
    table.add_row(["update latency p99", &format_ms(percentile(&sorted, 0.99))]);
    table.add_row(["peak outbound backlog", &format!("{peak_outbound} B")]);
    table.add_row(["reaped connections", &reaped.to_string()]);
    table.add_row(["handler panics", &panics.to_string()]);
    print!("{}", table.render());

    let mut failures = Vec::new();
    if peak_connections < config.connections {
        failures.push(format!(
            "only {} of {} connections were concurrently open",
            peak_connections, config.connections
        ));
    }
    if panics != 0 {
        failures.push(format!("{panics} handler panic(s)"));
    }
    if reaped != 0 {
        failures.push(format!("{reaped} connection(s) were deadline-reaped"));
    }
    if !transcript_ok {
        failures.push("merged transcript diverged from the single-threaded reference".into());
    }

    if failures.is_empty() {
        println!(
            "\ntranscript: merged server view is byte-identical to the in-process reference \
             ({} update events)",
            remote_view.update_events().len()
        );
    } else {
        for f in &failures {
            eprintln!("\nFAILED: {f}");
        }
        std::process::exit(1);
    }
}
