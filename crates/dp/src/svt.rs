//! The sparse-vector technique ("Above Noisy Threshold").
//!
//! DP-ANT (Algorithm 3) synchronizes "when the owner has received
//! approximately θ records".  The decision procedure is exactly one round of
//! the sparse-vector technique: a noisy threshold `θ̃ = θ + Lap(2/ε₁)` is
//! fixed, every time step the running count `c` is compared against `θ̃`
//! after adding fresh noise `v_t = Lap(4/ε₁)`, and the first time the noisy
//! count exceeds the noisy threshold the round *halts* (the owner
//! synchronizes) and a fresh threshold is drawn.  Each completed round
//! consumes `ε₁`; the noisy count released at the halt consumes `ε₂`.

use crate::laplace::Laplace;
use crate::Epsilon;
use rand::Rng;

/// The outcome of feeding one observation to [`AboveNoisyThreshold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvtOutcome {
    /// The noisy count stayed below the noisy threshold; nothing is released.
    Below,
    /// The noisy count reached the noisy threshold; the round halted.
    Above,
}

/// One resettable round of the sparse-vector technique.
///
/// The struct owns the noisy threshold and the query-noise distribution; the
/// caller owns the running count (DP-ANT counts records received since the
/// last synchronization).
#[derive(Debug, Clone)]
pub struct AboveNoisyThreshold {
    threshold: f64,
    epsilon: Epsilon,
    noisy_threshold: f64,
    threshold_noise: Laplace,
    query_noise: Laplace,
    halted: bool,
    comparisons: u64,
    rounds_completed: u64,
}

impl AboveNoisyThreshold {
    /// Creates a new SVT instance for threshold `theta` with per-round budget
    /// `epsilon_1`.  Following Algorithm 3, the threshold noise has scale
    /// `2/ε₁` and the per-comparison noise has scale `4/ε₁`.
    pub fn new<R: Rng + ?Sized>(theta: f64, epsilon_1: Epsilon, rng: &mut R) -> Self {
        let threshold_noise = Laplace::new(0.0, 2.0 / epsilon_1.value())
            .expect("epsilon is validated, scale is finite and positive");
        let query_noise = Laplace::new(0.0, 4.0 / epsilon_1.value())
            .expect("epsilon is validated, scale is finite and positive");
        let noisy_threshold = theta + threshold_noise.sample(rng);
        Self {
            threshold: theta,
            epsilon: epsilon_1,
            noisy_threshold,
            threshold_noise,
            query_noise,
            halted: false,
            comparisons: 0,
            rounds_completed: 0,
        }
    }

    /// The configured (non-noisy) threshold θ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The per-round privacy budget ε₁.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The current noisy threshold θ̃ (exposed for the Table-4 mechanism
    /// simulator and for white-box tests; a real adversary never sees it).
    pub fn noisy_threshold(&self) -> f64 {
        self.noisy_threshold
    }

    /// Whether the current round has halted and needs [`Self::reset`].
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total number of noisy comparisons performed across all rounds.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of completed (halted + reset) rounds so far.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Performs one noisy comparison of `count` against the noisy threshold.
    ///
    /// # Panics
    /// Panics if called after the round halted without an intervening
    /// [`Self::reset`]; continuing to answer after the halt would void the
    /// privacy guarantee.
    pub fn observe<R: Rng + ?Sized>(&mut self, count: u64, rng: &mut R) -> SvtOutcome {
        assert!(
            !self.halted,
            "AboveNoisyThreshold::observe called after the round halted; call reset() first"
        );
        self.comparisons += 1;
        let v = self.query_noise.sample(rng);
        if count as f64 + v >= self.noisy_threshold {
            self.halted = true;
            SvtOutcome::Above
        } else {
            SvtOutcome::Below
        }
    }

    /// Starts a new round by drawing a fresh noisy threshold.
    pub fn reset<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.noisy_threshold = self.threshold + self.threshold_noise.sample(rng);
        if self.halted {
            self.rounds_completed += 1;
        }
        self.halted = false;
    }

    /// Changes the threshold (takes effect at the next [`Self::reset`]).
    pub fn set_threshold(&mut self, theta: f64) {
        self.threshold = theta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpRng;

    #[test]
    fn halts_quickly_once_count_is_far_above_threshold() {
        let mut rng = DpRng::seed_from_u64(1);
        let eps = Epsilon::new_unchecked(1.0);
        let mut trials_halted = 0;
        for t in 0..200 {
            let mut svt = AboveNoisyThreshold::new(10.0, eps, &mut rng.derive_indexed("svt", t));
            // A count far above the threshold should trip essentially always.
            if svt.observe(200, &mut rng) == SvtOutcome::Above {
                trials_halted += 1;
            }
        }
        assert!(trials_halted >= 198, "halted {trials_halted}/200");
    }

    #[test]
    fn rarely_halts_when_count_is_far_below_threshold() {
        let mut rng = DpRng::seed_from_u64(2);
        let eps = Epsilon::new_unchecked(1.0);
        let mut halts = 0;
        for t in 0..200 {
            let mut svt =
                AboveNoisyThreshold::new(200.0, eps, &mut rng.derive_indexed("svt-low", t));
            if svt.observe(0, &mut rng) == SvtOutcome::Above {
                halts += 1;
            }
        }
        assert!(
            halts <= 4,
            "halted {halts}/200 with count far below threshold"
        );
    }

    #[test]
    #[should_panic(expected = "halted")]
    fn observing_after_halt_panics() {
        let mut rng = DpRng::seed_from_u64(3);
        let mut svt = AboveNoisyThreshold::new(0.0, Epsilon::new_unchecked(1.0), &mut rng);
        // Count astronomically above threshold => certain halt.
        let _ = svt.observe(1_000_000, &mut rng);
        let _ = svt.observe(1_000_000, &mut rng);
    }

    #[test]
    fn reset_starts_a_new_round_and_counts_rounds() {
        let mut rng = DpRng::seed_from_u64(4);
        let mut svt = AboveNoisyThreshold::new(5.0, Epsilon::new_unchecked(2.0), &mut rng);
        assert_eq!(svt.rounds_completed(), 0);
        let _ = svt.observe(1_000_000, &mut rng);
        assert!(svt.halted());
        svt.reset(&mut rng);
        assert!(!svt.halted());
        assert_eq!(svt.rounds_completed(), 1);
        // Resetting a non-halted round draws fresh noise but does not count a round.
        svt.reset(&mut rng);
        assert_eq!(svt.rounds_completed(), 1);
    }

    #[test]
    fn average_halt_time_tracks_threshold() {
        // With one new record per step, the expected halt step is near θ.
        let eps = Epsilon::new_unchecked(1.0);
        let rng = DpRng::seed_from_u64(5);
        for &theta in &[10.0_f64, 30.0, 60.0] {
            let mut total = 0u64;
            let trials = 300;
            for t in 0..trials {
                let mut local = rng.derive_indexed(&format!("halt-{theta}"), t);
                let mut svt = AboveNoisyThreshold::new(theta, eps, &mut local);
                let mut step = 0u64;
                loop {
                    step += 1;
                    if svt.observe(step, &mut local) == SvtOutcome::Above || step > 10_000 {
                        break;
                    }
                }
                total += step;
            }
            let mean = total as f64 / f64::from(trials as u32);
            assert!(
                (mean - theta).abs() < theta * 0.5 + 8.0,
                "theta={theta} mean halt step={mean}"
            );
        }
    }

    #[test]
    fn comparisons_are_counted() {
        let mut rng = DpRng::seed_from_u64(6);
        let mut svt = AboveNoisyThreshold::new(1_000.0, Epsilon::new_unchecked(0.5), &mut rng);
        for c in 0..10 {
            let _ = svt.observe(c, &mut rng);
            if svt.halted() {
                svt.reset(&mut rng);
            }
        }
        assert_eq!(svt.comparisons(), 10);
    }

    #[test]
    fn set_threshold_takes_effect_after_reset() {
        let mut rng = DpRng::seed_from_u64(7);
        let mut svt = AboveNoisyThreshold::new(10.0, Epsilon::new_unchecked(5.0), &mut rng);
        svt.set_threshold(1_000.0);
        assert_eq!(svt.threshold(), 1_000.0);
        svt.reset(&mut rng);
        // With a huge threshold and tight noise, a small count must stay below.
        assert_eq!(svt.observe(5, &mut rng), SvtOutcome::Below);
    }
}
