//! Regenerates Figure 5: the privacy trade-off.  Sweeps the privacy budget ε
//! from 0.001 to 10 for both DP strategies (ObliDB engine, default query Q2)
//! and reports the mean L1 error (panel a) and the mean QET (panel b), with
//! the ε-independent SUR / SET / OTO baselines for reference.
//!
//! Usage: `cargo run --release -p dpsync-bench --bin exp_fig5 [--scale N] [--seed S] [--backend {memory,disk}] [--transport {inproc,tcp}]`

use dpsync_bench::experiments::sweeps::{
    baseline_points, figure5_epsilons, privacy_sweep, sweep_series,
};
use dpsync_bench::ExperimentConfig;
use dpsync_core::strategy::StrategyKind;

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    let epsilons = figure5_epsilons();

    for strategy in [StrategyKind::DpTimer, StrategyKind::DpAnt] {
        let points = privacy_sweep(strategy, config, &epsilons);
        print!(
            "{}",
            sweep_series(
                &format!(
                    "Figure 5: {} vs privacy parameter epsilon",
                    strategy.label()
                ),
                "epsilon",
                &points
            )
            .render()
        );
        println!();
    }

    println!("# epsilon-independent baselines (mean Q2 L1 error, mean Q2 QET seconds)");
    for (strategy, point) in baseline_points(config) {
        println!(
            "# {}: {:.3}, {:.3}",
            strategy.label(),
            point.mean_l1_error,
            point.mean_qet
        );
    }
}
