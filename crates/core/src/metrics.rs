//! Evaluation metrics (§4.5) and the simulation report.
//!
//! Accuracy is measured by the **logical gap** (records received but not yet
//! outsourced) and the **query error** (L1 distance between the answer over
//! the outsourced data and the true answer over the logical database).
//! Efficiency is measured by the **query execution time** (estimated through
//! the engine's cost model and measured as wall-clock) and by the amount of
//! outsourced / dummy data.  [`SimulationReport`] collects the full time
//! series plus the aggregate statistics the paper reports in Table 5.

use crate::strategy::StrategyKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One query-error observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySample {
    /// The time unit the query was posed at.
    pub time: u64,
    /// Which query this was ("Q1", "Q2", "Q3").
    pub query: String,
    /// L1 error against the logical database (§4.5.2).
    pub l1_error: f64,
    /// Query execution time estimated by the engine's cost model, seconds.
    pub estimated_qet: f64,
    /// Wall-clock seconds of the simulated execution.
    pub measured_qet: f64,
}

/// One storage-size observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SizeSample {
    /// The time unit of the observation.
    pub time: u64,
    /// Ciphertexts stored on the server (all tables).
    pub outsourced_records: u64,
    /// Bytes stored on the server.
    pub outsourced_bytes: u64,
    /// Dummy records among them.
    pub dummy_records: u64,
    /// Bytes attributable to dummy records.
    pub dummy_bytes: u64,
    /// Rows in the logical database at this time.
    pub logical_records: u64,
    /// Logical gap at this time (received but not outsourced).
    pub logical_gap: u64,
}

/// The full output of one simulated run (one strategy × one engine × one
/// workload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The synchronization strategy that was run.
    pub strategy: StrategyKind,
    /// Engine name ("oblidb", "crypt-epsilon").
    pub engine: String,
    /// Privacy budget, when the strategy is differentially private.
    pub epsilon: Option<f64>,
    /// The per-query error/QET time series.
    pub query_samples: Vec<QuerySample>,
    /// The storage-size time series.
    pub size_samples: Vec<SizeSample>,
    /// Number of update-protocol invocations (including setup).
    pub sync_count: u64,
    /// Time units simulated.
    pub horizon: u64,
}

impl SimulationReport {
    /// The distinct query labels present, in first-appearance order.
    pub fn query_labels(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut labels = Vec::new();
        for s in &self.query_samples {
            if seen.insert(s.query.clone()) {
                labels.push(s.query.clone());
            }
        }
        labels
    }

    fn samples_for<'a>(&'a self, query: &'a str) -> impl Iterator<Item = &'a QuerySample> + 'a {
        self.query_samples.iter().filter(move |s| s.query == query)
    }

    /// Mean L1 error for one query label (`NaN` when no samples exist).
    pub fn mean_l1_error(&self, query: &str) -> f64 {
        mean(self.samples_for(query).map(|s| s.l1_error))
    }

    /// Maximum L1 error for one query label (0 when no samples exist).
    pub fn max_l1_error(&self, query: &str) -> f64 {
        self.samples_for(query)
            .map(|s| s.l1_error)
            .fold(0.0, f64::max)
    }

    /// Mean estimated query execution time for one query label.
    pub fn mean_estimated_qet(&self, query: &str) -> f64 {
        mean(self.samples_for(query).map(|s| s.estimated_qet))
    }

    /// Mean measured (wall-clock) query execution time for one query label.
    pub fn mean_measured_qet(&self, query: &str) -> f64 {
        mean(self.samples_for(query).map(|s| s.measured_qet))
    }

    /// Mean estimated QET across all queries (the x-axis of Figure 4).
    pub fn mean_estimated_qet_all(&self) -> f64 {
        mean(self.query_samples.iter().map(|s| s.estimated_qet))
    }

    /// Mean L1 error across all queries (the y-axis of Figure 4).
    pub fn mean_l1_error_all(&self) -> f64 {
        mean(self.query_samples.iter().map(|s| s.l1_error))
    }

    /// Mean logical gap over the size samples.
    pub fn mean_logical_gap(&self) -> f64 {
        mean(self.size_samples.iter().map(|s| s.logical_gap as f64))
    }

    /// The final size sample (storage state at the end of the run).
    pub fn final_sizes(&self) -> Option<SizeSample> {
        self.size_samples.last().copied()
    }

    /// Total outsourced data at the end of the run, in megabytes.
    pub fn total_outsourced_mb(&self) -> f64 {
        self.final_sizes()
            .map_or(0.0, |s| s.outsourced_bytes as f64 / 1_000_000.0)
    }

    /// Dummy data at the end of the run, in megabytes.
    pub fn dummy_mb(&self) -> f64 {
        self.final_sizes()
            .map_or(0.0, |s| s.dummy_bytes as f64 / 1_000_000.0)
    }

    /// The report with measured wall-clock fields zeroed.
    ///
    /// Everything in a report except `measured_qet` is a deterministic
    /// function of the seed; normalizing strips the only nondeterministic
    /// field so fixed-seed runs — sequential or parallel, on any machine —
    /// can be compared for byte-identical equality.
    pub fn normalized(mut self) -> Self {
        for s in &mut self.query_samples {
            s.measured_qet = 0.0;
        }
        self
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimulationReport {
        SimulationReport {
            strategy: StrategyKind::DpTimer,
            engine: "oblidb".into(),
            epsilon: Some(0.5),
            query_samples: vec![
                QuerySample {
                    time: 360,
                    query: "Q1".into(),
                    l1_error: 2.0,
                    estimated_qet: 1.0,
                    measured_qet: 0.01,
                },
                QuerySample {
                    time: 720,
                    query: "Q1".into(),
                    l1_error: 6.0,
                    estimated_qet: 3.0,
                    measured_qet: 0.03,
                },
                QuerySample {
                    time: 360,
                    query: "Q2".into(),
                    l1_error: 10.0,
                    estimated_qet: 2.0,
                    measured_qet: 0.02,
                },
            ],
            size_samples: vec![
                SizeSample {
                    time: 7200,
                    outsourced_records: 100,
                    outsourced_bytes: 9_500,
                    dummy_records: 10,
                    dummy_bytes: 950,
                    logical_records: 95,
                    logical_gap: 5,
                },
                SizeSample {
                    time: 14_400,
                    outsourced_records: 220,
                    outsourced_bytes: 20_900,
                    dummy_records: 30,
                    dummy_bytes: 2_850,
                    logical_records: 200,
                    logical_gap: 10,
                },
            ],
            sync_count: 12,
            horizon: 43_200,
        }
    }

    #[test]
    fn per_query_aggregates() {
        let r = report();
        assert_eq!(r.mean_l1_error("Q1"), 4.0);
        assert_eq!(r.max_l1_error("Q1"), 6.0);
        assert_eq!(r.mean_estimated_qet("Q1"), 2.0);
        assert!((r.mean_measured_qet("Q1") - 0.02).abs() < 1e-12);
        assert_eq!(r.mean_l1_error("Q2"), 10.0);
        assert!(r.mean_l1_error("Q3").is_nan());
        assert_eq!(r.max_l1_error("Q3"), 0.0);
    }

    #[test]
    fn all_query_aggregates() {
        let r = report();
        assert!((r.mean_l1_error_all() - 6.0).abs() < 1e-12);
        assert!((r.mean_estimated_qet_all() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn size_aggregates() {
        let r = report();
        assert_eq!(r.mean_logical_gap(), 7.5);
        let last = r.final_sizes().unwrap();
        assert_eq!(last.outsourced_records, 220);
        assert!((r.total_outsourced_mb() - 0.0209).abs() < 1e-9);
        assert!((r.dummy_mb() - 0.00285).abs() < 1e-9);
    }

    #[test]
    fn labels_in_first_appearance_order() {
        let r = report();
        assert_eq!(r.query_labels(), vec!["Q1".to_string(), "Q2".to_string()]);
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let r = SimulationReport {
            strategy: StrategyKind::Sur,
            engine: "oblidb".into(),
            epsilon: None,
            query_samples: vec![],
            size_samples: vec![],
            sync_count: 0,
            horizon: 0,
        };
        assert!(r.mean_l1_error_all().is_nan());
        assert!(r.final_sizes().is_none());
        assert_eq!(r.total_outsourced_mb(), 0.0);
        assert!(r.query_labels().is_empty());
        assert!(r.mean_logical_gap().is_nan());
    }
}
