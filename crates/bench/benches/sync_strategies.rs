//! Micro-benchmarks for the synchronization strategies themselves: the
//! per-tick decision cost of every strategy (the owner pays this on every
//! time unit, whether or not a synchronization fires).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, StrategyKind, SyncStrategy,
    SynchronizeEveryTime, SynchronizeUponReceipt, TickContext,
};
use dpsync_core::timeline::Timestamp;
use dpsync_dp::{DpRng, Epsilon};

fn drive(strategy: &mut dyn SyncStrategy, ticks: u64, rng: &mut DpRng) -> u64 {
    let mut synced = 0u64;
    for t in 1..=ticks {
        let ctx = TickContext {
            time: Timestamp(t),
            arrived: u64::from(t % 2 == 0),
            cache_len: t % 50,
        };
        if strategy.on_tick(&ctx, rng).is_sync() {
            synced += 1;
        }
    }
    synced
}

fn bench_strategy_ticks(c: &mut Criterion) {
    let eps = Epsilon::new_unchecked(0.5);
    let flush = Some(CacheFlush::paper_default());
    let mut group = c.benchmark_group("strategy_1000_ticks");
    let mut rng = DpRng::seed_from_u64(5);

    group.bench_function(StrategyKind::Sur.label(), |b| {
        b.iter(|| {
            let mut s = SynchronizeUponReceipt::new();
            black_box(drive(&mut s, 1_000, &mut rng))
        })
    });
    group.bench_function(StrategyKind::Set.label(), |b| {
        b.iter(|| {
            let mut s = SynchronizeEveryTime::new();
            black_box(drive(&mut s, 1_000, &mut rng))
        })
    });
    group.bench_function(StrategyKind::DpTimer.label(), |b| {
        b.iter(|| {
            let mut s = DpTimerStrategy::with_flush(eps, 30, flush);
            black_box(drive(&mut s, 1_000, &mut rng))
        })
    });
    group.bench_function(StrategyKind::DpAnt.label(), |b| {
        b.iter(|| {
            let mut s = AboveNoisyThresholdStrategy::with_flush(eps, 15, flush);
            black_box(drive(&mut s, 1_000, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategy_ticks);
criterion_main!(benches);
