//! The TCP service tier: [`EdbTcpServer`] runs any engine behind a socket.
//!
//! The server is deliberately boring `std::net` machinery — an accept loop on
//! a non-blocking listener plus one handler thread per connection (the same
//! scoped-worker discipline as the `dpsync-bench` pool: plain threads, an
//! atomic for coordination, no async runtime in the vendored dependency
//! set).  What it serves is the full SOGDB protocol suite over the
//! [`crate::wire`] codec:
//!
//! * **Shared mode** — every connection talks to one engine instance
//!   ([`EngineProvider::Shared`]).  Many concurrent clients land on the
//!   existing sharded [`dpsync_edb::server::ServerStorage`], one owner per
//!   table, exactly like in-process concurrent owners.
//! * **Factory mode** — each connection gets a fresh engine built from its
//!   `Hello` frame ([`EngineProvider::Factory`]); this is what `dpsync-serve`
//!   runs, so independent experiment runs can share one server process
//!   without colliding on table names.
//!
//! # Robustness rules
//!
//! * a malformed frame gets one final protocol-error frame, then the
//!   connection closes (the stream offset can no longer be trusted);
//! * a malformed *message* in a well-formed frame gets a protocol-error
//!   frame and the connection continues;
//! * handler panics are caught per connection and counted
//!   ([`EdbTcpServer::handler_panics`]) — one hostile client can never take
//!   the process down;
//! * every read and write carries a deadline ([`ServeOptions::io_deadline`]),
//!   so a stalled peer cannot pin a handler thread forever;
//! * [`EdbTcpServer::shutdown`] stops accepting, wakes idle handlers and
//!   joins every thread before returning.

use crate::frame::{FrameError, FrameWriter, FRAME_HEADER_LEN};
use crate::wire::{BackendRequest, EntropyDraw, Request, Response, SessionRequest};
use dpsync_crypto::MasterKey;
use dpsync_edb::backend::{GroupCommitConfig, SegmentLogConfig};
use dpsync_edb::engines::EngineKind;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::BackendConfig;
use rand::RngCore;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The default `dpsync-serve` listen address.
///
/// The experiment binaries' `--transport tcp` connects here by default, so
/// the zero-config pairing (`dpsync-serve &` then `exp_* --transport tcp`)
/// depends on both sides reading this one constant.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7450";

/// Timing knobs for the server's I/O loops.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// How long a peer may stall mid-frame (or mid-entropy-exchange) before
    /// the connection is dropped.
    pub io_deadline: Duration,
    /// How often idle loops re-check the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            io_deadline: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Builds per-connection engines for factory-mode servers.
#[derive(Debug, Clone, Default)]
pub struct EngineFactory {
    /// Root directory for [`BackendRequest::Disk`] and
    /// [`BackendRequest::DiskGroup`] sessions; each session gets its own
    /// subdirectory, removed when the connection ends.  `None` rejects disk
    /// sessions.
    pub disk_root: Option<PathBuf>,
}

/// Prefix of every per-session scratch directory under the disk root.
const SESSION_DIR_PREFIX: &str = "dpsync-session-";

/// Removes stale per-session scratch directories under `root`.
///
/// Session directories are normally removed when their connection ends (the
/// `SessionDir` drop guard survives even handler panics), but nothing
/// in-process survives SIGKILL: a killed `dpsync-serve` leaves its
/// `dpsync-session-*` directories — and their segment logs — on disk
/// forever.  A fresh server owns the root exclusively, so it sweeps every
/// leftover matching the session naming scheme at startup.
///
/// Returns the number of directories removed.  A missing root is fine
/// (nothing to sweep); individual removal failures are skipped so one
/// undeletable entry cannot block startup.
pub fn sweep_stale_session_dirs(root: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(root) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(SESSION_DIR_PREFIX) {
            continue;
        }
        if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            continue;
        }
        if std::fs::remove_dir_all(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// A per-session scratch directory, removed on drop — even when the handler
/// unwinds, so a panicking session never leaks its segment logs.
#[derive(Debug)]
struct SessionDir(PathBuf);

impl Drop for SessionDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Monotone session counter so concurrent disk sessions never share a
/// directory.
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

impl EngineFactory {
    fn build(
        &self,
        kind: EngineKind,
        master_key: [u8; 32],
        backend: BackendRequest,
    ) -> Result<(Box<dyn SecureOutsourcedDatabase>, Option<SessionDir>), String> {
        let master = MasterKey::from_bytes(master_key);
        match backend {
            BackendRequest::Memory => Ok((kind.build(&master), None)),
            BackendRequest::Disk | BackendRequest::DiskGroup => {
                let Some(root) = &self.disk_root else {
                    return Err("server was started without a disk root".to_string());
                };
                let dir = root.join(format!(
                    "{}{}-{}",
                    SESSION_DIR_PREFIX,
                    std::process::id(),
                    SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let guard = SessionDir(dir.clone());
                let mut config = SegmentLogConfig::new(&dir);
                if backend == BackendRequest::DiskGroup {
                    config = config.with_group_commit(GroupCommitConfig::default());
                }
                let backend = BackendConfig::SegmentLog(config)
                    .build()
                    .map_err(|e| format!("cannot open session segment log: {e}"))?;
                let engine = kind
                    .build_with_backend(&master, backend)
                    .map_err(|e| format!("cannot build engine on session log: {e}"))?;
                Ok((engine, Some(guard)))
            }
        }
    }
}

/// Where connections get their engine from.
pub enum EngineProvider {
    /// One engine, shared by every connection.
    Shared(Arc<dyn SecureOutsourcedDatabase>),
    /// A fresh engine per connection, built from the client's `Hello`.
    Factory(EngineFactory),
}

/// A running TCP server; dropping it shuts it down and joins every thread.
#[derive(Debug)]
pub struct EdbTcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    panics: Arc<AtomicUsize>,
}

impl EdbTcpServer {
    /// Binds `addr` (use port 0 for an ephemeral test port) and starts
    /// accepting connections with default [`ServeOptions`].
    pub fn bind(addr: impl ToSocketAddrs, provider: EngineProvider) -> io::Result<Self> {
        Self::bind_with_options(addr, provider, ServeOptions::default())
    }

    /// As [`EdbTcpServer::bind`] with explicit timing options.
    pub fn bind_with_options(
        addr: impl ToSocketAddrs,
        provider: EngineProvider,
        options: ServeOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let panics = Arc::new(AtomicUsize::new(0));
        let provider = Arc::new(provider);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_panics = Arc::clone(&panics);
        let accept_thread = std::thread::Builder::new()
            .name("dpsync-net-accept".into())
            .spawn(move || {
                accept_loop(listener, provider, options, accept_shutdown, accept_panics)
            })?;

        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            panics,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connection handlers that panicked since startup.  The fuzz
    /// suite asserts this stays zero under arbitrary input.
    pub fn handler_panics(&self) -> usize {
        self.panics.load(Ordering::SeqCst)
    }

    /// Stops accepting, disconnects idle handlers and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for EdbTcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    provider: Arc<EngineProvider>,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
    panics: Arc<AtomicUsize>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let provider = Arc::clone(&provider);
                let shutdown = Arc::clone(&shutdown);
                let panics = Arc::clone(&panics);
                let handle = std::thread::Builder::new()
                    .name("dpsync-net-conn".into())
                    .spawn(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handle_connection(stream, &provider, options, &shutdown)
                        }));
                        if result.is_err() {
                            panics.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                match handle {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => { /* spawn failure: drop the connection */ }
                }
                // Opportunistically reap finished handlers so a long-lived
                // server does not accumulate join handles.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(options.poll_interval);
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(options.poll_interval);
            }
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Outcome of a deadline-aware exact read.
enum ReadStatus {
    /// The buffer was filled.
    Done,
    /// The peer closed the connection before the first byte (only when
    /// `allow_idle`).
    Eof,
    /// The server is shutting down.
    Shutdown,
}

/// Reads exactly `buf.len()` bytes from a stream whose read timeout is the
/// poll interval.
///
/// With `allow_idle`, the call waits indefinitely for the *first* byte
/// (checking the shutdown flag at every poll); once a byte arrives — or when
/// `allow_idle` is false — the peer must keep making progress within
/// `deadline` or the read fails with `TimedOut`.
fn read_exact_deadline(
    stream: &mut &TcpStream,
    buf: &mut [u8],
    allow_idle: bool,
    shutdown: &AtomicBool,
    deadline: Duration,
) -> io::Result<ReadStatus> {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && allow_idle {
                    Ok(ReadStatus::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadStatus::Shutdown);
                }
                let idling = filled == 0 && allow_idle;
                if !idling && last_progress.elapsed() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled past the I/O deadline",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadStatus::Done)
}

/// Reads one frame with the server's deadline semantics.  `Ok(None)` means
/// the connection should end quietly (clean EOF or shutdown).
fn read_frame_deadline(
    stream: &mut &TcpStream,
    allow_idle: bool,
    shutdown: &AtomicBool,
    deadline: Duration,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_exact_deadline(stream, &mut header[..1], allow_idle, shutdown, deadline)? {
        ReadStatus::Done => {}
        ReadStatus::Eof | ReadStatus::Shutdown => return Ok(None),
    }
    match read_exact_deadline(stream, &mut header[1..], false, shutdown, deadline)? {
        ReadStatus::Done => {}
        ReadStatus::Eof | ReadStatus::Shutdown => return Ok(None),
    }
    let len = crate::frame::payload_len(header)?;
    let mut payload = vec![0u8; len];
    match read_exact_deadline(stream, &mut payload, false, shutdown, deadline)? {
        ReadStatus::Done => {}
        ReadStatus::Eof | ReadStatus::Shutdown => return Ok(None),
    }
    crate::frame::check_frame(header, &payload)?;
    Ok(Some(payload))
}

/// The server side of the entropy sub-protocol: a [`RngCore`] whose draws
/// round-trip to the client, one request frame per draw.
///
/// `Π_Query` takes its randomness from the caller — over the wire the caller
/// is on the other end of the socket, so each `next_u32` / `next_u64` /
/// `fill_bytes` becomes an [`Response::EntropyRequest`].  Draws map 1:1 onto
/// the client RNG's methods, which is what keeps a fixed-seed client RNG
/// stream byte-identical between transports.
///
/// `RngCore` has no error channel, so a transport failure mid-draw parks the
/// proxy in a failed state (zeros are returned to let the engine unwind
/// normally) and the handler drops the connection without sending a result.
struct EntropyProxy<'a> {
    stream: &'a TcpStream,
    writer: &'a mut FrameWriter,
    shutdown: &'a AtomicBool,
    deadline: Duration,
    failed: bool,
}

impl EntropyProxy<'_> {
    fn exchange(&mut self, draw: EntropyDraw, expected_len: usize) -> Option<Vec<u8>> {
        if self.failed {
            return None;
        }
        let mut write_half = self.stream;
        if self
            .writer
            .write_frame(&mut write_half, &Response::EntropyRequest(draw).encode())
            .is_err()
        {
            self.failed = true;
            return None;
        }
        let mut read_half = self.stream;
        let frame = match read_frame_deadline(&mut read_half, false, self.shutdown, self.deadline) {
            Ok(Some(frame)) => frame,
            _ => {
                self.failed = true;
                return None;
            }
        };
        match Request::decode(&frame) {
            Ok(Request::EntropyReply(bytes)) if bytes.len() == expected_len => Some(bytes),
            _ => {
                self.failed = true;
                None
            }
        }
    }
}

impl RngCore for EntropyProxy<'_> {
    fn next_u32(&mut self) -> u32 {
        self.exchange(EntropyDraw::U32, 4)
            .map_or(0, |b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn next_u64(&mut self) -> u64 {
        self.exchange(EntropyDraw::U64, 8)
            .map_or(0, |b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.exchange(EntropyDraw::Fill(dest.len() as u32), dest.len()) {
            Some(bytes) => dest.copy_from_slice(&bytes),
            None => dest.fill(0),
        }
    }
}

/// The per-connection engine binding (and, for disk sessions, the scratch
/// directory that must outlive it).
struct Session {
    engine: EngineHandle,
    _dir: Option<SessionDir>,
}

enum EngineHandle {
    Shared(Arc<dyn SecureOutsourcedDatabase>),
    Owned(Box<dyn SecureOutsourcedDatabase>),
}

impl EngineHandle {
    fn engine(&self) -> &dyn SecureOutsourcedDatabase {
        match self {
            EngineHandle::Shared(engine) => engine.as_ref(),
            EngineHandle::Owned(engine) => engine.as_ref(),
        }
    }
}

fn engine_info(engine: &dyn SecureOutsourcedDatabase) -> Response {
    Response::EngineInfo {
        name: engine.name().to_string(),
        profile: engine.leakage_profile(),
        cost: engine.cost_model(),
    }
}

fn open_session(provider: &EngineProvider, hello: SessionRequest) -> Result<Session, String> {
    match (provider, hello) {
        (EngineProvider::Shared(engine), SessionRequest::Shared) => Ok(Session {
            engine: EngineHandle::Shared(Arc::clone(engine)),
            _dir: None,
        }),
        (EngineProvider::Shared(_), SessionRequest::NewEngine { .. }) => {
            Err("this server hosts a shared engine; ask for the shared session".to_string())
        }
        (EngineProvider::Factory(_), SessionRequest::Shared) => {
            Err("this server builds per-connection engines; send an engine request".to_string())
        }
        (
            EngineProvider::Factory(factory),
            SessionRequest::NewEngine {
                engine,
                master_key,
                backend,
            },
        ) => {
            let (engine, dir) = factory.build(engine, master_key, backend)?;
            Ok(Session {
                engine: EngineHandle::Owned(engine),
                _dir: dir,
            })
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    provider: &EngineProvider,
    options: ServeOptions,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(options.poll_interval));
    let _ = stream.set_write_timeout(Some(options.io_deadline));

    // One outbound buffer per connection: every response frame is encoded
    // into it and sent with a single `write_all`, with no per-frame
    // allocation in steady state.
    let mut writer = FrameWriter::new();
    let mut session: Option<Session> = None;
    loop {
        let mut read_half = &stream;
        let frame = match read_frame_deadline(&mut read_half, true, shutdown, options.io_deadline) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF or shutdown
            Err(e) => {
                // The stream offset can no longer be trusted: one courtesy
                // error frame, then disconnect.
                let mut write_half = &stream;
                let _ = writer.write_frame(
                    &mut write_half,
                    &Response::Protocol(format!("bad frame: {e}")).encode(),
                );
                return;
            }
        };

        let request = match Request::decode(&frame) {
            Ok(request) => request,
            Err(e) => {
                // The frame itself was sound (length + CRC), so the stream is
                // still synchronized: report and keep serving.
                if respond(
                    &stream,
                    &mut writer,
                    Response::Protocol(format!("bad message: {e}")),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };

        let response = match (&mut session, request) {
            (_, Request::Hello(hello)) => match open_session(provider, hello) {
                Ok(new_session) => {
                    let info = engine_info(new_session.engine.engine());
                    session = Some(new_session);
                    info
                }
                Err(message) => Response::Protocol(message),
            },
            (None, _) => Response::Protocol("the first message must be a hello".to_string()),
            (Some(_), Request::EntropyReply(_)) => {
                Response::Protocol("entropy reply outside a query".to_string())
            }
            (
                Some(session),
                Request::Setup {
                    table,
                    schema,
                    records,
                },
            ) => match session.engine.engine().setup(&table, schema, records) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Edb(e),
            },
            (
                Some(session),
                Request::Update {
                    table,
                    time,
                    records,
                },
            ) => match session.engine.engine().update(&table, time, records) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Edb(e),
            },
            (Some(session), Request::Query(query)) => {
                let mut proxy = EntropyProxy {
                    stream: &stream,
                    writer: &mut writer,
                    shutdown,
                    deadline: options.io_deadline,
                    failed: false,
                };
                let result = session.engine.engine().query(&query, &mut proxy);
                if proxy.failed {
                    // The client vanished mid-query; the result was computed
                    // from a dead RNG stream and must not be released.
                    return;
                }
                match result {
                    Ok(outcome) => Response::Outcome(outcome),
                    Err(e) => Response::Edb(e),
                }
            }
            (Some(session), Request::Supports(query)) => {
                Response::Supported(session.engine.engine().supports(&query))
            }
            (Some(session), Request::TableStats(table)) => {
                Response::Stats(session.engine.engine().table_stats(&table))
            }
            (Some(session), Request::AdversaryView) => {
                Response::View(session.engine.engine().adversary_view())
            }
        };

        if respond(&stream, &mut writer, response).is_err() {
            return;
        }
    }
}

fn respond(stream: &TcpStream, writer: &mut FrameWriter, response: Response) -> io::Result<()> {
    let mut write_half = stream;
    writer.write_frame(&mut write_half, &response.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use dpsync_edb::engines::ObliDbEngine;
    use std::io::Write;

    fn shared_server() -> EdbTcpServer {
        let master = MasterKey::from_bytes([1u8; 32]);
        let engine: Arc<dyn SecureOutsourcedDatabase> = Arc::new(ObliDbEngine::new(&master));
        EdbTcpServer::bind("127.0.0.1:0", EngineProvider::Shared(engine)).unwrap()
    }

    #[test]
    fn server_binds_and_shuts_down_cleanly() {
        let mut server = shared_server();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.handler_panics(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn raw_garbage_gets_an_error_frame_then_disconnect() {
        let server = shared_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A header announcing an oversized frame.
        stream.write_all(&[0xFF; FRAME_HEADER_LEN]).unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Protocol(message) => assert!(message.contains("bad frame")),
            other => panic!("expected protocol error, got {other:?}"),
        }
        // The server closed its end afterwards.
        let mut buf = [0u8; 1];
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
        assert_eq!(server.handler_panics(), 0);
    }

    #[test]
    fn requests_before_hello_are_rejected_but_keep_the_connection() {
        let server = shared_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, &Request::AdversaryView.encode()).unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Protocol(_)
        ));
        // Still connected: a hello now succeeds.
        write_frame(
            &mut stream,
            &Request::Hello(SessionRequest::Shared).encode(),
        )
        .unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::EngineInfo { .. }
        ));
    }

    #[test]
    fn factory_server_rejects_disk_sessions_without_a_root() {
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory::default()),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &Request::Hello(SessionRequest::NewEngine {
                engine: EngineKind::ObliDb,
                master_key: [0u8; 32],
                backend: BackendRequest::Disk,
            })
            .encode(),
        )
        .unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Protocol(message) => assert!(message.contains("disk root")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn group_commit_disk_sessions_build_and_clean_up() {
        let root =
            std::env::temp_dir().join(format!("dpsync-net-group-session-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory {
                disk_root: Some(root.clone()),
            }),
        )
        .unwrap();
        {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            write_frame(
                &mut stream,
                &Request::Hello(SessionRequest::NewEngine {
                    engine: EngineKind::ObliDb,
                    master_key: [7u8; 32],
                    backend: BackendRequest::DiskGroup,
                })
                .encode(),
            )
            .unwrap();
            let payload = crate::frame::read_frame(&mut stream).unwrap();
            assert!(matches!(
                Response::decode(&payload).unwrap(),
                Response::EngineInfo { .. }
            ));
            // The session directory exists while the connection is alive.
            assert_eq!(
                std::fs::read_dir(&root)
                    .unwrap()
                    .flatten()
                    .filter(|e| e
                        .file_name()
                        .to_string_lossy()
                        .starts_with(SESSION_DIR_PREFIX))
                    .count(),
                1
            );
        }
        // Connection closed: the drop guard removes the directory.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let leftovers = std::fs::read_dir(&root).unwrap().flatten().count();
            if leftovers == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "session dir never cleaned up");
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(server);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_session_dirs_are_swept_and_foreign_entries_kept() {
        let root = std::env::temp_dir().join(format!("dpsync-net-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();

        // Two stale session directories (as a SIGKILLed server leaves them),
        // with nested content.
        for stale in ["dpsync-session-999-0", "dpsync-session-999-1"] {
            let dir = root.join(stale).join("table");
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("seg-000000.dpl"), b"leftover").unwrap();
        }
        // Entries that must survive: a foreign directory and a plain file
        // whose name matches the prefix.
        std::fs::create_dir_all(root.join("keep-me")).unwrap();
        std::fs::write(root.join("dpsync-session-not-a-dir"), b"file").unwrap();

        assert_eq!(sweep_stale_session_dirs(&root), 2);
        let mut names: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["dpsync-session-not-a-dir", "keep-me"]);

        // Sweeping a missing root is a quiet no-op.
        assert_eq!(sweep_stale_session_dirs(&root.join("missing")), 0);

        std::fs::remove_dir_all(&root).unwrap();
    }
}
