//! Cross-crate integration tests: the full DP-Sync stack (workload generator →
//! owner + strategy → encrypted engine → analyst) exercised through the public
//! facade crate, checking the end-to-end properties the paper claims.

use dp_sync::core::simulation::{Simulation, SimulationConfig};
use dp_sync::core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, OneTimeOutsourcing, StrategyKind,
    SyncStrategy, SynchronizeEveryTime, SynchronizeUponReceipt,
};
use dp_sync::core::SimulationReport;
use dp_sync::crypto::MasterKey;
use dp_sync::dp::Epsilon;
use dp_sync::edb::engines::{CryptEpsilonEngine, ObliDbEngine};
use dp_sync::edb::sogdb::SecureOutsourcedDatabase;
use dp_sync::workloads::queries;
use dp_sync::workloads::taxi::{TaxiConfig, TaxiDataset};

const SCALE: u64 = 40;

fn build(kind: StrategyKind, epsilon: f64) -> Box<dyn SyncStrategy> {
    let eps = Epsilon::new_unchecked(epsilon);
    let flush = Some(CacheFlush::new(400, 15));
    match kind {
        StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
        StrategyKind::Oto => Box::new(OneTimeOutsourcing::new()),
        StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
        StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(eps, 30, flush)),
        StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(eps, 15, flush)),
    }
}

fn run_oblidb(kind: StrategyKind, epsilon: f64, seed: u64) -> SimulationReport {
    let yellow = TaxiDataset::generate(TaxiConfig::scaled_yellow(seed, SCALE));
    let green = TaxiDataset::generate(TaxiConfig::scaled_green(seed + 1, SCALE));
    let master = MasterKey::from_bytes([21u8; 32]);
    let engine = ObliDbEngine::new(&master);
    let sim = Simulation::new(SimulationConfig {
        query_interval: 36,
        size_sample_interval: 270,
        queries: queries::paper_query_set(),
        seed,
    });
    sim.run(
        &[
            yellow.to_workload(queries::YELLOW_TABLE),
            green.to_workload(queries::GREEN_TABLE),
        ],
        &engine,
        &master,
        |_| build(kind, epsilon),
    )
    .expect("simulation succeeds")
}

#[test]
fn naive_baselines_match_their_table2_characterisation() {
    let sur = run_oblidb(StrategyKind::Sur, 0.5, 1);
    let oto = run_oblidb(StrategyKind::Oto, 0.5, 1);
    let set = run_oblidb(StrategyKind::Set, 0.5, 1);

    // SUR: zero logical gap, zero dummies, zero error.
    assert_eq!(sur.mean_logical_gap(), 0.0);
    assert_eq!(sur.final_sizes().unwrap().dummy_records, 0);
    assert_eq!(sur.mean_l1_error("Q2"), 0.0);

    // OTO: outsources only the initial records, unbounded error growth.
    assert!(oto.final_sizes().unwrap().outsourced_records <= 5);
    assert!(oto.mean_l1_error("Q2") > sur.mean_l1_error("Q2") + 100.0);

    // SET: exact answers but one upload per tick *per table* (yellow and
    // green both run an owner) => far more stored data.
    assert_eq!(set.mean_l1_error("Q2"), 0.0);
    assert_eq!(
        set.final_sizes().unwrap().outsourced_records,
        2 * set.horizon + oto.final_sizes().unwrap().outsourced_records
    );
    assert!(
        set.final_sizes().unwrap().outsourced_bytes
            > 2 * sur.final_sizes().unwrap().outsourced_bytes
    );
}

#[test]
fn dp_strategies_sit_between_the_baselines() {
    let sur = run_oblidb(StrategyKind::Sur, 0.5, 2);
    let set = run_oblidb(StrategyKind::Set, 0.5, 2);
    let oto = run_oblidb(StrategyKind::Oto, 0.5, 2);

    for kind in [StrategyKind::DpTimer, StrategyKind::DpAnt] {
        let report = run_oblidb(kind, 0.5, 2);
        // Bounded error: orders of magnitude below OTO.
        assert!(
            report.mean_l1_error("Q2") * 10.0 < oto.mean_l1_error("Q2"),
            "{kind:?}: {} vs OTO {}",
            report.mean_l1_error("Q2"),
            oto.mean_l1_error("Q2")
        );
        // Small performance overhead relative to SUR, large saving vs SET.
        let total = report.final_sizes().unwrap().outsourced_records;
        assert!(total < set.final_sizes().unwrap().outsourced_records);
        assert!(total as f64 >= sur.final_sizes().unwrap().outsourced_records as f64 * 0.8);
        // Eventual consistency: by the end of the run the flush mechanism has
        // kept the backlog small.
        assert!(
            report.final_sizes().unwrap().logical_gap < 60,
            "{kind:?} final gap {}",
            report.final_sizes().unwrap().logical_gap
        );
    }
}

#[test]
fn query_errors_are_bounded_by_the_logical_gap_for_counting_queries() {
    // For the exact (ObliDB-like) engine, a count's error can never exceed
    // the number of unsynchronized records at query time.
    let report = run_oblidb(StrategyKind::DpTimer, 0.5, 3);
    let max_gap = report
        .size_samples
        .iter()
        .map(|s| s.logical_gap)
        .max()
        .unwrap_or(0);
    // Q1 counts a subset of records, so its error is at most the maximum gap
    // (plus records briefly deferred between size samples; allow 2x slack).
    let max_q1 = report.max_l1_error("Q1");
    assert!(
        max_q1 <= (max_gap as f64) * 2.0 + 20.0,
        "Q1 max error {max_q1} vs max observed gap {max_gap}"
    );
}

#[test]
fn crypt_epsilon_engine_runs_the_same_stack_with_noisy_answers() {
    let yellow = TaxiDataset::generate(TaxiConfig::scaled_yellow(5, SCALE));
    let master = MasterKey::from_bytes([22u8; 32]);
    let engine = CryptEpsilonEngine::new(&master);
    let sim = Simulation::new(SimulationConfig {
        query_interval: 36,
        size_sample_interval: 270,
        queries: queries::single_table_query_set(),
        seed: 5,
    });
    let report = sim
        .run(
            &[yellow.to_workload(queries::YELLOW_TABLE)],
            &engine,
            &master,
            |_| build(StrategyKind::Sur, 0.5),
        )
        .expect("simulation succeeds");
    // Even SUR has non-zero error on Crypt-ε because the engine perturbs
    // released answers (the paper's explanation for Figure 2a/2b).
    assert!(report.mean_l1_error("Q1") > 0.0);
    assert!(report.mean_l1_error("Q1") < 10.0);
    // And the engine never saw Q3.
    assert!(!report.query_labels().contains(&"Q3".to_string()));
}

#[test]
fn update_pattern_is_all_the_server_learns_about_timing() {
    // Replay the same workload twice with the owner's records arriving at
    // different times but identical counts per DP-Timer window; the observed
    // update-pattern *schedule* must be identical (only volumes may differ by
    // noise), demonstrating that upload times are data-independent.
    let master = MasterKey::from_bytes([23u8; 32]);
    let yellow = TaxiDataset::generate(TaxiConfig::scaled_yellow(9, SCALE));
    let run = |seed: u64| {
        let engine = ObliDbEngine::new(&master);
        let sim = Simulation::new(SimulationConfig {
            query_interval: 0,
            size_sample_interval: 0,
            queries: vec![],
            seed,
        });
        sim.run(
            &[yellow.to_workload(queries::YELLOW_TABLE)],
            &engine,
            &master,
            |_| build(StrategyKind::DpTimer, 0.5),
        )
        .expect("simulation succeeds");
        engine
            .adversary_view()
            .update_pattern()
            .times()
            .into_iter()
            .filter(|t| *t > 0)
            .map(|t| t % 30)
            .collect::<Vec<_>>()
    };
    let offsets = run(101);
    // Every strategy-scheduled upload happens on a window boundary (t % 30 == 0)
    // or a flush boundary (t % 400 == 0, which is also captured mod 30 != 0 only
    // for 400/800/...). Check that at least 90% align with the timer grid.
    let aligned = offsets.iter().filter(|&&o| o == 0).count();
    assert!(
        aligned * 10 >= offsets.len() * 9,
        "only {aligned}/{} uploads on the timer grid",
        offsets.len()
    );
}
