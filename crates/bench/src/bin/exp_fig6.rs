//! Regenerates Figure 6: the trade-off under a fixed privacy level when the
//! non-privacy parameters change — the DP-Timer period `T` (panels a, c) and
//! the DP-ANT threshold θ (panels b, d), swept from 1 to 1000 with ε = 0.5 on
//! the ObliDB engine and the default query Q2.
//!
//! Usage: `cargo run --release -p dpsync-bench --bin exp_fig6 [--scale N] [--seed S] [--backend {memory,disk}] [--transport {inproc,tcp}]`

use dpsync_bench::experiments::sweeps::{
    ant_threshold_sweep, baseline_points, figure6_parameters, sweep_series, timer_period_sweep,
};
use dpsync_bench::ExperimentConfig;

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    let parameters = figure6_parameters();

    let timer_points = timer_period_sweep(config, &parameters);
    print!(
        "{}",
        sweep_series(
            "Figure 6: DP-Timer vs sync interval span T",
            "T",
            &timer_points
        )
        .render()
    );
    println!();

    let ant_points = ant_threshold_sweep(config, &parameters);
    print!(
        "{}",
        sweep_series("Figure 6: DP-ANT vs threshold theta", "theta", &ant_points).render()
    );
    println!();

    println!("# parameter-independent baselines (mean Q2 L1 error, mean Q2 QET seconds)");
    for (strategy, point) in baseline_points(config) {
        println!(
            "# {}: {:.3}, {:.3}",
            strategy.label(),
            point.mean_l1_error,
            point.mean_qet
        );
    }
}
