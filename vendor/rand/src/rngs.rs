//! Concrete generators: [`StdRng`], a xoshiro256++ implementation.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator (xoshiro256++ under the hood).
///
/// The real `rand::rngs::StdRng` is a ChaCha block cipher; xoshiro256++ is not
/// cryptographically secure but passes BigCrush and is more than adequate for
/// the simulation / DP-sampling workloads in this repository. Cryptographic
/// randomness lives in `dpsync-crypto`, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0xff51_afd7_ed55_8ccd,
            ];
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}
