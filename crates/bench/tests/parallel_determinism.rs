//! The parallel experiment runner must be a pure speedup: for a fixed-seed
//! sweep, the reports coming off the worker pool (and out of the sharded
//! per-owner simulation driver) must be byte-identical to the sequential
//! reference — wall-clock fields aside, which `normalized()` strips.

use dpsync_bench::experiments::config::EngineKind;
use dpsync_bench::pool::{parallel_map, set_worker_override};
use dpsync_bench::{run_simulation_sequential, run_specs, ExperimentConfig, RunSpec};
use dpsync_core::metrics::SimulationReport;
use dpsync_core::strategy::StrategyKind;
use std::num::NonZeroUsize;

/// A small fixed-seed sweep covering both engines, single- and multi-table
/// workloads, and every strategy family (deterministic + both DP mechanisms).
fn sweep_specs() -> Vec<RunSpec> {
    let config = ExperimentConfig {
        scale: 120,
        seed: 77,
        ..Default::default()
    }
    .rescale();
    let mut specs = Vec::new();
    for engine in [EngineKind::ObliDb, EngineKind::CryptEpsilon] {
        for strategy in [
            StrategyKind::Sur,
            StrategyKind::DpTimer,
            StrategyKind::DpAnt,
        ] {
            specs.push(RunSpec {
                engine,
                strategy,
                config,
            });
        }
    }
    // A second seed so the sweep is not one repeated simulation.
    let mut other = config;
    other.seed = 78;
    specs.push(RunSpec {
        engine: EngineKind::ObliDb,
        strategy: StrategyKind::DpTimer,
        config: other,
    });
    specs
}

fn normalize(reports: Vec<SimulationReport>) -> Vec<SimulationReport> {
    reports
        .into_iter()
        .map(SimulationReport::normalized)
        .collect()
}

// One #[test] on purpose: the worker override is process-global and Rust's
// harness runs tests concurrently, so separate tests would race on it and
// could silently drop back to the single-worker path on a 1-core box —
// losing exactly the concurrent coverage this file exists to provide.
#[test]
fn pooled_execution_is_deterministic() {
    let specs = sweep_specs();
    // The sequential reference: single-threaded driver, no pool.
    let sequential: Vec<SimulationReport> =
        normalize(specs.iter().map(run_simulation_sequential).collect());

    // The hosted CI box may report one core; force a real multi-worker pool
    // so the claim actually covers concurrent execution.
    set_worker_override(NonZeroUsize::new(4));
    let pooled = normalize(run_specs(&specs));

    assert_eq!(sequential.len(), pooled.len());
    for (spec, (seq, par)) in specs.iter().zip(sequential.iter().zip(&pooled)) {
        assert_eq!(
            seq, par,
            "pooled report diverged from sequential reference for {spec:?}"
        );
    }
    // Byte-identical in the strictest sense: the serialized reports match.
    assert_eq!(
        format!("{sequential:?}"),
        format!("{pooled:?}"),
        "serialized sweeps differ"
    );

    // The worker count must not change results either.
    set_worker_override(NonZeroUsize::new(2));
    let two = normalize(run_specs(&specs));
    set_worker_override(NonZeroUsize::new(8));
    let eight = normalize(run_specs(&specs));
    assert_eq!(two, eight);
    assert_eq!(two, pooled);

    // Order preservation under heterogeneous per-item durations: items sized
    // so later items finish before earlier ones.
    let items: Vec<u64> = vec![200_000, 10, 50_000, 1, 100_000, 5];
    set_worker_override(NonZeroUsize::new(3));
    let out = parallel_map(&items, |&n| (0..n).sum::<u64>());
    set_worker_override(None);
    assert_eq!(
        out,
        items
            .iter()
            .map(|&n| (0..n).sum::<u64>())
            .collect::<Vec<_>>()
    );
}
