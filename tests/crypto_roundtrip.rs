//! Round-trip and indistinguishability tests for record encryption, exercised
//! through the facade crate.

use dp_sync::crypto::{
    EncryptedRecord, MasterKey, PreparedPlaintext, RecordCryptor, RecordPlaintext,
    RECORD_PAYLOAD_LEN,
};
use dp_sync::edb::engines::base::encrypt_batch;
use dp_sync::edb::{DataType, Row, Schema, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encrypt → serialize → parse → decrypt is the identity for every payload
    /// that fits, real or dummy, under any key.
    #[test]
    fn encrypt_decrypt_identity_through_serialization(
        payload in prop::collection::vec(any::<u8>(), 0..=RECORD_PAYLOAD_LEN),
        key in any::<[u8; 32]>(),
        dummy in any::<bool>(),
    ) {
        let master = MasterKey::from_bytes(key);
        let mut cryptor = RecordCryptor::new(&master);
        let plaintext = if dummy {
            RecordPlaintext::dummy()
        } else {
            RecordPlaintext::real(payload)
        };
        let ciphertext = cryptor.encrypt(&plaintext).unwrap();
        let parsed = EncryptedRecord::from_bytes(&ciphertext.to_bytes()).unwrap();
        prop_assert_eq!(parsed, ciphertext.clone());
        prop_assert_eq!(cryptor.decrypt(&ciphertext).unwrap(), plaintext);
    }

    /// Dummy records are length-indistinguishable from real ones: every
    /// ciphertext is exactly `TOTAL_LEN` bytes regardless of payload size or
    /// the dummy flag, so the server learns nothing from sizes.
    #[test]
    fn dummies_are_length_indistinguishable_from_real_records(
        payload_len in 0usize..=RECORD_PAYLOAD_LEN,
        key in any::<[u8; 32]>(),
    ) {
        let master = MasterKey::from_bytes(key);
        let mut cryptor = RecordCryptor::new(&master);
        let real = cryptor
            .encrypt(&RecordPlaintext::real(vec![0xAB; payload_len]))
            .unwrap();
        let dummy = cryptor.encrypt_dummy().unwrap();
        prop_assert_eq!(real.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        prop_assert_eq!(dummy.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        // The dummy flag must live inside the ciphertext body, never in the
        // clear: the two serializations differ only in opaque bytes, and the
        // flag round-trips through decryption alone.
        prop_assert!(cryptor.decrypt(&dummy).unwrap().is_dummy);
        prop_assert!(!cryptor.decrypt(&real).unwrap().is_dummy);
    }

    /// The dummy fast path caches the padded *plaintext* per schema but must
    /// re-encrypt it freshly every time: batches mixing real rows of any
    /// shape with prepared dummies stay length-uniform on the wire, and no
    /// two emitted dummy ciphertexts share bytes (distinct nonces, distinct
    /// encrypted bodies) — otherwise the server could count dummies and break
    /// Definition 4 indistinguishability.
    #[test]
    fn cached_schema_dummies_are_fresh_and_length_indistinguishable(
        key in any::<[u8; 32]>(),
        pickups in prop::collection::vec(1i64..=265, 1..=12),
        dummies in 2usize..=24,
    ) {
        let schema = Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ]);
        let rows: Vec<Row> = pickups
            .iter()
            .enumerate()
            .map(|(t, &p)| Row::new(vec![Value::Timestamp(t as u64), Value::Int(p)]))
            .collect();
        prop_assert!(rows.iter().all(|r| schema.validates(r.values())));

        let master = MasterKey::from_bytes(key);
        let mut cryptor = RecordCryptor::new(&master);
        let batch = encrypt_batch(&mut cryptor, &rows, dummies);
        prop_assert_eq!(batch.len(), rows.len() + dummies);

        // Length indistinguishability: every ciphertext (real or prepared
        // dummy) serializes to exactly TOTAL_LEN bytes.
        for record in &batch {
            prop_assert_eq!(record.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        }

        // Freshness: the dummies all decrypt as dummies, yet no two share
        // bytes — nonces and encrypted bodies are pairwise distinct, even
        // though they all came from one cached PreparedPlaintext.
        let dummy_records: Vec<_> = batch[rows.len()..].to_vec();
        prop_assert_eq!(dummy_records.len(), dummies);
        for record in &dummy_records {
            prop_assert!(cryptor.decrypt(record).unwrap().is_dummy);
        }
        for (i, a) in dummy_records.iter().enumerate() {
            for b in &dummy_records[i + 1..] {
                prop_assert_ne!(a.nonce(), b.nonce());
                prop_assert_ne!(a.to_bytes(), b.to_bytes());
                // The encrypted body segments (between nonce and tag) must
                // differ too — identical bodies under different nonces would
                // mean the keystream was reused.
                let bytes_a = a.to_bytes();
                let bytes_b = b.to_bytes();
                let body = 12..EncryptedRecord::TOTAL_LEN - 16;
                prop_assert_ne!(&bytes_a[body.clone()], &bytes_b[body]);
            }
        }

        // And a dummy prepared directly equals the batch's view of a dummy.
        let direct = cryptor.encrypt_prepared(&PreparedPlaintext::dummy());
        prop_assert!(cryptor.decrypt(&direct).unwrap().is_dummy);
        prop_assert_eq!(direct.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
    }
}

/// A mixed batch of real and dummy records is uniform in length on the wire,
/// and decryption recovers exactly which were dummies (owner-side knowledge).
#[test]
fn mixed_batches_classify_correctly_after_roundtrip() {
    let master = MasterKey::from_bytes([42u8; 32]);
    let mut cryptor = RecordCryptor::new(&master);
    let mut wire = Vec::new();
    for i in 0..100u64 {
        let record = if i % 3 == 0 {
            RecordPlaintext::dummy()
        } else {
            RecordPlaintext::real(i.to_le_bytes().to_vec())
        };
        wire.push(cryptor.encrypt(&record).unwrap().to_bytes());
    }
    assert!(wire.iter().all(|c| c.len() == EncryptedRecord::TOTAL_LEN));
    let dummies = wire
        .iter()
        .map(|c| EncryptedRecord::from_bytes(c).unwrap())
        .filter(|c| cryptor.decrypt(c).unwrap().is_dummy)
        .count();
    assert_eq!(dummies, 34);
}
