//! An ObliDB-like engine: oblivious query processing, L-0 leakage.
//!
//! ObliDB (Eskandarian & Zaharia) runs relational operators obliviously
//! inside an SGX enclave: every select/aggregate touches all records, joins
//! touch all pairs, and result sizes are padded, so the server learns neither
//! access patterns nor response volumes.  The simulator preserves exactly the
//! properties DP-Sync relies on:
//!
//! * answers are **exact** over the synced (non-dummy) records,
//! * query cost is **linear** in the number of stored ciphertexts for
//!   Q1/Q2-style queries and **quadratic** for joins (the cost model charges
//!   enclave-like per-record / per-pair constants),
//! * the adversary observes the update pattern and the query kinds, but no
//!   response volumes ([`LeakageClass::L0ResponseVolumeHiding`]).

use crate::cost::CostModel;
use crate::emm::IndexDef;
use crate::engines::base::EngineCore;
use crate::leakage::{LeakageClass, LeakageProfile};
use crate::query::Query;
use crate::schema::Schema;
use crate::server::{AdversaryView, QueryObservation};
use crate::sogdb::{EdbError, QueryOutcome, SecureOutsourcedDatabase, TableStats};
use crate::views::ViewDef;
use dpsync_crypto::{EncryptedRecord, MasterKey};
use rand::RngCore;
use std::time::Instant;

/// The ObliDB-like engine.
#[derive(Debug)]
pub struct ObliDbEngine {
    core: EngineCore,
    cost: CostModel,
}

impl ObliDbEngine {
    /// Creates an engine sharing the owner's master key, with the default
    /// ObliDB cost model and in-memory ciphertext storage.
    pub fn new(master: &MasterKey) -> Self {
        Self::with_cost_model(master, CostModel::oblidb())
    }

    /// Creates an engine over an explicit storage backend (e.g. the durable
    /// segment log), with the default cost model.
    pub fn with_backend(
        master: &MasterKey,
        backend: std::sync::Arc<dyn crate::backend::StorageBackend>,
    ) -> Result<Self, crate::backend::StorageError> {
        Ok(Self {
            core: EngineCore::with_backend(master, backend)?,
            cost: CostModel::oblidb(),
        })
    }

    /// Creates an engine with a custom cost model (used by ablation benches).
    pub fn with_cost_model(master: &MasterKey, cost: CostModel) -> Self {
        Self {
            core: EngineCore::new(master),
            cost,
        }
    }

    fn estimate(&self, query: &Query) -> f64 {
        match query {
            Query::Count { table, .. } | Query::Select { table, .. } => {
                self.cost.count_cost(self.core.ciphertext_count(table))
            }
            Query::GroupByCount { table, .. } => {
                self.cost.group_by_cost(self.core.ciphertext_count(table))
            }
            Query::JoinCount { left, right, .. } => self.cost.join_cost(
                self.core.ciphertext_count(left),
                self.core.ciphertext_count(right),
            ),
        }
    }
}

impl SecureOutsourcedDatabase for ObliDbEngine {
    fn name(&self) -> &'static str {
        "oblidb"
    }

    fn leakage_profile(&self) -> LeakageProfile {
        LeakageProfile {
            class: LeakageClass::L0ResponseVolumeHiding,
            update_leaks_beyond_pattern: false,
            native_dummy_support: true,
        }
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        self.core.setup(table, schema, records)
    }

    fn update(
        &self,
        table: &str,
        time: u64,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        self.core.ingest(table, time, records)
    }

    fn query(&self, query: &Query, _rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        let started = Instant::now();
        let (answer, touched) = self.core.execute(query)?;
        let measured = started.elapsed().as_secs_f64();
        let estimated = self.estimate(query);

        let sequence = self.core.next_query_sequence();
        self.core.storage().observe_query(QueryObservation {
            sequence,
            kind: query.kind().to_string(),
            touched_records: touched,
            // L-0: response volumes are hidden from the server.
            observed_response_volume: None,
        });

        Ok(QueryOutcome {
            answer,
            estimated_seconds: estimated,
            measured_seconds: measured,
            touched_records: touched,
        })
    }

    fn supports(&self, _query: &Query) -> bool {
        true
    }

    fn table_stats(&self, table: &str) -> TableStats {
        self.core.table_stats(table)
    }

    fn adversary_view(&self) -> AdversaryView {
        self.core.storage().adversary_view()
    }

    fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        // Registration is owner/analyst bookkeeping inside the trusted
        // boundary: nothing is observed by the server.
        self.core.register_view(def)
    }

    fn query_view(&self, name: &str, _rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        let started = Instant::now();
        let (query, answer, touched) = self.core.view_read(name)?;
        let measured = started.elapsed().as_secs_f64();
        // The transcript must be indistinguishable from the equivalent full
        // scan: same cost estimate (the enclave still *bills* an oblivious
        // pass), same observation kind, same touched-record count.  Only the
        // measured wall clock reflects the O(result size) read.
        let estimated = self.estimate(&query);

        let sequence = self.core.next_query_sequence();
        self.core.storage().observe_query(QueryObservation {
            sequence,
            kind: query.kind().to_string(),
            touched_records: touched,
            // L-0: response volumes are hidden from the server.
            observed_response_volume: None,
        });

        Ok(QueryOutcome {
            answer,
            estimated_seconds: estimated,
            measured_seconds: measured,
            touched_records: touched,
        })
    }

    fn register_index(&self, def: &IndexDef) -> Result<(), EdbError> {
        // Like view registration: trusted-boundary bookkeeping, and index
        // maintenance inserts one entry per padded record, so the server
        // observes nothing beyond the Definition-2 update pattern.
        self.core.register_index(def)
    }

    fn query_indexed(
        &self,
        name: &str,
        query: &Query,
        _rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, EdbError> {
        let started = Instant::now();
        let (answer, touched) = self.core.indexed_read(name, query)?;
        let measured = started.elapsed().as_secs_f64();
        // An indexed read is honestly billed and observed by the entries it
        // fetches — this is the declared extra leakage of the index plan,
        // and the planner only chooses it under a policy that allows it.
        let estimated = self.cost.count_cost(touched);

        let sequence = self.core.next_query_sequence();
        self.core.storage().observe_query(QueryObservation {
            sequence,
            kind: "index".to_string(),
            touched_records: touched,
            // L-0: the *answer* volume is still hidden; only the index
            // access pattern (entries fetched) is visible.
            observed_response_volume: None,
        });

        Ok(QueryOutcome {
            answer,
            estimated_seconds: estimated,
            measured_seconds: measured,
            touched_records: touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::base::encrypt_batch;
    use crate::query::{paper_queries, QueryAnswer};
    use crate::row::Row;
    use crate::schema::{DataType, Value};
    use dpsync_crypto::RecordCryptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ])
    }

    fn row(t: u64, p: i64) -> Row {
        Row::new(vec![Value::Timestamp(t), Value::Int(p)])
    }

    fn engine_with_data() -> (ObliDbEngine, RecordCryptor) {
        let master = MasterKey::from_bytes([42u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = ObliDbEngine::new(&master);
        let rows: Vec<Row> = (0..20).map(|i| row(i, 40 + i as i64 * 5)).collect();
        let batch = encrypt_batch(&mut cryptor, &rows, 10);
        engine.setup("yellow", schema(), batch).unwrap();
        (engine, cryptor)
    }

    #[test]
    fn answers_are_exact_and_ignore_dummies() {
        let (engine, _) = engine_with_data();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = engine
            .query(&paper_queries::q1_range_count("yellow"), &mut rng)
            .unwrap();
        // pickup_id = 40 + 5i in [50,100] -> i in [2,12] -> 11 rows.
        assert_eq!(outcome.answer, QueryAnswer::Scalar(11.0));
        assert_eq!(outcome.touched_records, 30);
    }

    #[test]
    fn group_by_and_join_supported() {
        let (engine, mut cryptor) = engine_with_data();
        let rows: Vec<Row> = (0..5).map(|i| row(i, 7)).collect();
        engine
            .update(
                "green_setup_placeholder",
                1,
                encrypt_batch(&mut cryptor, &rows, 0),
            )
            .unwrap_err(); // not set up yet
        engine
            .setup("green", schema(), encrypt_batch(&mut cryptor, &rows, 2))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let q2 = engine
            .query(&paper_queries::q2_group_by_count("green"), &mut rng)
            .unwrap();
        assert_eq!(q2.answer.total(), 5.0);
        let q3 = engine
            .query(&paper_queries::q3_join_count("yellow", "green"), &mut rng)
            .unwrap();
        // yellow times 0..20 (one each), green times 0..5 (one each) -> 5 matches.
        assert_eq!(q3.answer, QueryAnswer::Scalar(5.0));
        assert!(engine.supports(&paper_queries::q3_join_count("yellow", "green")));
    }

    #[test]
    fn estimated_cost_grows_with_outsourced_data() {
        let (engine, mut cryptor) = engine_with_data();
        let mut rng = StdRng::seed_from_u64(3);
        let before = engine
            .query(&paper_queries::q2_group_by_count("yellow"), &mut rng)
            .unwrap()
            .estimated_seconds;
        let more: Vec<Row> = (0..100).map(|i| row(100 + i, 60)).collect();
        engine
            .update("yellow", 50, encrypt_batch(&mut cryptor, &more, 50))
            .unwrap();
        let after = engine
            .query(&paper_queries::q2_group_by_count("yellow"), &mut rng)
            .unwrap()
            .estimated_seconds;
        assert!(after > before);
    }

    #[test]
    fn leakage_profile_is_l0_and_compatible() {
        let (engine, _) = engine_with_data();
        let profile = engine.leakage_profile();
        assert_eq!(profile.class, LeakageClass::L0ResponseVolumeHiding);
        assert!(profile.dp_sync_compatible());
        assert_eq!(engine.name(), "oblidb");
    }

    #[test]
    fn adversary_never_sees_response_volumes() {
        let (engine, _) = engine_with_data();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3 {
            engine
                .query(&paper_queries::q1_range_count("yellow"), &mut rng)
                .unwrap();
        }
        let view = engine.adversary_view();
        assert_eq!(view.queries().len(), 3);
        assert!(view
            .queries()
            .iter()
            .all(|q| q.observed_response_volume.is_none()));
        // The update pattern is still fully visible.
        assert_eq!(view.update_pattern().len(), 1);
        assert_eq!(view.update_pattern().total_volume(), 30);
    }

    #[test]
    fn view_read_is_transcript_identical_to_scan() {
        use crate::views::ViewDef;
        // Two identically-loaded engines: one answers Q1 by scan, the other
        // through a registered view.  Everything the analyst or the
        // adversary can compare — answer, estimate, touched count, query
        // observations — must match bit-for-bit.
        let (scan_engine, _) = engine_with_data();
        let (view_engine, mut cryptor) = engine_with_data();
        let q1 = paper_queries::q1_range_count("yellow");
        view_engine
            .register_view(&ViewDef::new("q1", q1.clone()).unwrap())
            .unwrap();
        // Ingest one more mixed batch through the maintenance path.
        let batch = encrypt_batch(&mut cryptor, &[row(50, 75)], 2);
        view_engine.update("yellow", 60, batch).unwrap();
        let mut cryptor2 = {
            let master = MasterKey::from_bytes([42u8; 32]);
            let mut c = RecordCryptor::new(&master);
            // Skip the nonces engine_with_data consumed so ciphertext bytes
            // differ; the adversary view comparison below excludes them.
            let _ = encrypt_batch(
                &mut c,
                &(0..20)
                    .map(|i| row(i, 40 + i as i64 * 5))
                    .collect::<Vec<_>>(),
                10,
            );
            c
        };
        let batch = encrypt_batch(&mut cryptor2, &[row(50, 75)], 2);
        scan_engine.update("yellow", 60, batch).unwrap();

        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let scan = scan_engine.query(&q1, &mut rng_a).unwrap();
        let view = view_engine.query_view("q1", &mut rng_b).unwrap();
        assert_eq!(view.answer, scan.answer);
        assert_eq!(view.estimated_seconds, scan.estimated_seconds);
        assert_eq!(view.touched_records, scan.touched_records);
        // The servers' query transcripts are identical.
        assert_eq!(
            scan_engine.adversary_view().queries(),
            view_engine.adversary_view().queries()
        );
        // Unknown view names fail cleanly.
        let mut rng = StdRng::seed_from_u64(10);
        assert!(matches!(
            view_engine.query_view("nope", &mut rng),
            Err(EdbError::UnknownView(_))
        ));
    }

    #[test]
    fn indexed_read_matches_scan_answer_and_declares_index_kind() {
        let (engine, _) = engine_with_data();
        let q1 = paper_queries::q1_range_count("yellow");
        engine
            .register_index(&IndexDef::new("idx", "yellow", "pickup_id").unwrap())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let scan = engine.query(&q1, &mut rng).unwrap();
        let indexed = engine.query_indexed("idx", &q1, &mut rng).unwrap();
        // The answer is bit-identical to the scan; the cost and transcript
        // honestly reflect the smaller fetch.
        assert_eq!(indexed.answer, scan.answer);
        assert_eq!(indexed.touched_records, 11);
        assert!(indexed.estimated_seconds < scan.estimated_seconds);
        let view = engine.adversary_view();
        let observed = view.queries().last().unwrap();
        assert_eq!(observed.kind, "index");
        assert_eq!(observed.touched_records, 11);
        assert_eq!(observed.observed_response_volume, None);
        // Unknown index names fail cleanly.
        assert!(matches!(
            engine.query_indexed("nope", &q1, &mut rng),
            Err(EdbError::UnknownIndex(_))
        ));
    }

    #[test]
    fn table_stats_reflect_dummy_split() {
        let (engine, _) = engine_with_data();
        let stats = engine.table_stats("yellow");
        assert_eq!(stats.real_records, 20);
        assert_eq!(stats.dummy_records, 10);
        assert_eq!(stats.ciphertext_count, 30);
    }
}
