//! The experiment harness over TCP: `--transport tcp` runs must reproduce
//! in-process reports bit for bit.
//!
//! Lives in its own integration binary because it owns the process-global
//! serve-address override for its whole duration (the config unit tests
//! exercise the same global in the library test binary).

use dpsync_bench::experiments::config::{set_serve_addr, TransportKind};
use dpsync_bench::{run_simulation, BackendKind, EngineKind, ExperimentConfig, RunSpec};
use dpsync_core::strategy::StrategyKind;
use dpsync_net::{EdbTcpServer, EngineFactory, EngineProvider};

#[test]
fn tcp_transport_runs_reproduce_in_process_reports() {
    let root = std::env::temp_dir().join(format!("dpsync-bench-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let mut server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory {
            disk_root: Some(root.clone()),
        }),
    )
    .expect("loopback server binds");
    set_serve_addr(Some(server.local_addr().to_string()));

    let config = ExperimentConfig {
        scale: 60,
        seed: 3,
        ..Default::default()
    }
    .rescale();

    for engine in EngineKind::ALL {
        for backend in [BackendKind::Memory, BackendKind::Disk] {
            let inproc_spec = RunSpec {
                engine,
                strategy: StrategyKind::DpTimer,
                config: ExperimentConfig { backend, ..config },
            };
            let tcp_spec = RunSpec {
                config: ExperimentConfig {
                    transport: TransportKind::Tcp,
                    ..inproc_spec.config
                },
                ..inproc_spec
            };
            let inproc = run_simulation(&inproc_spec).normalized();
            let tcp = run_simulation(&tcp_spec).normalized();
            assert_eq!(
                inproc, tcp,
                "transport must be invisible for {engine:?}/{backend:?}"
            );
        }
    }

    assert_eq!(server.handler_panics(), 0);
    set_serve_addr(None);
    server.shutdown();
    // Every disk session cleaned up behind itself.
    let leftover: Vec<_> = std::fs::read_dir(&root).unwrap().collect();
    assert!(
        leftover.is_empty(),
        "sessions left scratch dirs: {leftover:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
