//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A size specification for collection strategies: a count or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
