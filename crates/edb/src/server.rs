//! The untrusted server's storage and its adversarial view.
//!
//! DP-Sync's adversary is the semi-honest server (§4.3).  Everything the
//! server can observe while following the protocol is captured in
//! [`AdversaryView`]:
//!
//! * the **update pattern** — when updates happened and how many ciphertexts
//!   each carried (Definition 2),
//! * the **setup volume** — the size of the initial outsourcing,
//! * per-query observations — which kind of query ran and, depending on the
//!   engine's leakage class, the (possibly noisy) response volume.
//!
//! The privacy verification machinery in `dpsync-core` operates exclusively
//! on this transcript: it never looks at owner-side state, mirroring the
//! formal model in which the leakage function is all the adversary gets.
//!
//! # Sharding
//!
//! Storage is sharded **per table**: each table's ciphertext store and its
//! slice of the update-pattern transcript live in their own [`TableShard`]
//! behind an independent `RwLock`, so owners of different tables can run
//! `Π_Update` concurrently without serializing on one global lock.  The
//! table map itself is only write-locked when a new table is created;
//! steady-state ingest takes the map read lock just long enough to clone the
//! shard handle.
//!
//! Concurrency does not change what the adversary formally sees: the
//! transcript of Definition 2 is a *set* of `(t, |γ_t|)` events, and
//! [`ServerStorage::adversary_view`] merges the per-table shards into one
//! canonical ordered transcript (sorted by time, then table name, then
//! per-table arrival index).  Both the sequential and the parallel simulation
//! drivers read the transcript through this merge, so the privacy verifier
//! always sees the same canonical view regardless of thread interleaving.
//!
//! # Storage backends
//!
//! How a shard *materializes* its ciphertexts is delegated to a pluggable
//! [`StorageBackend`] (see [`crate::backend`]): the default in-memory store,
//! or the durable encrypted segment log.  The shard records the same
//! `(time, volume)` observation either way, so the adversary view — and
//! therefore the leakage profile — is backend-independent by construction.
//! [`ServerStorage::with_backend`] additionally *recovers* tables that
//! already exist on a durable backend's medium, rebuilding the pre-crash
//! transcript before any new protocol runs.

use crate::backend::{AppendAck, MemoryBackend, StorageBackend, StorageError, TableStore};
use crate::leakage::{UpdateEvent, UpdatePattern};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

pub use crate::view::{AdversaryView, QueryObservation};

/// One table's slice of the server: its ciphertext store (owned `Box<dyn
/// TableStore>`, opened from the configured backend) plus the update events
/// the server observed for it, in arrival order.
#[derive(Debug)]
pub struct TableShard {
    store: Box<dyn TableStore>,
}

impl TableShard {
    /// Wraps an opened per-table store.
    pub fn new(store: Box<dyn TableStore>) -> Self {
        Self { store }
    }

    /// Appends a batch of ciphertexts at `time` and records the observation.
    ///
    /// The returned [`AppendAck`] says when the batch may be acknowledged:
    /// callers must wait on it *after* releasing this shard's lock, so that
    /// a group-committing backend can stage appends from other protocol
    /// runs into the same sync window.  An error means the batch was not
    /// stored and no observation was recorded.
    pub fn ingest(&mut self, time: u64, ciphertexts: &[Bytes]) -> Result<AppendAck, StorageError> {
        self.store.append_batch(time, ciphertexts)
    }

    /// Number of stored ciphertexts.
    pub fn ciphertext_count(&self) -> u64 {
        self.store.ciphertext_count()
    }

    /// Total ciphertext bytes received for this table.
    pub fn ciphertext_bytes(&self) -> u64 {
        self.store.ciphertext_bytes()
    }

    /// The update events observed for this table (including events recovered
    /// from a durable backend at open time), in arrival order.
    pub fn updates(&self) -> &[UpdateEvent] {
        self.store.updates()
    }

    /// Scans every stored ciphertext in arrival order.
    pub fn scan(&self, visit: &mut dyn FnMut(&[u8])) -> Result<(), StorageError> {
        self.store.scan(visit)
    }
}

/// A shareable handle to one table's shard.
pub type ShardHandle = Arc<RwLock<TableShard>>;

/// The server's ciphertext store across tables, plus the adversary view.
///
/// All methods take `&self`: per-table state lives behind the shard locks and
/// the query transcript behind its own mutex, so one `ServerStorage` can be
/// driven by several owner threads at once.
#[derive(Debug)]
pub struct ServerStorage {
    backend: Arc<dyn StorageBackend>,
    shards: RwLock<BTreeMap<String, ShardHandle>>,
    queries: Mutex<Vec<QueryObservation>>,
}

impl Default for ServerStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStorage {
    /// Creates empty storage on the in-memory backend.
    pub fn new() -> Self {
        Self {
            backend: Arc::new(MemoryBackend::new()),
            shards: RwLock::new(BTreeMap::new()),
            queries: Mutex::new(Vec::new()),
        }
    }

    /// Creates storage on an explicit backend, recovering every table that
    /// already exists on the backend's medium (a reopened segment log
    /// rebuilds its pre-crash transcript here).
    pub fn with_backend(backend: Arc<dyn StorageBackend>) -> Result<Self, StorageError> {
        let mut shards = BTreeMap::new();
        for table in backend.existing_tables()? {
            let store = backend.open_table(&table)?;
            shards.insert(table, Arc::new(RwLock::new(TableShard::new(store))));
        }
        Ok(Self {
            backend,
            shards: RwLock::new(shards),
            queries: Mutex::new(Vec::new()),
        })
    }

    /// The backend this storage runs on.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The shard handle for `table`, creating (opening) it when absent.
    ///
    /// Steady-state callers hold the map lock only long enough to clone the
    /// `Arc`; all per-table work happens under the shard's own lock.
    pub fn shard(&self, table: &str) -> Result<ShardHandle, StorageError> {
        if let Some(shard) = self.shards.read().get(table) {
            return Ok(Arc::clone(shard));
        }
        let mut map = self.shards.write();
        // Re-check under the write lock: another thread may have opened the
        // table between our read and write acquisitions.
        if let Some(shard) = map.get(table) {
            return Ok(Arc::clone(shard));
        }
        let store = self.backend.open_table(table)?;
        let shard = Arc::new(RwLock::new(TableShard::new(store)));
        map.insert(table.to_string(), Arc::clone(&shard));
        Ok(shard)
    }

    /// The shard handle for `table`, when the table exists.
    pub fn existing_shard(&self, table: &str) -> Option<ShardHandle> {
        self.shards.read().get(table).map(Arc::clone)
    }

    /// Appends ciphertexts to a table and records the update observation,
    /// returning only once the batch is **durable** on the backend.
    ///
    /// Only `table`'s shard is write-locked, and only for the append itself:
    /// a group-committing backend's durability wait happens *after* the
    /// guard is dropped, so concurrent `Π_Update` runs — same table or not —
    /// stage into one shared sync window instead of serializing one fsync
    /// each.  Backend I/O failures surface as [`StorageError`] (the engines
    /// wrap them into [`crate::EdbError::Storage`]); on error the batch was
    /// never acknowledged (under group commit a failed *sync* poisons the
    /// backend, which then refuses all further appends — see
    /// [`crate::backend::segment_log`]).
    pub fn ingest(
        &self,
        table: &str,
        time: u64,
        ciphertexts: &[Bytes],
    ) -> Result<(), StorageError> {
        let ack = self.shard(table)?.write().ingest(time, ciphertexts)?;
        ack.wait()
    }

    /// Records a query observation.
    pub fn observe_query(&self, observation: QueryObservation) {
        self.queries.lock().push(observation);
    }

    /// Runs `f` over the shard of `table`, if present (read-locked).
    pub fn with_shard<R>(&self, name: &str, f: impl FnOnce(&TableShard) -> R) -> Option<R> {
        let shard = self.existing_shard(name)?;
        let guard = shard.read();
        Some(f(&guard))
    }

    /// Number of ciphertexts in a table (0 when missing).
    pub fn ciphertext_count(&self, table: &str) -> u64 {
        self.with_shard(table, TableShard::ciphertext_count)
            .unwrap_or(0)
    }

    /// Total ciphertext bytes stored for a table (0 when missing).
    pub fn table_bytes(&self, table: &str) -> u64 {
        self.with_shard(table, TableShard::ciphertext_bytes)
            .unwrap_or(0)
    }

    /// Scans every ciphertext of `table` in arrival order (`None` when the
    /// table does not exist).  Used by recovery checks and white-box tests;
    /// durable backends read back from their medium.
    pub fn scan_table(
        &self,
        table: &str,
        visit: &mut dyn FnMut(&[u8]),
    ) -> Option<Result<(), StorageError>> {
        self.with_shard(table, |shard| shard.scan(visit))
    }

    /// Total ciphertexts across all tables.
    pub fn total_ciphertexts(&self) -> u64 {
        let shards: Vec<ShardHandle> = self.shards.read().values().map(Arc::clone).collect();
        shards.iter().map(|s| s.read().ciphertext_count()).sum()
    }

    /// Total stored bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        let shards: Vec<ShardHandle> = self.shards.read().values().map(Arc::clone).collect();
        shards.iter().map(|s| s.read().ciphertext_bytes()).sum()
    }

    /// Merges the per-table shards into the canonical adversary transcript.
    ///
    /// Update events are ordered by `(time, table name, per-table arrival
    /// index)` — a deterministic total order independent of how owner threads
    /// interleaved their uploads, so the privacy verifier sees the same
    /// transcript whether the simulation ran sequentially or sharded — and,
    /// by the same argument, independent of which storage backend
    /// materialized the ciphertexts.
    pub fn adversary_view(&self) -> AdversaryView {
        let shards: Vec<(String, ShardHandle)> = self
            .shards
            .read()
            .iter()
            .map(|(name, shard)| (name.clone(), Arc::clone(shard)))
            .collect();

        // (time, table, per-table index) keys; BTreeMap iteration over table
        // names is already sorted, so a stable sort by time alone yields the
        // canonical (time, table, index) order.
        let mut events: Vec<UpdateEvent> = Vec::new();
        let mut total_bytes = 0u64;
        for (_, shard) in &shards {
            let guard = shard.read();
            events.extend_from_slice(guard.updates());
            total_bytes += guard.ciphertext_bytes();
        }
        events.sort_by_key(|e| e.time);

        let mut pattern = UpdatePattern::new();
        for e in events {
            pattern.record(e.time, e.volume);
        }

        let mut queries = self.queries.lock().clone();
        queries.sort_by_key(|q| q.sequence);
        AdversaryView::from_parts(pattern, queries, total_bytes)
    }

    /// The transcript restricted to one table (the per-owner view used by
    /// single-table privacy arguments; queries are global and omitted).
    pub fn table_view(&self, table: &str) -> AdversaryView {
        let mut pattern = UpdatePattern::new();
        let mut bytes = 0u64;
        if let Some(shard) = self.existing_shard(table) {
            let guard = shard.read();
            for e in guard.updates() {
                pattern.record(e.time, e.volume);
            }
            bytes = guard.ciphertext_bytes();
        }
        AdversaryView::from_parts(pattern, Vec::new(), bytes)
    }
}

/// A shareable handle to server storage (the analyst and the experiment
/// harness hold clones; the engine holds another).
pub type SharedServerStorage = Arc<ServerStorage>;

/// Creates a new shared server storage handle (in-memory backend).
pub fn shared_storage() -> SharedServerStorage {
    Arc::new(ServerStorage::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendConfig, SegmentLogConfig};
    use std::thread;

    fn ct(len: usize) -> Bytes {
        Bytes::from(vec![0u8; len])
    }

    fn ingest(s: &ServerStorage, table: &str, time: u64, cts: Vec<Bytes>) {
        s.ingest(table, time, &cts).expect("memory ingest");
    }

    #[test]
    fn ingest_accumulates_ciphertexts_and_pattern() {
        let s = ServerStorage::new();
        ingest(&s, "yellow", 0, vec![ct(95); 120]);
        ingest(&s, "yellow", 30, vec![ct(95); 4]);
        ingest(&s, "green", 30, vec![ct(95); 2]);
        assert_eq!(s.ciphertext_count("yellow"), 124);
        assert_eq!(s.ciphertext_count("green"), 2);
        assert_eq!(s.ciphertext_count("missing"), 0);
        assert_eq!(s.total_ciphertexts(), 126);
        assert_eq!(s.total_bytes(), 126 * 95);
        let view = s.adversary_view();
        let pattern = view.update_pattern();
        assert_eq!(pattern.len(), 3);
        assert_eq!(pattern.total_volume(), 126);
        assert_eq!(view.total_ciphertext_bytes(), 126 * 95);
    }

    #[test]
    fn merged_transcript_is_canonically_ordered() {
        let s = ServerStorage::new();
        // Interleave ingests out of time/table order.
        ingest(&s, "yellow", 30, vec![ct(10); 2]);
        ingest(&s, "green", 0, vec![ct(10); 5]);
        ingest(&s, "yellow", 0, vec![ct(10); 3]);
        ingest(&s, "green", 30, vec![ct(10); 1]);
        let view = s.adversary_view();
        // Sorted by (time, table): green@0, yellow@0, green@30, yellow@30.
        assert_eq!(view.update_pattern().times(), vec![0, 0, 30, 30]);
        assert_eq!(view.update_pattern().volumes(), vec![5, 3, 1, 2]);
    }

    #[test]
    fn table_view_restricts_to_one_shard() {
        let s = ServerStorage::new();
        ingest(&s, "yellow", 0, vec![ct(10); 3]);
        ingest(&s, "green", 5, vec![ct(10); 2]);
        let yellow = s.table_view("yellow");
        assert_eq!(yellow.update_pattern().times(), vec![0]);
        assert_eq!(yellow.update_pattern().total_volume(), 3);
        assert_eq!(yellow.total_ciphertext_bytes(), 30);
        assert!(s.table_view("missing").update_pattern().is_empty());
    }

    #[test]
    fn empty_updates_are_still_visible_events() {
        // An update carrying only zero ciphertexts would still be observed as
        // a protocol run; DP-Sync never produces one (Perturb returns nothing
        // when the noisy count is <= 0), but the server model must not hide it.
        let s = ServerStorage::new();
        ingest(&s, "t", 5, vec![]);
        let view = s.adversary_view();
        assert_eq!(view.update_pattern().len(), 1);
        assert_eq!(view.update_pattern().total_volume(), 0);
    }

    #[test]
    fn query_observations_are_appended_in_order() {
        let s = ServerStorage::new();
        for i in 0..3 {
            s.observe_query(QueryObservation {
                sequence: i,
                kind: "count".into(),
                touched_records: 10 * i,
                observed_response_volume: if i == 2 { Some(5) } else { None },
            });
        }
        let view = s.adversary_view();
        let qs = view.queries();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[2].observed_response_volume, Some(5));
        assert_eq!(qs[1].touched_records, 10);
    }

    #[test]
    fn shard_accessors_and_scan() {
        let s = ServerStorage::new();
        ingest(&s, "t", 1, vec![ct(10), ct(20)]);
        s.with_shard("t", |shard| {
            assert_eq!(shard.ciphertext_count(), 2);
            assert_eq!(shard.ciphertext_bytes(), 30);
            assert_eq!(shard.updates().len(), 1);
        })
        .unwrap();
        assert!(s.with_shard("other", |_| ()).is_none());
        assert_eq!(s.table_bytes("t"), 30);
        let mut lens = Vec::new();
        s.scan_table("t", &mut |c| lens.push(c.len()))
            .unwrap()
            .unwrap();
        assert_eq!(lens, vec![10, 20]);
        assert!(s.scan_table("missing", &mut |_| ()).is_none());
    }

    #[test]
    fn concurrent_ingest_to_disjoint_tables_merges_cleanly() {
        let shared = shared_storage();
        thread::scope(|scope| {
            for table in ["yellow", "green", "blue", "red"] {
                let storage = Arc::clone(&shared);
                scope.spawn(move || {
                    for t in 0..100u64 {
                        storage.ingest(table, t, &vec![ct(10); 2]).unwrap();
                    }
                });
            }
        });
        assert_eq!(shared.total_ciphertexts(), 4 * 100 * 2);
        let view = shared.adversary_view();
        assert_eq!(view.update_pattern().len(), 400);
        // Canonical order: times ascending, ties broken by table name.
        let times = view.update_pattern().times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(view.total_ciphertext_bytes(), 8000);
    }

    #[test]
    fn shared_storage_allows_concurrent_reads() {
        let shared = shared_storage();
        shared.ingest("t", 0, &[ct(5)]).unwrap();
        let a = Arc::clone(&shared);
        let b = Arc::clone(&shared);
        assert_eq!(a.total_ciphertexts(), b.total_ciphertexts());
    }

    #[test]
    fn segment_log_storage_recovers_the_transcript_on_reopen() {
        let dir = std::env::temp_dir().join(format!("dpsync-server-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = BackendConfig::SegmentLog(SegmentLogConfig::new(&dir));

        let before = {
            let s = ServerStorage::with_backend(config.build().unwrap()).unwrap();
            s.ingest("yellow", 0, &vec![ct(95); 5]).unwrap();
            s.ingest("green", 7, &vec![ct(95); 2]).unwrap();
            s.ingest("yellow", 30, &vec![ct(95); 1]).unwrap();
            s.adversary_view()
        };

        let s = ServerStorage::with_backend(config.build().unwrap()).unwrap();
        assert_eq!(s.adversary_view(), before);
        assert_eq!(s.ciphertext_count("yellow"), 6);
        // Recovered tables keep accepting appends.
        s.ingest("yellow", 60, &vec![ct(95); 3]).unwrap();
        assert_eq!(s.ciphertext_count("yellow"), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
