//! End-to-end benchmark: one scaled-down simulated month (owner + engine +
//! analyst) per synchronization strategy on the ObliDB-like engine.  This is
//! the cost of regenerating one cell of Table 5 / one curve of Figure 2, and
//! doubles as an ablation for the strategy overhead on the full stack.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpsync_bench::experiments::config::{EngineKind, ExperimentConfig};
use dpsync_bench::experiments::runner::{run_simulation, RunSpec};
use dpsync_core::strategy::StrategyKind;

fn bench_simulated_month(c: &mut Criterion) {
    // Scale 60 => 720-minute horizon with ~307 Yellow Cab records.
    let config = ExperimentConfig {
        scale: 60,
        seed: 77,
        ..Default::default()
    }
    .rescale();

    let mut group = c.benchmark_group("simulated_month_scale60");
    group.sample_size(20);
    for strategy in StrategyKind::ALL {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                black_box(run_simulation(&RunSpec {
                    engine: EngineKind::ObliDb,
                    strategy,
                    config,
                }))
            })
        });
    }
    group.bench_function("DP-Timer/crypt-epsilon", |b| {
        b.iter(|| {
            black_box(run_simulation(&RunSpec {
                engine: EngineKind::CryptEpsilon,
                strategy: StrategyKind::DpTimer,
                config,
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulated_month);
criterion_main!(benches);
