//! Per-strategy integration tests over short simulations with fixed seeds:
//! every `StrategyKind` drives the full stack, and the server-visible update
//! pattern of the DP strategies is dummy-padded so upload volumes never leak
//! plaintext record counts.

use dp_sync::core::simulation::{Simulation, SimulationConfig};
use dp_sync::core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, OneTimeOutsourcing, StrategyKind,
    SyncStrategy, SynchronizeEveryTime, SynchronizeUponReceipt,
};
use dp_sync::core::SimulationReport;
use dp_sync::crypto::MasterKey;
use dp_sync::dp::Epsilon;
use dp_sync::edb::engines::ObliDbEngine;
use dp_sync::edb::sogdb::SecureOutsourcedDatabase;
use dp_sync::workloads::queries;
use dp_sync::workloads::taxi::{TaxiConfig, TaxiDataset};

const SCALE: u64 = 20;
const SEED: u64 = 77;

fn build(kind: StrategyKind) -> Box<dyn SyncStrategy> {
    let eps = Epsilon::new_unchecked(0.5);
    let flush = Some(CacheFlush::new(300, 10));
    match kind {
        StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
        StrategyKind::Oto => Box::new(OneTimeOutsourcing::new()),
        StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
        StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(eps, 20, flush)),
        StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(eps, 10, flush)),
    }
}

/// Runs one short single-table simulation and returns the report plus the
/// server's view of the update pattern (times and volumes of every upload).
fn run_short(kind: StrategyKind) -> (SimulationReport, Vec<u64>, Vec<u64>, u64) {
    let yellow = TaxiDataset::generate(TaxiConfig::scaled_yellow(SEED, SCALE));
    let workload = yellow.to_workload(queries::YELLOW_TABLE);
    let total_real_rows = workload.total_rows();
    let master = MasterKey::from_bytes([7u8; 32]);
    let engine = ObliDbEngine::new(&master);
    let sim = Simulation::new(SimulationConfig {
        query_interval: 0,
        size_sample_interval: 0,
        queries: vec![],
        seed: SEED,
    });
    let report = sim
        .run(&[workload], &engine, &master, |_| build(kind))
        .expect("simulation succeeds");
    let view = engine.adversary_view();
    let pattern = view.update_pattern();
    (report, pattern.times(), pattern.volumes(), total_real_rows)
}

#[test]
fn sur_runs_and_leaks_exact_counts_with_no_dummies() {
    let (report, _times, volumes, total_real) = run_short(StrategyKind::Sur);
    let sizes = report.final_sizes().unwrap();
    // The baseline is the contrast case: no padding at all, so the pattern
    // volume is exactly the plaintext record count — the leakage DP-Sync
    // exists to remove.
    assert_eq!(sizes.dummy_records, 0);
    assert_eq!(volumes.iter().sum::<u64>(), total_real);
    assert_eq!(sizes.logical_gap, 0);
}

#[test]
fn oto_runs_and_uploads_only_the_initial_database() {
    let (report, times, _volumes, _total_real) = run_short(StrategyKind::Oto);
    let sizes = report.final_sizes().unwrap();
    // One-time outsourcing: everything the server ever sees arrives at setup.
    assert!(
        times.iter().all(|&t| t == 0),
        "OTO uploaded after setup: {times:?}"
    );
    assert!(
        sizes.logical_gap > 0,
        "a growing workload must leave a backlog"
    );
}

#[test]
fn set_runs_and_uploads_exactly_once_per_tick() {
    let (report, times, volumes, _total_real) = run_short(StrategyKind::Set);
    // SET posts one padded upload every tick after setup.
    let post_setup: Vec<u64> = times.iter().copied().filter(|&t| t > 0).collect();
    assert_eq!(post_setup.len() as u64, report.horizon);
    // Every per-tick upload (the setup upload at t=0 may be empty) has at
    // least one record: quiet ticks are dummy-padded.
    for (&t, &v) in times.iter().zip(volumes.iter()) {
        assert!(t == 0 || v >= 1, "empty SET upload at t={t}");
    }
    let sizes = report.final_sizes().unwrap();
    assert!(
        sizes.dummy_records > 0,
        "quiet ticks must be padded with dummies"
    );
}

#[test]
fn dp_timer_pattern_is_dummy_padded_and_hides_record_counts() {
    let (report, times, volumes, total_real) = run_short(StrategyKind::DpTimer);
    let sizes = report.final_sizes().unwrap();
    // The paper's core claim (Definition 5 applied to DP-Timer, Theorem 10):
    // upload volumes are Laplace-perturbed and topped up with dummies, so the
    // server-visible total exceeds the real record count...
    assert!(
        sizes.dummy_records > 0,
        "DP-Timer produced no dummy records"
    );
    assert!(
        volumes.iter().sum::<u64>() > total_real,
        "pattern volume should include dummy padding"
    );
    // ...and the total stored records are real + dummy exactly.
    assert_eq!(
        sizes.outsourced_records,
        volumes.iter().sum::<u64>(),
        "server-side count must match the adversary-visible pattern"
    );
    // Upload times sit on the data-independent timer/flush grid (period 20 or
    // flush interval 300), never on data-driven instants.
    for &t in times.iter().filter(|&&t| t > 0) {
        assert!(
            t % 20 == 0 || t % 300 == 0,
            "DP-Timer upload at off-grid time {t}"
        );
    }
    let _ = report;
}

#[test]
fn dp_ant_pattern_is_dummy_padded_and_hides_record_counts() {
    let (report, times, volumes, _total_real) = run_short(StrategyKind::DpAnt);
    let sizes = report.final_sizes().unwrap();
    assert!(sizes.dummy_records > 0, "DP-ANT produced no dummy records");
    assert_eq!(
        sizes.outsourced_records,
        volumes.iter().sum::<u64>(),
        "server-side count must match the adversary-visible pattern"
    );
    // DP-ANT syncs at SVT-halt times; the *volumes* it posts are noisy
    // (perturbed + dummy-padded), so no upload reveals the exact backlog:
    // the per-upload volume multiset must differ from what an unpadded
    // (SUR-style) run would post for the same workload.
    let (_, _, sur_volumes, _) = run_short(StrategyKind::Sur);
    let mut noisy: Vec<u64> = volumes.iter().copied().filter(|&v| v > 0).collect();
    let mut exact: Vec<u64> = sur_volumes.iter().copied().filter(|&v| v > 0).collect();
    noisy.sort_unstable();
    exact.sort_unstable();
    assert_ne!(noisy, exact, "DP-ANT posted exactly the plaintext counts");
    assert!(
        times.len() < report.horizon as usize,
        "ANT must batch, not sync every tick"
    );
}

#[test]
fn all_strategies_complete_with_the_same_fixed_seed() {
    for kind in [
        StrategyKind::Sur,
        StrategyKind::Oto,
        StrategyKind::Set,
        StrategyKind::DpTimer,
        StrategyKind::DpAnt,
    ] {
        let (report, _, _, _) = run_short(kind);
        assert_eq!(report.strategy, kind);
        assert!(report.horizon > 0, "{kind:?} simulated an empty horizon");
        assert!(
            report.sync_count >= 1,
            "{kind:?} never ran the update protocol"
        );
        // Deterministic replay: the same seed gives the identical report.
        let (replay, _, _, _) = run_short(kind);
        assert_eq!(
            report, replay,
            "{kind:?} is not reproducible under a fixed seed"
        );
    }
}
