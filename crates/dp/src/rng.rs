//! Reproducible randomness for all DP-Sync components.
//!
//! Every randomized algorithm in the workspace (Laplace sampling, the sparse
//! vector technique, workload generators, the synthetic taxi data) draws from
//! a caller-supplied RNG.  [`DpRng`] is a small convenience wrapper around
//! [`rand::rngs::StdRng`] that makes seeding explicit and lets experiments
//! derive independent per-component streams from one master seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable random number generator with named sub-streams.
///
/// The experiment harness creates one `DpRng` from a configured master seed
/// and then derives independent generators for the workload, each strategy,
/// and each engine so that changing one component never perturbs the random
/// draws of another (a common source of irreproducible experiment tables).
#[derive(Debug, Clone)]
pub struct DpRng {
    inner: StdRng,
    seed: u64,
}

impl DpRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Creates a generator from operating-system entropy.
    pub fn from_entropy() -> Self {
        let seed = rand::thread_rng().gen::<u64>();
        Self::seed_from_u64(seed)
    }

    /// The master seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the named sub-stream.
    ///
    /// The derivation hashes the label into the seed with a Fowler–Noll–Vo
    /// style mix, which is sufficient to decorrelate streams for simulation
    /// purposes (this is *not* a cryptographic KDF — the crypto crate has its
    /// own key-derivation code).
    pub fn derive(&self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Mix once more so labels that share a prefix still diverge strongly.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        Self::seed_from_u64(h)
    }

    /// Derives an independent generator for a numbered repetition of a stream.
    pub fn derive_indexed(&self, label: &str, index: u64) -> Self {
        self.derive(&format!("{label}#{index}"))
    }
}

impl RngCore for DpRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DpRng::seed_from_u64(42);
        let mut b = DpRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DpRng::seed_from_u64(1);
        let mut b = DpRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let root = DpRng::seed_from_u64(7);
        let mut a1 = root.derive("workload");
        let mut a2 = root.derive("workload");
        let mut b = root.derive("strategy");
        let x1: Vec<u64> = (0..4).map(|_| a1.gen()).collect();
        let x2: Vec<u64> = (0..4).map(|_| a2.gen()).collect();
        let y: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn derive_indexed_distinguishes_repetitions() {
        let root = DpRng::seed_from_u64(7);
        let mut a = root.derive_indexed("trial", 0);
        let mut b = root.derive_indexed("trial", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn from_entropy_produces_distinct_generators() {
        let mut a = DpRng::from_entropy();
        let mut b = DpRng::from_entropy();
        // Overwhelmingly likely to differ; equality would indicate a broken
        // entropy source rather than bad luck.
        assert_ne!(
            (0..4).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..4).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = DpRng::seed_from_u64(99);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
