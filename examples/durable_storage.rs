//! Durable storage: run DP-Sync over the encrypted segment-log backend,
//! "crash", and recover the exact server-side transcript from disk.
//!
//! The storage backend is invisible to the privacy analysis — the adversary
//! view is byte-identical between the in-memory store and the segment log —
//! but only the latter survives a restart.  This example outsources a small
//! growing database onto a segment log, then reopens the directory cold (as
//! a restarted server would) and shows that the update pattern, ciphertext
//! bytes and the ciphertexts themselves are all still there.
//!
//! Run with: `cargo run --example durable_storage`

use dp_sync::core::strategy::{DpTimerStrategy, SyncStrategy};
use dp_sync::core::{Owner, Timestamp};
use dp_sync::crypto::MasterKey;
use dp_sync::dp::{DpRng, Epsilon};
use dp_sync::edb::backend::BackendConfig;
use dp_sync::edb::engines::ObliDbEngine;
use dp_sync::edb::server::ServerStorage;
use dp_sync::edb::sogdb::SecureOutsourcedDatabase;
use dp_sync::edb::{DataType, Row, Schema, Value};

fn main() {
    let dir = std::env::temp_dir().join(format!("dpsync-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend_config = BackendConfig::segment_log(&dir);
    println!("segment log rooted at {}", dir.display());

    // ---- First server lifetime: outsource under DP-Timer. ----------------
    let mut rng = DpRng::seed_from_u64(7);
    let master = MasterKey::generate(&mut rng);
    let view_before = {
        let backend = backend_config.build().expect("create segment log");
        let engine = ObliDbEngine::with_backend(&master, backend).expect("open engine");

        let schema = Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ]);
        let strategy = DpTimerStrategy::new(Epsilon::new_unchecked(0.5), 30);
        println!(
            "strategy: {} (epsilon = {})",
            strategy.kind(),
            strategy.epsilon().unwrap()
        );
        let mut owner = Owner::new("events", schema, &master, Box::new(strategy));
        let initial: Vec<Row> = (0..10)
            .map(|i| Row::new(vec![Value::Timestamp(0), Value::Int(50 + i)]))
            .collect();
        owner.setup(initial, &engine, &mut rng).expect("setup");
        for t in 1..=240u64 {
            let arrivals: Vec<Row> = if t % 3 == 0 {
                vec![Row::new(vec![
                    Value::Timestamp(t),
                    Value::Int((t % 200) as i64),
                ])]
            } else {
                vec![]
            };
            owner
                .tick(Timestamp(t), &arrivals, &engine, &mut rng)
                .expect("tick");
        }
        let view = engine.adversary_view();
        println!(
            "\nbefore 'crash': {} updates observed, {} ciphertext bytes on disk",
            view.update_pattern().len(),
            view.total_ciphertext_bytes()
        );
        view
        // Engine dropped here: the server process "dies".
    };

    // ---- Second server lifetime: recover from the segments alone. --------
    let backend = backend_config.build().expect("reopen segment log");
    let storage = ServerStorage::with_backend(backend).expect("recover tables");
    let recovered = storage.adversary_view();
    println!(
        "after restart:  {} updates recovered, {} ciphertext bytes readable",
        recovered.update_pattern().len(),
        recovered.total_ciphertext_bytes()
    );
    assert_eq!(recovered.update_pattern(), view_before.update_pattern());
    assert_eq!(
        recovered.total_ciphertext_bytes(),
        view_before.total_ciphertext_bytes()
    );

    let mut stored = 0u64;
    storage
        .scan_table("events", &mut |_ciphertext| stored += 1)
        .expect("events table recovered")
        .expect("segments scan cleanly");
    println!("scanned {stored} ciphertexts back from the log");
    assert_eq!(stored, storage.ciphertext_count("events"));

    println!("\nupdate pattern (time, volume) — identical before and after:");
    for event in recovered.update_events().iter().take(8) {
        println!("  t={:<4} volume={}", event.time, event.volume);
    }
    println!("  ...");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nok: the transcript survived the restart byte-for-byte");
}
