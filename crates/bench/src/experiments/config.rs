//! Shared experiment configuration.
//!
//! The defaults mirror §8 of the paper: privacy budget ε = 0.5, DP-Timer
//! period T = 30, DP-ANT threshold θ = 15, cache flush `f = 2000`, `s = 15`,
//! queries every 360 time units, size samples every 7200, and the June-2020
//! Yellow/Green taxi workload shapes.

use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, OneTimeOutsourcing, StrategyKind,
    SyncStrategy, SynchronizeEveryTime, SynchronizeUponReceipt,
};
use dpsync_dp::Epsilon;
use dpsync_workloads::taxi::{TaxiConfig, TaxiDataset};
use serde::{Deserialize, Serialize};

/// Engine selection now lives next to the engines themselves; the harness
/// re-exports it so experiment code keeps one import path.
pub use dpsync_edb::engines::EngineKind;

/// Which ciphertext-storage backend the server tier runs on.
///
/// The adversary view — and therefore every simulation report — is
/// byte-identical across backends on a fixed seed (pinned by the
/// backend-equivalence suite in `dpsync-core`); the choice only affects
/// durability and ingest cost.  `Disk` runs each simulation against a
/// durable segment log in its own per-run scratch directory (under
/// `DPSYNC_DISK_ROOT` when set, the system temp directory otherwise),
/// removed when the run finishes.  `DiskGroup` is the same log with
/// group-commit sync windows — identical durability guarantees at the
/// acknowledgment boundary, one `fdatasync` amortized across a window of
/// concurrent batches instead of one per batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The in-memory backend (the default).
    #[default]
    Memory,
    /// The durable encrypted segment-log backend, one fsync per batch.
    Disk,
    /// The durable encrypted segment-log backend with group-commit windows.
    DiskGroup,
}

impl BackendKind {
    /// The `--backend` flag spelling.
    pub fn flag_name(self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::Disk => "disk",
            BackendKind::DiskGroup => "disk-group",
        }
    }

    /// Parses a `--backend` flag value.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "memory" => Some(BackendKind::Memory),
            "disk" => Some(BackendKind::Disk),
            "disk-group" => Some(BackendKind::DiskGroup),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.flag_name())
    }
}

/// How the experiment harness reaches the outsourced server.
///
/// `Tcp` runs every protocol over a loopback/network socket against a
/// `dpsync-serve` process (see [`serve_addr`]); with a fixed seed the
/// reports are byte-identical to `Inproc` runs — pinned by the
/// remote-equivalence suite in `dpsync-core` — so the transport is a pure
/// deployment choice, never an experimental variable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// Engine calls are in-process function calls (the default).
    #[default]
    Inproc,
    /// Engine calls travel over TCP to a `dpsync-serve` server.
    Tcp,
}

impl TransportKind {
    /// The `--transport` flag spelling.
    pub fn flag_name(self) -> &'static str {
        match self {
            TransportKind::Inproc => "inproc",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses a `--transport` flag value.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "inproc" => Some(TransportKind::Inproc),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.flag_name())
    }
}

/// The default `dpsync-serve` address `--transport tcp` connects to — a
/// re-export of the one constant `dpsync-serve` itself binds, so
/// `dpsync-serve &` followed by `exp_* --transport tcp` works with no
/// further configuration and the pairing cannot drift.
pub use dpsync_net::DEFAULT_SERVE_ADDR;

/// Process-wide server address override (set from `--addr`, consulted by
/// TCP-transport runs).  Mirrors the `--jobs` pattern in [`crate::pool`]:
/// `ExperimentConfig` stays `Copy`, the address lives here.
static SERVE_ADDR: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

/// Overrides the `dpsync-serve` address for subsequent TCP-transport runs
/// (`--addr HOST:PORT` in the experiment binaries).  `None` restores the
/// default.
pub fn set_serve_addr(addr: Option<String>) {
    *SERVE_ADDR.lock().expect("serve-addr lock") = addr;
}

/// The address TCP-transport runs connect to: the `--addr` override, else
/// the `DPSYNC_SERVE_ADDR` environment variable, else [`DEFAULT_SERVE_ADDR`].
pub fn serve_addr() -> String {
    if let Some(addr) = SERVE_ADDR.lock().expect("serve-addr lock").clone() {
        return addr;
    }
    std::env::var("DPSYNC_SERVE_ADDR").unwrap_or_else(|_| DEFAULT_SERVE_ADDR.to_string())
}

/// A scratch directory that is removed when the guard drops — **including
/// during a panic unwind**, so an aborted run never leaves segment logs (or
/// any other per-run disk state) behind.
///
/// Every per-run disk root in the experiment layer rides behind one of
/// these: hold the guard for as long as anything may touch the directory and
/// let scope exit (normal or unwinding) do the cleanup.  Never pair a bare
/// `create_dir_all` with a trailing `remove_dir_all` — the trailing call is
/// skipped the moment anything in between panics.
#[derive(Debug)]
pub struct ScratchDir {
    path: std::path::PathBuf,
}

impl ScratchDir {
    /// Claims `path` as a scratch directory (the directory itself is created
    /// lazily by whoever writes into it; dropping the guard removes whatever
    /// exists there).
    pub fn claim(path: impl Into<std::path::PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The scratch directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Strategy parameters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyParams {
    /// Privacy budget for the DP strategies.
    pub epsilon: f64,
    /// DP-Timer period `T`.
    pub timer_period: u64,
    /// DP-ANT threshold θ.
    pub ant_threshold: u64,
    /// Cache-flush interval `f`.
    pub flush_interval: u64,
    /// Cache-flush size `s`.
    pub flush_size: u64,
}

impl Default for StrategyParams {
    fn default() -> Self {
        Self {
            epsilon: 0.5,
            timer_period: 30,
            ant_threshold: 15,
            flush_interval: 2000,
            flush_size: 15,
        }
    }
}

impl StrategyParams {
    /// Builds a fresh strategy instance of the given kind.
    pub fn build(&self, kind: StrategyKind) -> Box<dyn SyncStrategy> {
        let flush = Some(CacheFlush::new(self.flush_interval, self.flush_size));
        match kind {
            StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
            StrategyKind::Oto => Box::new(OneTimeOutsourcing::new()),
            StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
            StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
                Epsilon::new_unchecked(self.epsilon),
                self.timer_period,
                flush,
            )),
            StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
                Epsilon::new_unchecked(self.epsilon),
                self.ant_threshold,
                flush,
            )),
        }
    }
}

/// Top-level experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload/horizon scale divisor: 1 is the paper's full month, larger
    /// values shrink both horizon and record counts proportionally (used by
    /// tests and quick smoke runs).
    pub scale: u64,
    /// Master seed.
    pub seed: u64,
    /// Strategy parameters.
    pub params: StrategyParams,
    /// Query interval in time units (paper: 360).
    pub query_interval: u64,
    /// Size-sample interval in time units (paper: 7200).
    pub size_sample_interval: u64,
    /// Which storage backend hosts the server-side ciphertexts.
    pub backend: BackendKind,
    /// How the harness reaches the outsourced server.
    pub transport: TransportKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 1,
            seed: 2021,
            params: StrategyParams::default(),
            query_interval: 360,
            size_sample_interval: 7200,
            backend: BackendKind::Memory,
            transport: TransportKind::Inproc,
        }
    }
}

impl ExperimentConfig {
    /// Parses `--scale N`, `--seed S`, `--jobs J`, `--backend
    /// {memory,disk}`, `--transport {inproc,tcp}` and `--addr HOST:PORT`
    /// from command-line arguments, starting from the defaults.
    ///
    /// `--jobs` configures the experiment worker pool (see [`crate::pool`]):
    /// it caps how many simulations run concurrently, and defaults to the
    /// machine's available parallelism.  Results are byte-identical for every
    /// worker count — and, with a fixed seed, for every `--backend` and
    /// every `--transport`.  `--transport tcp` connects each run to the
    /// `dpsync-serve` process at `--addr` (default [`DEFAULT_SERVE_ADDR`]).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut config = Self::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        config.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        config.seed = v;
                        i += 1;
                    }
                }
                "--jobs" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        crate::pool::set_worker_override(std::num::NonZeroUsize::new(v));
                        i += 1;
                    }
                }
                "--backend" => {
                    if let Some(v) = args
                        .get(i + 1)
                        .map(String::as_str)
                        .and_then(BackendKind::parse)
                    {
                        config.backend = v;
                        i += 1;
                    }
                }
                "--transport" => {
                    if let Some(v) = args
                        .get(i + 1)
                        .map(String::as_str)
                        .and_then(TransportKind::parse)
                    {
                        config.transport = v;
                        i += 1;
                    }
                }
                "--addr" => {
                    if let Some(v) = args.get(i + 1) {
                        set_serve_addr(Some(v.clone()));
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        config.rescale()
    }

    /// Strict argument parsing for the **analytic** experiment binaries
    /// (`exp_table2`, `exp_table4_privacy`): accepts only `--scale N` and
    /// `--seed S`, and rejects everything else with an explanation.
    ///
    /// The analytic tables recompute closed-form bounds (or run in-process
    /// Monte-Carlo trials) — they never build an engine, touch a storage
    /// backend, or contact a server.  [`Self::from_args`] silently ignores
    /// unknown flags, which let invocations like `exp_table2 --transport
    /// tcp` appear to work while doing nothing; here that is a hard error so
    /// a mistyped or misdirected flag cannot go unnoticed.
    pub fn try_from_args_analytic(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut config = Self::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--scale" | "--seed" => {
                    let value = args
                        .get(i + 1)
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| format!("`{flag}` expects an integer value"))?;
                    if flag == "--scale" {
                        config.scale = value;
                    } else {
                        config.seed = value;
                    }
                    i += 1;
                }
                "--transport" | "--backend" | "--addr" | "--jobs" => {
                    return Err(format!(
                        "`{flag}` is not accepted: this is an analytic experiment — it \
                         recomputes closed-form bounds in process and never contacts a \
                         server, so it takes no transport, backend, address or worker \
                         flags (those belong to the simulation binaries; see the README's \
                         per-binary flag table)"
                    ));
                }
                other => {
                    return Err(format!(
                        "unknown argument `{other}` (analytic experiments accept only \
                         --scale and --seed)"
                    ));
                }
            }
            i += 1;
        }
        Ok(config.rescale())
    }

    /// [`Self::try_from_args_analytic`] with CLI ergonomics: `--help` prints
    /// usage and exits 0, a rejected flag prints the explanation to stderr
    /// and exits 2.
    pub fn from_args_analytic(binary: &str, args: impl Iterator<Item = String>) -> Self {
        let args: Vec<String> = args.collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("usage: {binary} [--scale N] [--seed S]");
            std::process::exit(0);
        }
        match Self::try_from_args_analytic(args.into_iter()) {
            Ok(config) => config,
            Err(message) => {
                eprintln!("{binary}: {message}");
                std::process::exit(2);
            }
        }
    }

    /// Applies the scale divisor to the time-dependent intervals so that a
    /// scaled run still poses a comparable number of queries.
    pub fn rescale(mut self) -> Self {
        let scale = self.scale.max(1);
        self.query_interval = (360 / scale).max(10);
        self.size_sample_interval = (7200 / scale).max(50);
        self
    }

    /// The Yellow Cab workload at this scale.
    pub fn yellow_dataset(&self) -> TaxiDataset {
        TaxiDataset::generate(TaxiConfig::scaled_yellow(self.seed, self.scale.max(1)))
    }

    /// The Green Boro workload at this scale.
    pub fn green_dataset(&self) -> TaxiDataset {
        TaxiDataset::generate(TaxiConfig::scaled_green(self.seed + 1, self.scale.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_panicking_run_leaves_no_scratch_directory_behind() {
        let path =
            std::env::temp_dir().join(format!("dpsync-scratch-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let result = std::panic::catch_unwind({
            let path = path.clone();
            move || {
                let scratch = ScratchDir::claim(&path);
                std::fs::create_dir_all(scratch.path()).unwrap();
                std::fs::write(scratch.path().join("seg-000000.dpl"), b"x").unwrap();
                assert!(scratch.path().exists());
                panic!("simulated mid-run failure");
            }
        });
        assert!(result.is_err(), "the run must actually have panicked");
        assert!(
            !path.exists(),
            "unwinding through the guard must remove the scratch directory"
        );
    }

    #[test]
    fn scratch_dir_cleans_up_on_normal_drop_too() {
        let path = std::env::temp_dir().join(format!("dpsync-scratch-drop-{}", std::process::id()));
        let scratch = ScratchDir::claim(&path);
        std::fs::create_dir_all(scratch.path()).unwrap();
        assert_eq!(scratch.path(), path.as_path());
        drop(scratch);
        assert!(!path.exists());
    }

    #[test]
    fn defaults_match_paper_section_8() {
        let p = StrategyParams::default();
        assert_eq!(p.epsilon, 0.5);
        assert_eq!(p.timer_period, 30);
        assert_eq!(p.ant_threshold, 15);
        assert_eq!(p.flush_interval, 2000);
        assert_eq!(p.flush_size, 15);
        let c = ExperimentConfig::default();
        assert_eq!(c.query_interval, 360);
        assert_eq!(c.size_sample_interval, 7200);
        assert_eq!(c.scale, 1);
    }

    #[test]
    fn build_creates_every_strategy_kind() {
        let p = StrategyParams::default();
        for kind in StrategyKind::ALL {
            let s = p.build(kind);
            assert_eq!(s.kind(), kind);
            match kind {
                StrategyKind::DpTimer | StrategyKind::DpAnt => {
                    assert_eq!(s.epsilon().unwrap().value(), 0.5)
                }
                _ => assert!(s.epsilon().is_none()),
            }
        }
    }

    #[test]
    fn arg_parsing_and_rescaling() {
        let c = ExperimentConfig::from_args(
            [
                "--scale",
                "20",
                "--seed",
                "7",
                "--backend",
                "disk",
                "--ignored",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(c.scale, 20);
        assert_eq!(c.seed, 7);
        assert_eq!(c.query_interval, 18);
        assert_eq!(c.size_sample_interval, 360);
        assert_eq!(c.backend, BackendKind::Disk);
        // Missing values fall back to defaults.
        let d = ExperimentConfig::from_args(["--scale"].iter().map(|s| s.to_string()));
        assert_eq!(d.scale, 1);
        assert_eq!(d.backend, BackendKind::Memory);
        // Unknown backend values are ignored, keeping the default.
        let e = ExperimentConfig::from_args(["--backend", "floppy"].iter().map(|s| s.to_string()));
        assert_eq!(e.backend, BackendKind::Memory);
    }

    #[test]
    fn analytic_parsing_accepts_only_scale_and_seed() {
        let c = ExperimentConfig::try_from_args_analytic(
            ["--scale", "20", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        )
        .expect("scale and seed are accepted");
        assert_eq!(c.scale, 20);
        assert_eq!(c.seed, 7);
        assert_eq!(c.query_interval, 18);

        // Transport/backend flags are rejected with an explanation, not
        // silently ignored — the analytic tables never contact a server.
        for flag in ["--transport", "--backend", "--addr", "--jobs"] {
            let err = ExperimentConfig::try_from_args_analytic(
                [flag, "whatever"].iter().map(|s| s.to_string()),
            )
            .expect_err("simulation-only flags must be rejected");
            assert!(
                err.contains("analytic experiment"),
                "rejection for {flag} must explain itself, got: {err}"
            );
        }

        // Unknown flags and missing values are errors too.
        assert!(ExperimentConfig::try_from_args_analytic(
            ["--frobnicate"].iter().map(|s| s.to_string())
        )
        .is_err());
        assert!(ExperimentConfig::try_from_args_analytic(
            ["--scale"].iter().map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn transport_kind_parses_and_renders() {
        assert_eq!(TransportKind::parse("inproc"), Some(TransportKind::Inproc));
        assert_eq!(TransportKind::parse("tcp"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse("smoke-signals"), None);
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::default(), TransportKind::Inproc);
        let c = ExperimentConfig::from_args(["--transport", "tcp"].iter().map(|s| s.to_string()));
        assert_eq!(c.transport, TransportKind::Tcp);
        // Unknown transports keep the default.
        let d = ExperimentConfig::from_args(
            ["--transport", "carrier-pigeon"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(d.transport, TransportKind::Inproc);
    }

    #[test]
    fn serve_addr_resolution_order() {
        // Guarded by the same single-test discipline as the pool override:
        // the address is process-global state.
        set_serve_addr(Some("10.0.0.9:9999".into()));
        assert_eq!(serve_addr(), "10.0.0.9:9999");
        set_serve_addr(None);
        if std::env::var("DPSYNC_SERVE_ADDR").is_err() {
            assert_eq!(serve_addr(), DEFAULT_SERVE_ADDR);
        }
    }

    #[test]
    fn backend_kind_parses_and_renders() {
        assert_eq!(BackendKind::parse("memory"), Some(BackendKind::Memory));
        assert_eq!(BackendKind::parse("disk"), Some(BackendKind::Disk));
        assert_eq!(
            BackendKind::parse("disk-group"),
            Some(BackendKind::DiskGroup)
        );
        assert_eq!(BackendKind::parse("tape"), None);
        assert_eq!(BackendKind::Disk.to_string(), "disk");
        assert_eq!(BackendKind::DiskGroup.to_string(), "disk-group");
        assert_eq!(BackendKind::default(), BackendKind::Memory);
        // Round trip: every kind's flag spelling parses back to itself.
        for kind in [
            BackendKind::Memory,
            BackendKind::Disk,
            BackendKind::DiskGroup,
        ] {
            assert_eq!(BackendKind::parse(kind.flag_name()), Some(kind));
        }
    }

    #[test]
    fn scaled_datasets_shrink_proportionally() {
        let c = ExperimentConfig {
            scale: 40,
            ..Default::default()
        };
        let yellow = c.yellow_dataset();
        let green = c.green_dataset();
        assert_eq!(yellow.len(), 18_429 / 40);
        assert_eq!(green.len(), 21_300 / 40);
        assert_eq!(yellow.horizon(), 43_200 / 40);
    }

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::ObliDb.to_string(), "ObliDB");
        assert_eq!(EngineKind::CryptEpsilon.label(), "Crypt-epsilon");
        assert_eq!(EngineKind::ALL.len(), 2);
    }
}
