//! Index-equivalence suite: encrypted-multimap selection indexes must be
//! invisible in everything DP-Sync's guarantees are stated over.
//!
//! A registered index changes *how* a selective query's answer is assembled
//! (fetching PRF-labelled candidate locators instead of scanning the padded
//! mirror) but must never change the released answers, and — under the
//! planner's [`LeakagePolicy::TranscriptOnly`] policy — must not move the
//! adversary's view by a byte:
//!
//! 1. index maintenance inserts exactly one entry per record of every
//!    DP-padded batch (dummies under an opaque dummy label), so index growth
//!    is a function only of the public Definition-2 volumes `|γ_t|`;
//! 2. under `TranscriptOnly` every read stays a full scan, so the complete
//!    adversary transcript is byte-for-byte that of an index-free run;
//! 3. under `AllowIndexedVolume` an indexed read declares its fetch volume
//!    in the transcript, but the *released answers* (including Crypt-ε's
//!    noisy answers, which perturb the same exact aggregate with the same
//!    caller-RNG draw) still equal the scan path bit for bit, and the
//!    update pattern — what Definition 2 constrains — is unchanged.
//!
//! The cross product covers every engine × {SET, DP-Timer, DP-ANT} ×
//! {memory, group-commit segment log}, and a TCP leg replays the same
//! fixed-seed workload through `RegisterIndex`/`QueryIndexed` wire frames on
//! a loopback reactor (entropy sub-protocol included).

use dpsync_core::metrics::SimulationReport;
use dpsync_core::simulation::{Simulation, SimulationConfig, TableWorkload};
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, StrategyKind, SyncStrategy,
    SynchronizeEveryTime,
};
use dpsync_crypto::MasterKey;
use dpsync_dp::Epsilon;
use dpsync_edb::backend::{BackendConfig, GroupCommitConfig, SegmentLogConfig};
use dpsync_edb::engines::EngineKind;
use dpsync_edb::planner::LeakagePolicy;
use dpsync_edb::query::paper_queries;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::{AdversaryView, DataType, Row, Schema, Value};
use dpsync_net::{BackendRequest, EdbTcpServer, EngineFactory, EngineProvider, RemoteEdb};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(stem: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("dpsync-index-equiv-{}-{stem}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("pick_time", DataType::Timestamp),
        ("pickup_id", DataType::Int),
    ])
}

fn row(t: u64, p: i64) -> Row {
    Row::new(vec![Value::Timestamp(t), Value::Int(p)])
}

/// The same deterministic two-table workload shape as the view- and
/// backend-equivalence suites: bursts, quiet stretches, a join table.
fn workloads(horizon: u64) -> Vec<TableWorkload> {
    let make = |name: &str, offset: u64| TableWorkload {
        table: name.into(),
        schema: schema(),
        initial_rows: (0..8).map(|i| row(0, 40 + offset as i64 + i)).collect(),
        arrivals: (1..=horizon)
            .map(|t| {
                if (t + offset).is_multiple_of(3) {
                    vec![row(t, ((t + offset) % 150) as i64)]
                } else if (t + offset).is_multiple_of(17) {
                    vec![row(t, 60), row(t, 61)]
                } else {
                    vec![]
                }
            })
            .collect(),
        join_time: 0,
        leave_time: None,
    };
    vec![make("yellow", 0), make("green", 5)]
}

fn simulation(horizon: u64, seed: u64, join: bool, policy: Option<LeakagePolicy>) -> Simulation {
    let mut queries = vec![
        ("Q1".into(), paper_queries::q1_range_count("yellow")),
        ("Q2".into(), paper_queries::q2_group_by_count("yellow")),
    ];
    if join {
        queries.push(("Q3".into(), paper_queries::q3_join_count("yellow", "green")));
    }
    let sim = Simulation::new(SimulationConfig {
        query_interval: horizon / 6,
        size_sample_interval: horizon / 3,
        queries,
        seed,
    });
    match policy {
        Some(policy) => sim.with_indexes(policy),
        None => sim,
    }
}

fn strategy_for(kind: StrategyKind) -> Box<dyn SyncStrategy> {
    match kind {
        StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
        StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
            Epsilon::new_unchecked(0.5),
            30,
            Some(CacheFlush::new(300, 15)),
        )),
        StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
            Epsilon::new_unchecked(0.5),
            15,
            Some(CacheFlush::new(300, 15)),
        )),
        other => panic!("not used in this suite: {other:?}"),
    }
}

/// Runs one fixed-seed simulation on the given engine, with the analyst
/// either planning over auto-registered indexes under `policy` or scanning
/// everything; returns the normalized report and the final adversary view.
fn run_on(
    engine: &dyn SecureOutsourcedDatabase,
    kind: StrategyKind,
    horizon: u64,
    seed: u64,
    policy: Option<LeakagePolicy>,
) -> (SimulationReport, AdversaryView) {
    let master = MasterKey::from_bytes([0xC9; 32]);
    let join = matches!(engine.name(), "oblidb");
    let report = simulation(horizon, seed, join, policy)
        .run_parallel(&workloads(horizon), engine, &master, |_| strategy_for(kind))
        .expect("simulation succeeds")
        .normalized();
    (report, engine.adversary_view())
}

/// Asserts the released answers (per-sample L1 errors against a shared
/// ground truth) of two runs are identical.
fn assert_answers_match(scan: &SimulationReport, indexed: &SimulationReport, context: &str) {
    assert_eq!(
        scan.query_samples.len(),
        indexed.query_samples.len(),
        "sample count mismatch for {context}"
    );
    for (s, i) in scan.query_samples.iter().zip(&indexed.query_samples) {
        assert_eq!(
            (s.time, s.query.as_str(), s.l1_error),
            (i.time, i.query.as_str(), i.l1_error),
            "released answer mismatch for {context}"
        );
    }
}

#[test]
fn transcript_only_indexes_match_scans_across_engines_strategies_and_backends() {
    let master = MasterKey::from_bytes([0xC9; 32]);
    for engine_kind in EngineKind::ALL {
        for strategy in [
            StrategyKind::Set,
            StrategyKind::DpTimer,
            StrategyKind::DpAnt,
        ] {
            // The baseline: an index-free run on the in-memory backend.
            let scan_engine = engine_kind.build(&master);
            let (scan_report, scan_view) = run_on(scan_engine.as_ref(), strategy, 360, 7, None);

            // Same workload, same seeds; indexes are registered, backfilled
            // and maintained on every padded batch, but the TranscriptOnly
            // policy keeps every read on the scan plan.
            let index_engine = engine_kind.build(&master);
            let (index_report, index_view) = run_on(
                index_engine.as_ref(),
                strategy,
                360,
                7,
                Some(LeakagePolicy::TranscriptOnly),
            );

            assert_eq!(
                scan_report, index_report,
                "report mismatch for {engine_kind:?}/{strategy:?}"
            );
            // The adversary transcript — what Definition 2 is about — must
            // not move by a byte when indexes are maintained.
            assert_eq!(
                scan_view, index_view,
                "adversary view mismatch for {engine_kind:?}/{strategy:?}"
            );
            assert_eq!(
                format!("{scan_view:?}"),
                format!("{index_view:?}"),
                "debug rendering must also be byte-identical"
            );

            // Indexes on the group-commit segment log: maintenance rides the
            // durable ingest path and still reproduces the memory scans.
            let dir = TempDir::new(&format!("{engine_kind:?}-{strategy:?}"));
            let config =
                SegmentLogConfig::new(&dir.0).with_group_commit(GroupCommitConfig::default());
            let backend = BackendConfig::SegmentLog(config).build().unwrap();
            let disk_engine = engine_kind.build_with_backend(&master, backend).unwrap();
            let (disk_report, disk_view) = run_on(
                disk_engine.as_ref(),
                strategy,
                360,
                7,
                Some(LeakagePolicy::TranscriptOnly),
            );
            assert_eq!(
                scan_report, disk_report,
                "report mismatch on disk-backed indexes for {engine_kind:?}/{strategy:?}"
            );
            assert_eq!(
                scan_view, disk_view,
                "adversary view mismatch on disk-backed indexes for {engine_kind:?}/{strategy:?}"
            );
        }
    }
}

#[test]
fn permissive_indexes_release_identical_answers_with_declared_leakage() {
    let master = MasterKey::from_bytes([0xC9; 32]);
    for engine_kind in EngineKind::ALL {
        for strategy in [StrategyKind::Set, StrategyKind::DpTimer] {
            let scan_engine = engine_kind.build(&master);
            let (scan_report, scan_view) = run_on(scan_engine.as_ref(), strategy, 360, 7, None);

            let index_engine = engine_kind.build(&master);
            let (index_report, index_view) = run_on(
                index_engine.as_ref(),
                strategy,
                360,
                7,
                Some(LeakagePolicy::AllowIndexedVolume),
            );

            // Released answers are pinned bit for bit — for Crypt-ε this
            // includes the noisy answers, because an indexed read perturbs
            // the same exact aggregate with the same caller-RNG draw.
            let context = format!("{engine_kind:?}/{strategy:?}");
            assert_answers_match(&scan_report, &index_report, &context);
            // The update pattern (Definition 2) is independent of the read
            // plan: only query observations may differ, and only by the
            // declared indexed fetch volumes.
            assert_eq!(
                scan_view.update_pattern(),
                index_view.update_pattern(),
                "update pattern mismatch for {context}"
            );
            assert_eq!(
                scan_view.update_events(),
                index_view.update_events(),
                "update events mismatch for {context}"
            );
            assert!(
                index_view.queries().iter().any(|o| o.kind == "index"),
                "at least one read must be served by the index for {context}"
            );
        }
    }
}

#[test]
fn indexes_over_tcp_match_in_process_runs() {
    let master = MasterKey::from_bytes([0xC9; 32]);
    let server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory::default()),
    )
    .expect("loopback server binds");

    for engine_kind in EngineKind::ALL {
        // The index-free in-process baseline every leg must reproduce.
        let scan_engine = engine_kind.build(&master);
        let (scan_report, scan_view) =
            run_on(scan_engine.as_ref(), StrategyKind::DpTimer, 240, 13, None);

        // TranscriptOnly over the wire: `RegisterIndex` frames cross the
        // loopback, reads stay scans, and the whole transcript is pinned.
        let remote_engine = RemoteEdb::connect_engine(
            server.local_addr(),
            engine_kind,
            &master,
            BackendRequest::Memory,
        )
        .expect("session opens");
        let (remote_report, remote_view) = run_on(
            &remote_engine,
            StrategyKind::DpTimer,
            240,
            13,
            Some(LeakagePolicy::TranscriptOnly),
        );
        assert_eq!(
            scan_report, remote_report,
            "report mismatch for remote transcript-only indexes on {engine_kind:?}"
        );
        assert_eq!(
            scan_view, remote_view,
            "adversary view mismatch for remote transcript-only indexes on {engine_kind:?}"
        );

        // Permissive over the wire vs permissive in process: `QueryIndexed`
        // frames (entropy sub-protocol included for Crypt-ε) must land on
        // the exact same report and transcript as the local indexed run.
        let local_engine = engine_kind.build(&master);
        let (local_report, local_view) = run_on(
            local_engine.as_ref(),
            StrategyKind::DpTimer,
            240,
            13,
            Some(LeakagePolicy::AllowIndexedVolume),
        );
        let remote_engine = RemoteEdb::connect_engine(
            server.local_addr(),
            engine_kind,
            &master,
            BackendRequest::Memory,
        )
        .expect("session opens");
        let (remote_report, remote_view) = run_on(
            &remote_engine,
            StrategyKind::DpTimer,
            240,
            13,
            Some(LeakagePolicy::AllowIndexedVolume),
        );
        assert_eq!(
            local_report, remote_report,
            "report mismatch for remote permissive indexes on {engine_kind:?}"
        );
        assert_eq!(
            local_view, remote_view,
            "adversary view mismatch for remote permissive indexes on {engine_kind:?}"
        );
    }
    assert_eq!(server.handler_panics(), 0);
}

#[test]
fn remote_index_registration_and_errors_cross_the_wire() {
    use dpsync_crypto::RecordCryptor;
    use dpsync_dp::DpRng;
    use dpsync_edb::emm::IndexDef;
    use dpsync_edb::engines::base::encrypt_batch;
    use dpsync_edb::sogdb::EdbError;

    let master = MasterKey::from_bytes([0xCA; 32]);
    let server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory::default()),
    )
    .expect("loopback server binds");
    let remote = RemoteEdb::connect_engine(
        server.local_addr(),
        EngineKind::ObliDb,
        &master,
        BackendRequest::Memory,
    )
    .expect("session opens");

    let mut cryptor = RecordCryptor::new(&master);
    let rows: Vec<Row> = (0..30).map(|i| row(i, 40 + i as i64)).collect();
    remote
        .setup("yellow", schema(), encrypt_batch(&mut cryptor, &rows, 4))
        .unwrap();
    let def = IndexDef::new("idx_yellow_pickup_id", "yellow", "pickup_id").unwrap();
    remote.register_index(&def).unwrap();
    // Idempotent re-registration crosses the wire cleanly.
    remote.register_index(&def).unwrap();

    // The indexed answer equals the scan answer bit for bit.
    let q1 = paper_queries::q1_range_count("yellow");
    let mut rng = DpRng::seed_from_u64(5);
    let scanned = remote.query(&q1, &mut rng).unwrap();
    let mut rng = DpRng::seed_from_u64(5);
    let indexed = remote
        .query_indexed("idx_yellow_pickup_id", &q1, &mut rng)
        .unwrap();
    assert_eq!(scanned.answer, indexed.answer);
    assert!(indexed.estimated_seconds < scanned.estimated_seconds);

    // Error surfaces round-trip with their wire tags: an unknown index…
    let mut rng = DpRng::seed_from_u64(6);
    match remote.query_indexed("nope", &q1, &mut rng) {
        Err(EdbError::UnknownIndex(name)) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownIndex, got {other:?}"),
    }
    // …a conflicting re-registration…
    let clash = IndexDef::new("idx_yellow_pickup_id", "yellow", "pick_time").unwrap();
    match remote.register_index(&clash) {
        Err(EdbError::InvalidIndex(_)) => {}
        other => panic!("expected InvalidIndex, got {other:?}"),
    }
    // …and a query the index cannot serve.
    let wrong_table = paper_queries::q1_range_count("green");
    let mut rng = DpRng::seed_from_u64(7);
    match remote.query_indexed("idx_yellow_pickup_id", &wrong_table, &mut rng) {
        Err(EdbError::InvalidIndex(_)) => {}
        other => panic!("expected InvalidIndex, got {other:?}"),
    }
    assert_eq!(server.handler_panics(), 0);
}
