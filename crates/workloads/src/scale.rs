//! The open-loop fleet generator behind `exp_scale`: seed-deterministic
//! workloads for 10^5–10^6 owners.
//!
//! Unlike the taxi replay (one or two tables over a month of ticks), a
//! production-scale fleet is many owners with wildly different activity
//! levels, so this generator models:
//!
//! * **Heavy-tailed per-owner rates** — each owner's mean arrival rate is
//!   the fleet rate scaled by a Pareto(α) draw with mean 1, so a small core
//!   of hot owners carries most of the traffic while the long tail is
//!   almost idle (the regime the sparse-tick scheduler exists for).
//! * **Diurnal bursts** — a raised-cosine day profile (same shape as
//!   [`crate::arrival::ArrivalProcess::Diurnal`]) multiplies every owner's
//!   rate, peaking mid-period.
//! * **Flash crowds** — fleet-wide windows during which every owner's rate
//!   is multiplied by a boost factor, modelling correlated external events.
//! * **Owner churn** — a configurable fraction of owners joins late or
//!   leaves early (`join_time` / `leave_time` on the emitted
//!   [`OwnerWorkload`]s), exercising mid-run `Π_Setup` and abandoned
//!   caches.
//!
//! Arrivals are sampled in **open-loop** fashion — the schedule is fixed
//! up front and independent of how the system keeps up — and in `O(events)`
//! per owner rather than `O(horizon)`: candidate ticks come from a
//! geometric skip under each owner's peak rate, then thinning accepts each
//! candidate with probability `rate(t) / peak` so the per-tick law is an
//! exact Bernoulli at the time-varying rate.  Everything derives from one
//! seed via label-keyed RNG streams, so a profile generates the identical
//! fleet on every machine.

use dpsync_core::sparse::OwnerWorkload;
use dpsync_dp::DpRng;
use dpsync_edb::{DataType, Row, Schema, Value};
use rand::Rng;

/// The schema every generated owner table uses: an event timestamp and an
/// integer reading (the minimal shape Q1/Q2 can run against).
pub fn scale_schema() -> Schema {
    Schema::from_pairs(&[
        ("event_time", DataType::Timestamp),
        ("reading", DataType::Int),
    ])
}

/// A deterministic description of a simulated fleet.
#[derive(Debug, Clone)]
pub struct ScaleProfile {
    /// Number of owners (tables) in the fleet.
    pub owners: usize,
    /// Number of simulated ticks.
    pub horizon: u64,
    /// Master seed; two equal profiles generate identical fleets.
    pub seed: u64,
    /// Fleet-average arrivals per owner per tick (before diurnal/flash
    /// modulation; each owner's own mean is this times a Pareto draw).
    pub mean_rate: f64,
    /// Pareto shape α > 1 for the per-owner rate multiplier (smaller α =
    /// heavier tail; the multiplier always has mean 1).
    pub pareto_alpha: f64,
    /// Fraction of the rate removed at the diurnal trough, in `[0, 1)`:
    /// the day profile multiplies rates by `1 - amplitude` at the trough
    /// and `1` at the peak.
    pub diurnal_amplitude: f64,
    /// Diurnal period in ticks (1440 = one day of one-minute ticks).
    pub diurnal_period: u64,
    /// Number of fleet-wide flash-crowd windows scattered over the run.
    pub flash_crowds: usize,
    /// Width of each flash-crowd window in ticks.
    pub flash_width: u64,
    /// Rate multiplier inside a flash window (≥ 1).
    pub flash_boost: f64,
    /// Fraction of owners subject to churn, in `[0, 1]`: half of them join
    /// late (uniform in the first half of the run), half leave early
    /// (uniform in the second half).
    pub churn_fraction: f64,
    /// Initial rows (`D₀`) per owner, outsourced at setup.
    pub initial_records: usize,
}

impl ScaleProfile {
    /// A fleet profile with defaults sized for `exp_scale`'s full runs:
    /// mostly-idle owners (one arrival every ~500 ticks on average), a
    /// heavy tail, one day of ticks per `horizon = 1440`, mild churn.
    pub fn new(owners: usize, horizon: u64, seed: u64) -> Self {
        Self {
            owners,
            horizon,
            seed,
            mean_rate: 0.002,
            pareto_alpha: 1.5,
            diurnal_amplitude: 0.8,
            diurnal_period: 1440,
            flash_crowds: 2,
            flash_width: 30,
            flash_boost: 8.0,
            churn_fraction: 0.1,
            initial_records: 2,
        }
    }

    /// The fleet-wide flash-crowd windows as inclusive `(start, end)` tick
    /// ranges, derived from the seed alone.
    pub fn flash_windows(&self) -> Vec<(u64, u64)> {
        let root = DpRng::seed_from_u64(self.seed);
        let mut rng = root.derive("scale/flash");
        let mut windows = Vec::with_capacity(self.flash_crowds);
        for _ in 0..self.flash_crowds {
            let latest_start = self.horizon.saturating_sub(self.flash_width).max(1);
            let start = rng.gen_range(1..=latest_start);
            windows.push((start, (start + self.flash_width).min(self.horizon)));
        }
        windows.sort_unstable();
        windows
    }

    /// Expected total arrival events across the fleet (a sizing aid for
    /// harness output; the realized count varies with the seed).
    pub fn expected_events(&self) -> f64 {
        let diurnal_mean = 1.0 - self.diurnal_amplitude * 0.5;
        self.owners as f64 * self.horizon as f64 * self.mean_rate * diurnal_mean
    }

    /// Generates the whole fleet.  `generate()[i]` is owner `i`'s workload;
    /// the output is a pure function of the profile.
    pub fn generate(&self) -> Vec<OwnerWorkload> {
        let flash = self.flash_windows();
        (0..self.owners)
            .map(|i| self.generate_owner(i, &flash))
            .collect()
    }

    /// Generates owner `i`'s workload against the given flash windows
    /// (obtain them from [`ScaleProfile::flash_windows`]; exposed so
    /// callers can parallelize or stream generation owner-by-owner).
    pub fn generate_owner(&self, i: usize, flash: &[(u64, u64)]) -> OwnerWorkload {
        let root = DpRng::seed_from_u64(self.seed);
        let mut rng = root.derive_indexed("scale/owner", i as u64);

        // Heavy-tailed per-owner mean rate: Pareto(α) with x_m chosen so
        // the multiplier has mean 1 (x_m = (α-1)/α).
        let alpha = self.pareto_alpha.max(1.01);
        let x_m = (alpha - 1.0) / alpha;
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let multiplier = x_m / u.powf(1.0 / alpha);
        let rate = self.mean_rate * multiplier;

        // Churn: late join in the first half, early leave in the second.
        let mut join_time = 0u64;
        let mut leave_time = None;
        if self.horizon >= 4 && rng.gen::<f64>() < self.churn_fraction {
            if rng.gen::<bool>() {
                join_time = rng.gen_range(1..=self.horizon / 2);
            } else {
                leave_time = Some(rng.gen_range(self.horizon / 2..self.horizon));
            }
        }

        let initial_rows = (0..self.initial_records)
            .map(|_| row(0, &mut rng))
            .collect();

        // Open-loop arrival sampling in O(events): geometric skips under
        // the owner's peak per-tick probability, thinned to the modulated
        // rate at each candidate tick.
        let peak = (rate * self.flash_boost.max(1.0)).min(0.95);
        let mut arrivals = Vec::new();
        if peak > 0.0 {
            let last = leave_time.unwrap_or(self.horizon).min(self.horizon);
            let mut t = join_time;
            loop {
                // Geometric skip: next candidate under Bernoulli(peak).
                let u: f64 = 1.0 - rng.gen::<f64>();
                let skip = (u.ln() / (1.0 - peak).ln()).floor() as u64;
                t = t.saturating_add(1).saturating_add(skip);
                if t > last {
                    break;
                }
                let modulated =
                    (rate * self.diurnal_factor(t) * flash_factor(flash, t, self.flash_boost))
                        .min(peak);
                if rng.gen::<f64>() < modulated / peak {
                    arrivals.push((t, vec![row(t, &mut rng)]));
                }
            }
        }

        OwnerWorkload {
            table: format!("o{i:06}"),
            schema: scale_schema(),
            initial_rows,
            join_time,
            leave_time,
            arrivals,
        }
    }

    /// The raised-cosine day profile: `1 - amplitude` at the trough
    /// (`t % period == 0`), `1` at the peak (mid-period).
    fn diurnal_factor(&self, t: u64) -> f64 {
        if self.diurnal_amplitude <= 0.0 || self.diurnal_period == 0 {
            return 1.0;
        }
        let phase = (t % self.diurnal_period) as f64 / self.diurnal_period as f64;
        1.0 - self.diurnal_amplitude * (0.5 + 0.5 * (2.0 * std::f64::consts::PI * phase).cos())
    }
}

fn flash_factor(windows: &[(u64, u64)], t: u64, boost: f64) -> f64 {
    if windows
        .iter()
        .any(|(start, end)| (*start..=*end).contains(&t))
    {
        boost.max(1.0)
    } else {
        1.0
    }
}

fn row(t: u64, rng: &mut DpRng) -> Row {
    Row::new(vec![
        Value::Timestamp(t),
        Value::Int(i64::from(rng.gen_range(0i32..1000))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ScaleProfile {
        ScaleProfile::new(400, 1440, 2021)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = profile().generate();
        let b = profile().generate();
        assert_eq!(a.len(), 400);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.table, wb.table);
            assert_eq!(wa.join_time, wb.join_time);
            assert_eq!(wa.leave_time, wb.leave_time);
            assert_eq!(wa.arrivals, wb.arrivals);
            assert_eq!(wa.initial_rows, wb.initial_rows);
        }
        let mut other = profile();
        other.seed = 2022;
        let c = other.generate();
        assert!(a.iter().zip(&c).any(|(wa, wc)| wa.arrivals != wc.arrivals));
    }

    #[test]
    fn rates_are_heavy_tailed() {
        let fleet = profile().generate();
        let mut counts: Vec<usize> = fleet.iter().map(|w| w.arrivals.len()).collect();
        counts.sort_unstable();
        let total: usize = counts.iter().sum();
        // The busiest 10% of owners must carry well more than 10% of events.
        let top_decile: usize = counts[counts.len() * 9 / 10..].iter().sum();
        assert!(
            top_decile * 100 > total * 25,
            "top decile {top_decile} of {total}"
        );
    }

    #[test]
    fn arrivals_respect_active_windows_and_ordering() {
        let fleet = profile().generate();
        let mut churned = 0;
        for w in &fleet {
            let mut prev = 0u64;
            for (t, rows) in &w.arrivals {
                assert!(*t > prev, "non-increasing arrival time in {}", w.table);
                assert!(w.active_at(*t), "arrival outside window in {}", w.table);
                assert!(!rows.is_empty());
                prev = *t;
            }
            if w.join_time > 0 || w.leave_time.is_some() {
                churned += 1;
            }
        }
        // ~10% of 400 owners; generous band.
        assert!((15..=75).contains(&churned), "churned {churned}");
    }

    #[test]
    fn diurnal_profile_shapes_fleet_traffic() {
        let mut p = profile();
        p.owners = 2000;
        p.mean_rate = 0.01;
        p.flash_crowds = 0;
        p.churn_fraction = 0.0;
        let fleet = p.generate();
        // Aggregate arrivals near the trough (phase ≈ 0) vs the peak (≈ 0.5).
        let (mut trough, mut peak) = (0usize, 0usize);
        for w in &fleet {
            for (t, _) in &w.arrivals {
                let phase = (*t % p.diurnal_period) as f64 / p.diurnal_period as f64;
                if !(0.1..=0.9).contains(&phase) {
                    trough += 1;
                } else if (0.35..=0.65).contains(&phase) {
                    peak += 1;
                }
            }
        }
        assert!(peak > trough * 2, "peak {peak} trough {trough}");
    }

    #[test]
    fn flash_crowds_spike_fleet_traffic() {
        let mut p = profile();
        p.owners = 2000;
        p.mean_rate = 0.005;
        p.diurnal_amplitude = 0.0;
        p.churn_fraction = 0.0;
        let windows = p.flash_windows();
        assert_eq!(windows.len(), p.flash_crowds);
        let fleet = p.generate();
        let in_flash_ticks: u64 = windows.iter().map(|(s, e)| e - s + 1).sum();
        let (mut inside, mut outside) = (0u64, 0u64);
        for w in &fleet {
            for (t, _) in &w.arrivals {
                if windows.iter().any(|(s, e)| (*s..=*e).contains(t)) {
                    inside += 1;
                } else {
                    outside += 1;
                }
            }
        }
        let inside_rate = inside as f64 / in_flash_ticks as f64;
        let outside_rate = outside as f64 / (p.horizon - in_flash_ticks) as f64;
        assert!(
            inside_rate > outside_rate * 3.0,
            "inside {inside_rate:.2}/tick outside {outside_rate:.2}/tick"
        );
    }

    #[test]
    fn expected_events_is_a_reasonable_sizing_estimate() {
        let mut p = profile();
        p.owners = 5000;
        p.flash_crowds = 0;
        p.churn_fraction = 0.0;
        let fleet = p.generate();
        let realized: usize = fleet.iter().map(|w| w.arrivals.len()).sum();
        let expected = p.expected_events();
        assert!(
            (realized as f64) > expected * 0.5 && (realized as f64) < expected * 2.0,
            "realized {realized} vs expected {expected:.0}"
        );
    }
}
