//! Round-trip and indistinguishability tests for record encryption, exercised
//! through the facade crate.

use dp_sync::crypto::{
    EncryptedRecord, MasterKey, RecordCryptor, RecordPlaintext, RECORD_PAYLOAD_LEN,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encrypt → serialize → parse → decrypt is the identity for every payload
    /// that fits, real or dummy, under any key.
    #[test]
    fn encrypt_decrypt_identity_through_serialization(
        payload in prop::collection::vec(any::<u8>(), 0..=RECORD_PAYLOAD_LEN),
        key in any::<[u8; 32]>(),
        dummy in any::<bool>(),
    ) {
        let master = MasterKey::from_bytes(key);
        let mut cryptor = RecordCryptor::new(&master);
        let plaintext = if dummy {
            RecordPlaintext::dummy()
        } else {
            RecordPlaintext::real(payload)
        };
        let ciphertext = cryptor.encrypt(&plaintext).unwrap();
        let parsed = EncryptedRecord::from_bytes(&ciphertext.to_bytes()).unwrap();
        prop_assert_eq!(parsed, ciphertext.clone());
        prop_assert_eq!(cryptor.decrypt(&ciphertext).unwrap(), plaintext);
    }

    /// Dummy records are length-indistinguishable from real ones: every
    /// ciphertext is exactly `TOTAL_LEN` bytes regardless of payload size or
    /// the dummy flag, so the server learns nothing from sizes.
    #[test]
    fn dummies_are_length_indistinguishable_from_real_records(
        payload_len in 0usize..=RECORD_PAYLOAD_LEN,
        key in any::<[u8; 32]>(),
    ) {
        let master = MasterKey::from_bytes(key);
        let mut cryptor = RecordCryptor::new(&master);
        let real = cryptor
            .encrypt(&RecordPlaintext::real(vec![0xAB; payload_len]))
            .unwrap();
        let dummy = cryptor.encrypt_dummy().unwrap();
        prop_assert_eq!(real.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        prop_assert_eq!(dummy.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        // The dummy flag must live inside the ciphertext body, never in the
        // clear: the two serializations differ only in opaque bytes, and the
        // flag round-trips through decryption alone.
        prop_assert!(cryptor.decrypt(&dummy).unwrap().is_dummy);
        prop_assert!(!cryptor.decrypt(&real).unwrap().is_dummy);
    }
}

/// A mixed batch of real and dummy records is uniform in length on the wire,
/// and decryption recovers exactly which were dummies (owner-side knowledge).
#[test]
fn mixed_batches_classify_correctly_after_roundtrip() {
    let master = MasterKey::from_bytes([42u8; 32]);
    let mut cryptor = RecordCryptor::new(&master);
    let mut wire = Vec::new();
    for i in 0..100u64 {
        let record = if i % 3 == 0 {
            RecordPlaintext::dummy()
        } else {
            RecordPlaintext::real(i.to_le_bytes().to_vec())
        };
        wire.push(cryptor.encrypt(&record).unwrap().to_bytes());
    }
    assert!(wire.iter().all(|c| c.len() == EncryptedRecord::TOTAL_LEN));
    let dummies = wire
        .iter()
        .map(|c| EncryptedRecord::from_bytes(c).unwrap())
        .filter(|c| cryptor.decrypt(c).unwrap().is_dummy)
        .count();
    assert_eq!(dummies, 34);
}
