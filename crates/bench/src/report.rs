//! Plain-text rendering of experiment results.
//!
//! Experiment binaries print two kinds of artifacts:
//!
//! * aligned text **tables** (for Table 2/3/5-style results), and
//! * CSV **series** (for figure-style time series and sweeps) that can be
//!   piped into any plotting tool.
//!
//! Both renderers are dependency-free and deterministic, so EXPERIMENTS.md
//! can embed their output verbatim.

use std::fmt::Write as _;

/// An aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                let _ = write!(out, "{}{}  ", cell, " ".repeat(pad));
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// A named CSV series block (one header line, then one line per point).
#[derive(Debug, Clone)]
pub struct CsvSeries {
    title: String,
    columns: Vec<String>,
    points: Vec<Vec<f64>>,
}

impl CsvSeries {
    /// Creates a series with a title and column names.
    pub fn new<S: Into<String>, I, C>(title: S, columns: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<String>,
    {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            points: Vec::new(),
        }
    }

    /// Appends one data point.
    pub fn push(&mut self, point: Vec<f64>) {
        self.points.push(point);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the series block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.columns.join(","));
        for point in &self.points {
            let line: Vec<String> = point.iter().map(|v| format_number(*v)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }
}

/// Formats a number compactly (integers without a fraction, floats with up to
/// four significant decimals).
pub fn format_number(v: f64) -> String {
    if !v.is_finite() {
        return v.to_string();
    }
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Formats seconds with three decimals.
pub fn format_seconds(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats bytes as megabytes with two decimals.
pub fn format_mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["Strategy", "Mean L1", "QET"]);
        t.add_row(["DP-Timer", "9.25", "2.46"]);
        t.add_row(["SET", "0"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Strategy"));
        assert!(lines[1].starts_with('-'));
        // Columns line up: "Mean L1" starts at the same offset in every row.
        let offset = lines[0].find("Mean L1").unwrap();
        assert_eq!(lines[2].find("9.25").unwrap(), offset);
    }

    #[test]
    fn series_renders_csv() {
        let mut s = CsvSeries::new("Figure 5a", ["epsilon", "dp_timer", "dp_ant"]);
        s.push(vec![0.1, 12.0, 3.5]);
        s.push(vec![1.0, 4.0, 6.25]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let rendered = s.render();
        assert!(rendered.starts_with("# Figure 5a\n"));
        assert!(rendered.contains("epsilon,dp_timer,dp_ant"));
        assert!(rendered.contains("0.1000,12,3.5000"));
        assert!(rendered.contains("1,4,6.2500"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(5.25), "5.2500");
        assert_eq!(format_number(f64::INFINITY), "inf");
        assert_eq!(format_seconds(1.23456), "1.235");
        assert_eq!(format_mb(2_500_000), "2.50");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.add_row(["x"]);
        let rendered = t.render();
        assert!(rendered.lines().count() >= 3);
    }
}
