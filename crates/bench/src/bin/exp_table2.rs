//! Regenerates Table 2: the analytic comparison of synchronization strategies
//! (privacy guarantee, logical-gap bound, total-outsourced-records bound),
//! evaluated at the end of the paper's month-long horizon with the default
//! parameters (ε = 0.5, T = 30, θ = 15, f = 2000, s = 15, β = 0.05).
//!
//! Usage: `cargo run --release -p dpsync-bench --bin exp_table2 [--scale N] [--seed S]`
//!
//! This is an **analytic** experiment: it evaluates closed-form bounds and
//! never builds an engine or contacts a server, so it accepts no
//! `--transport`/`--backend` flags — passing one is an error, not a no-op.

use dpsync_bench::experiments::tables::table2_text;
use dpsync_bench::ExperimentConfig;

fn main() {
    let config = ExperimentConfig::from_args_analytic("exp_table2", std::env::args().skip(1));
    println!("Table 2 — comparison of synchronization strategies");
    println!(
        "(epsilon = {}, T = {}, theta = {}, flush f = {}, s = {}, beta = 0.05, horizon = {} minutes)\n",
        config.params.epsilon,
        config.params.timer_period,
        config.params.ant_threshold,
        config.params.flush_interval,
        config.params.flush_size,
        43_200 / config.scale.max(1)
    );
    print!("{}", table2_text(&config).render());
}
