//! [`MuxConnection`]: many logical owner sessions over one socket.
//!
//! The frame header carries a session id, and the reactor server keeps
//! per-session state — so one TCP connection can host any number of
//! independent [`SecureOutsourcedDatabase`] sessions.  This is how the
//! C10k experiment models thousands of owners without thousands of client
//! threads: a handful of sockets, each multiplexing hundreds of sessions.
//!
//! * [`MuxConnection::connect`] dials the server and spawns one reader
//!   thread that demultiplexes inbound frames by session id.
//! * [`MuxConnection::open`] performs the hello handshake on a fresh
//!   session id and returns a [`MuxSession`] — a full
//!   [`SecureOutsourcedDatabase`] that drops in anywhere [`crate::RemoteEdb`]
//!   does.
//!
//! Each session serializes its own request/response exchanges (the wire
//! protocol has one outstanding request per session), but different
//! sessions on the same socket proceed concurrently: their frames
//! interleave on the wire and the server runs them in parallel on its
//! worker pool.  Error mapping follows [`crate::client`]: transport
//! failures become [`EdbError::Storage`] /
//! [`dpsync_edb::StorageError::Io`] with the peer address as the path.

use crate::client::{client_timeout, intern_name, transport_error};
use crate::frame::{encode_frame_mux_into, read_frame_mux, FrameError, MAX_FRAME_LEN};
use crate::wire::{BackendRequest, EntropyDraw, Request, Response, SessionRequest};
use dpsync_crypto::{EncryptedRecord, MasterKey};
use dpsync_edb::cost::CostModel;
use dpsync_edb::emm::IndexDef;
use dpsync_edb::engines::EngineKind;
use dpsync_edb::leakage::LeakageProfile;
use dpsync_edb::sogdb::{QueryOutcome, SecureOutsourcedDatabase, TableStats};
use dpsync_edb::views::ViewDef;
use dpsync_edb::{AdversaryView, EdbError, Query, Schema};
use parking_lot::Mutex;
use rand::RngCore;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Weak};
use std::time::Duration;

/// State shared between the connection handle, its sessions and the reader
/// thread.
struct MuxShared {
    writer: Mutex<WriteState>,
    /// Inbound routing: session id → channel to whoever waits on it.
    routes: Mutex<HashMap<u32, mpsc::Sender<Vec<u8>>>>,
    /// Why the connection died, set once by the reader thread.
    dead: Mutex<Option<String>>,
    peer: String,
    next_session: AtomicU32,
    /// Per-exchange wait bound (`None` waits forever).
    timeout: Option<Duration>,
}

struct WriteState {
    stream: TcpStream,
    /// Reusable frame-encoding buffer; frames are written atomically under
    /// the writer lock so concurrent sessions never interleave mid-frame.
    buf: Vec<u8>,
}

impl MuxShared {
    fn transport_error(&self, message: impl std::fmt::Display) -> EdbError {
        transport_error(&self.peer, message)
    }

    /// The death reason if the reader thread has given up, as an error.
    fn death(&self) -> EdbError {
        let reason = self
            .dead
            .lock()
            .clone()
            .unwrap_or_else(|| "connection closed".to_string());
        self.transport_error(reason)
    }

    fn send_frame(&self, session: u32, payload: &[u8]) -> Result<(), EdbError> {
        let mut writer = self.writer.lock();
        let writer = &mut *writer;
        writer.buf.clear();
        encode_frame_mux_into(session, payload, &mut writer.buf);
        writer
            .stream
            .write_all(&writer.buf)
            .map_err(|e| self.transport_error(e))
    }
}

impl Drop for MuxShared {
    fn drop(&mut self) {
        // Unblock the reader thread; it exits on the resulting EOF/error.
        // The reader holds only a `Weak` to this state (an `Arc` would keep
        // it alive past the last user handle, so this `Drop` — and with it
        // the shutdown that unblocks the reader — could never run, leaking
        // the thread and the socket for the life of the process).
        let _ = self.writer.get_mut().stream.shutdown(Shutdown::Both);
    }
}

/// Demultiplexes inbound frames to their sessions until the stream dies,
/// then fails every waiter with the reason.  Exits as soon as the last
/// user handle is gone: the `MuxShared` drop shuts the socket down, which
/// fails the blocking read.
fn reader_loop(mut stream: TcpStream, shared: Weak<MuxShared>) {
    let reason = loop {
        match read_frame_mux(&mut stream) {
            Ok((session, payload)) => {
                let Some(shared) = shared.upgrade() else {
                    return; // every connection and session handle is gone
                };
                // An unroutable frame (session already dropped, or a
                // courtesy error on the default session) has no waiter;
                // dropping it is the only sound option.
                let routes = shared.routes.lock();
                if let Some(tx) = routes.get(&session) {
                    let _ = tx.send(payload);
                }
            }
            Err(FrameError::Closed) => break "server closed the connection".to_string(),
            Err(e) => break e.to_string(),
        }
    };
    let Some(shared) = shared.upgrade() else {
        return; // shut down by the last handle's drop: nobody is waiting
    };
    *shared.dead.lock() = Some(reason);
    // Dropping every sender wakes blocked receivers with `Disconnected`.
    shared.routes.lock().clear();
}

/// One TCP connection hosting many logical sessions.
///
/// Dropping the connection handle does *not* tear the socket down — the
/// socket lives until the last [`MuxSession`] is gone, so the handle can be
/// discarded once every session is open.  Once the last session *and* the
/// handle are dropped, the socket is shut down and the reader thread
/// exits.
pub struct MuxConnection {
    shared: Arc<MuxShared>,
}

impl MuxConnection {
    /// Dials a server with the [`client_timeout`] exchange timeout.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, EdbError> {
        Self::connect_with_timeout(addr, client_timeout())
    }

    /// As [`MuxConnection::connect`] with an explicit per-exchange wait
    /// bound (`None` waits indefinitely).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        timeout: Option<Duration>,
    ) -> Result<Self, EdbError> {
        let peer_label = format!("{addr:?}").trim_matches('"').to_string();
        let stream = TcpStream::connect(&addr).map_err(|e| transport_error(&peer_label, e))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or(peer_label);
        stream
            .set_nodelay(true)
            .map_err(|e| transport_error(&peer, e))?;
        let read_half = stream.try_clone().map_err(|e| transport_error(&peer, e))?;
        let shared = Arc::new(MuxShared {
            writer: Mutex::new(WriteState {
                stream,
                buf: Vec::new(),
            }),
            routes: Mutex::new(HashMap::new()),
            dead: Mutex::new(None),
            peer,
            next_session: AtomicU32::new(1),
            timeout,
        });
        let reader_shared = Arc::downgrade(&shared);
        std::thread::Builder::new()
            .name("dpsync-net-mux-reader".into())
            .spawn(move || reader_loop(read_half, reader_shared))
            .map_err(|e| shared.transport_error(e))?;
        Ok(Self { shared })
    }

    /// The peer address this connection is bound to.
    pub fn peer(&self) -> &str {
        &self.shared.peer
    }

    /// Opens a fresh logical session: allocates a session id, performs the
    /// hello handshake and returns the session as a full SOGDB.
    pub fn open(&self, hello: SessionRequest) -> Result<MuxSession, EdbError> {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.shared.routes.lock().insert(id, tx);
        let mut session = MuxSession {
            shared: Arc::clone(&self.shared),
            id,
            exchange: Mutex::new(rx),
            name: "remote",
            profile: LeakageProfile {
                class: dpsync_edb::LeakageClass::L2RevealAccessPattern,
                update_leaks_beyond_pattern: true,
                native_dummy_support: false,
            },
            cost: CostModel::oblidb(),
        };
        match session.call(Request::Hello(hello), None)? {
            Response::EngineInfo {
                name,
                profile,
                cost,
            } => {
                session.name = intern_name(&name);
                session.profile = profile;
                session.cost = cost;
                Ok(session)
            }
            Response::Protocol(message) => Err(self
                .shared
                .transport_error(format!("server rejected the session: {message}"))),
            other => Err(self
                .shared
                .transport_error(format!("unexpected response: {other:?}"))),
        }
    }

    /// Opens a session on a shared-mode server's engine.
    pub fn open_shared(&self) -> Result<MuxSession, EdbError> {
        self.open(SessionRequest::Shared)
    }

    /// Opens a session asking a factory-mode server for a fresh engine.
    pub fn open_engine(
        &self,
        engine: EngineKind,
        master: &MasterKey,
        backend: BackendRequest,
    ) -> Result<MuxSession, EdbError> {
        self.open(SessionRequest::NewEngine {
            engine,
            master_key: *master.bytes(),
            backend,
        })
    }
}

/// One logical owner session on a [`MuxConnection`].
///
/// A full [`SecureOutsourcedDatabase`]: drops in anywhere
/// [`crate::RemoteEdb`] does, while sharing its socket with every other
/// session on the connection.
pub struct MuxSession {
    shared: Arc<MuxShared>,
    id: u32,
    /// The inbound frame channel, locked across a whole request/response
    /// exchange so concurrent callers serialize per session (the wire
    /// protocol has one outstanding request per session by construction).
    exchange: Mutex<mpsc::Receiver<Vec<u8>>>,
    name: &'static str,
    profile: LeakageProfile,
    cost: CostModel,
}

impl Drop for MuxSession {
    fn drop(&mut self) {
        self.shared.routes.lock().remove(&self.id);
    }
}

impl MuxSession {
    /// The session id carried in this session's frames.
    pub fn session_id(&self) -> u32 {
        self.id
    }

    fn recv(&self, rx: &mpsc::Receiver<Vec<u8>>) -> Result<Vec<u8>, EdbError> {
        match self.shared.timeout {
            Some(timeout) => rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => self
                    .shared
                    .transport_error("timed out waiting for the server"),
                mpsc::RecvTimeoutError::Disconnected => self.shared.death(),
            }),
            None => rx.recv().map_err(|_| self.shared.death()),
        }
    }

    /// Sends one request and reads its response, answering any interleaved
    /// entropy requests from `rng` (only `Π_Query` produces them).
    fn call(
        &self,
        request: Request,
        mut rng: Option<&mut dyn RngCore>,
    ) -> Result<Response, EdbError> {
        let rx = self.exchange.lock();
        self.shared.send_frame(self.id, &request.encode())?;
        loop {
            let payload = self.recv(&rx)?;
            let response =
                Response::decode(&payload).map_err(|e| self.shared.transport_error(e))?;
            let Response::EntropyRequest(draw) = response else {
                return Ok(response);
            };
            let Some(rng) = rng.as_deref_mut() else {
                return Err(self
                    .shared
                    .transport_error("server requested entropy outside a query"));
            };
            let bytes = match draw {
                EntropyDraw::U32 => rng.next_u32().to_le_bytes().to_vec(),
                EntropyDraw::U64 => rng.next_u64().to_le_bytes().to_vec(),
                EntropyDraw::Fill(n) => {
                    // Cap defensively so a compromised server cannot demand
                    // unbounded memory.
                    if n as usize > MAX_FRAME_LEN / 2 {
                        return Err(self.shared.transport_error("oversized entropy request"));
                    }
                    let mut buf = vec![0u8; n as usize];
                    rng.fill_bytes(&mut buf);
                    buf
                }
            };
            self.shared
                .send_frame(self.id, &Request::EntropyReply(bytes).encode())?;
        }
    }

    fn io_failed(&self, message: impl std::fmt::Display) -> EdbError {
        self.shared.transport_error(message)
    }

    fn unexpected(&self, response: Response) -> EdbError {
        self.io_failed(format!("unexpected response: {response:?}"))
    }

    fn expect_ok(&self, response: Response) -> Result<(), EdbError> {
        match response {
            Response::Ok => Ok(()),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }
}

impl SecureOutsourcedDatabase for MuxSession {
    fn name(&self) -> &'static str {
        self.name
    }

    fn leakage_profile(&self) -> LeakageProfile {
        self.profile.clone()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        let response = self.call(
            Request::Setup {
                table: table.to_string(),
                schema,
                records,
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn update(
        &self,
        table: &str,
        time: u64,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        let response = self.call(
            Request::Update {
                table: table.to_string(),
                time,
                records,
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn query(&self, query: &Query, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        match self.call(Request::Query(query.clone()), Some(rng))? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }

    fn supports(&self, query: &Query) -> bool {
        match self.call(Request::Supports(query.clone()), None) {
            Ok(Response::Supported(supported)) => supported,
            Ok(other) => panic!(
                "mux session {} at {}: unexpected response to supports: {other:?}",
                self.id, self.shared.peer
            ),
            Err(e) => panic!(
                "mux session {} at {}: supports failed: {e}",
                self.id, self.shared.peer
            ),
        }
    }

    fn table_stats(&self, table: &str) -> TableStats {
        match self.call(Request::TableStats(table.to_string()), None) {
            Ok(Response::Stats(stats)) => stats,
            Ok(other) => panic!(
                "mux session {} at {}: unexpected response to table_stats: {other:?}",
                self.id, self.shared.peer
            ),
            Err(e) => panic!(
                "mux session {} at {}: table_stats failed: {e}",
                self.id, self.shared.peer
            ),
        }
    }

    fn adversary_view(&self) -> AdversaryView {
        match self.call(Request::AdversaryView, None) {
            Ok(Response::View(view)) => view,
            Ok(other) => panic!(
                "mux session {} at {}: unexpected response to adversary_view: {other:?}",
                self.id, self.shared.peer
            ),
            Err(e) => panic!(
                "mux session {} at {}: adversary_view failed: {e}",
                self.id, self.shared.peer
            ),
        }
    }

    fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        let response = self.call(
            Request::RegisterView {
                name: def.name().to_string(),
                query: def.query().clone(),
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn query_view(&self, name: &str, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        match self.call(Request::QueryView(name.to_string()), Some(rng))? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }

    fn register_index(&self, def: &IndexDef) -> Result<(), EdbError> {
        let response = self.call(
            Request::RegisterIndex {
                name: def.name().to_string(),
                table: def.table().to_string(),
                column: def.column().to_string(),
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn query_indexed(
        &self,
        name: &str,
        query: &Query,
        rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, EdbError> {
        match self.call(
            Request::QueryIndexed {
                name: name.to_string(),
                query: query.clone(),
            },
            Some(rng),
        )? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{EdbTcpServer, EngineFactory, EngineProvider};
    use dpsync_crypto::RecordCryptor;
    use dpsync_edb::engines::base::encrypt_batch;
    use dpsync_edb::schema::DataType;
    use dpsync_edb::{Row, Value};

    fn records(master: &MasterKey, n: usize) -> Vec<EncryptedRecord> {
        let mut cryptor = RecordCryptor::new(master);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64)]))
            .collect();
        encrypt_batch(&mut cryptor, &rows, 0)
    }

    #[test]
    fn many_isolated_sessions_share_one_socket() {
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory::default()),
        )
        .unwrap();
        let conn = MuxConnection::connect(server.local_addr()).unwrap();

        // Eight independent engines behind one socket; every session owns a
        // table with the *same name*, which only works if sessions are
        // actually isolated.
        let masters: Vec<MasterKey> = (0..8u8).map(|i| MasterKey::from_bytes([i; 32])).collect();
        let sessions: Vec<MuxSession> = masters
            .iter()
            .map(|m| {
                conn.open_engine(EngineKind::ObliDb, m, BackendRequest::Memory)
                    .unwrap()
            })
            .collect();
        assert_eq!(sessions.len(), 8);
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(s.session_id(), i as u32 + 1);
            s.setup(
                "t",
                dpsync_edb::Schema::from_pairs(&[("a", DataType::Int)]),
                records(&masters[i], 2),
            )
            .unwrap();
        }

        // Concurrent updates from one thread per session interleave on the
        // shared socket without crosstalk.
        std::thread::scope(|scope| {
            for (i, s) in sessions.iter().enumerate() {
                let master = &masters[i];
                scope.spawn(move || {
                    for t in 1..=5u64 {
                        s.update("t", t, records(master, 1)).unwrap();
                    }
                });
            }
        });
        for s in &sessions {
            let view = s.adversary_view();
            // The initial batch at t=0 plus the five timed updates.
            assert_eq!(view.update_events().len(), 6);
            let stats = s.table_stats("t");
            assert_eq!(stats.ciphertext_count, 7);
        }
        assert_eq!(server.handler_panics(), 0);
    }

    /// Regression: the reader thread must hold only a weak reference to the
    /// shared state.  With a strong one, dropping every user handle never
    /// ran `MuxShared::drop`, so the socket was never shut down, the reader
    /// never unblocked, and one thread + fd leaked per dialed connection —
    /// observable here as the server never seeing the connection close.
    #[test]
    fn dropping_the_last_handle_tears_the_connection_down() {
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory::default()),
        )
        .unwrap();
        let conn = MuxConnection::connect(server.local_addr()).unwrap();
        let master = MasterKey::from_bytes([5u8; 32]);
        let session = conn
            .open_engine(EngineKind::ObliDb, &master, BackendRequest::Memory)
            .unwrap();
        assert_eq!(server.stats().current_connections(), 1);

        drop(conn);
        drop(session);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.stats().current_connections() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "dropping every handle left the connection (and its reader thread) alive"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    /// One connection cannot accumulate unbounded session state: Hellos on
    /// fresh session ids past the cap are rejected without allocating,
    /// existing sessions keep working, and other connections are unaffected.
    #[test]
    fn sessions_per_connection_are_capped() {
        use crate::reactor::MAX_SESSIONS_PER_CONN;
        use dpsync_edb::engines::ObliDbEngine;
        use dpsync_edb::Query;

        let master = MasterKey::from_bytes([6u8; 32]);
        let engine: Arc<ObliDbEngine> = Arc::new(ObliDbEngine::new(&master));
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Shared(engine as Arc<dyn SecureOutsourcedDatabase>),
        )
        .unwrap();
        let conn = MuxConnection::connect(server.local_addr()).unwrap();

        let sessions: Vec<MuxSession> = (0..MAX_SESSIONS_PER_CONN)
            .map(|_| conn.open_shared().unwrap())
            .collect();
        let err = match conn.open_shared() {
            Ok(_) => panic!("opened a session past the cap"),
            Err(e) => e,
        };
        assert!(
            format!("{err}").contains("session limit"),
            "expected a session-limit rejection, got: {err}"
        );

        // The rejection is per-Hello, not a connection fault: every
        // existing session still serves requests...
        let probe = Query::Count {
            table: "t".to_string(),
            predicate: None,
        };
        assert!(sessions.first().unwrap().supports(&probe));
        assert!(sessions.last().unwrap().supports(&probe));
        // ...and the cap is per-connection, not global.
        let other = MuxConnection::connect(server.local_addr()).unwrap();
        assert!(other.open_shared().unwrap().supports(&probe));
        assert_eq!(server.handler_panics(), 0);
    }

    #[test]
    fn a_dead_server_fails_every_session_with_the_reason() {
        let mut server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory::default()),
        )
        .unwrap();
        let conn = MuxConnection::connect(server.local_addr()).unwrap();
        let master = MasterKey::from_bytes([9u8; 32]);
        let session = conn
            .open_engine(EngineKind::ObliDb, &master, BackendRequest::Memory)
            .unwrap();
        server.shutdown();
        let err = session
            .setup(
                "t",
                dpsync_edb::Schema::from_pairs(&[("a", DataType::Int)]),
                Vec::new(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EdbError::Storage(dpsync_edb::StorageError::Io { .. })
        ));
    }
}
