//! Incremental materialized views: O(Δ) maintenance for recurring analytics.
//!
//! DP-Sync's analyst workload is *recurring* — the paper's Q1 range count and
//! Q2 group-by are re-posed every sync epoch — yet a plain `Π_Query` rescans
//! the whole decrypted mirror, O(total records) per query.  Following the
//! IncShrink direction (incremental view maintenance at `Π_Update` time), a
//! [`ViewDef`] registers a supported query shape once and a
//! [`MaterializedView`] keeps its aggregate state up to date *inside the
//! ingest path*: each decrypted `Π_Update` batch is applied as a delta, so a
//! view read is O(result size) no matter how large the table has grown.
//!
//! # Privacy: maintenance adds no leakage
//!
//! The maintenance access pattern is data-independent in the sense Adore
//! argues for: **every record of the DP-padded batch is touched exactly
//! once** per registered view — dummies apply as explicit no-ops through the
//! same per-record step ([`MaterializedView::apply_dummy`]) — so maintenance
//! cost is a function only of the batch volumes `|γ_t|`, which the
//! Definition-2 update-pattern transcript already reveals.  View reads
//! observe exactly what the equivalent full scan would observe (same query
//! kind, same touched-record count, same — possibly DP-noised — response
//! volume), so the adversary's transcript is byte-identical with views on or
//! off; see ARCHITECTURE.md §10 for the full argument.
//!
//! # Supported shapes
//!
//! * `Count` with any (or no) selection predicate — Q1 is the range-count
//!   special case;
//! * `GroupByCount` with any (or no) selection predicate — Q2.
//!
//! Both are insert-monotone (DP-Sync databases are append-only), so the
//! delta rule is exact: a matching inserted row increments one counter.
//! Joins and row-returning selections are rejected at definition time.

use crate::exec::eval_predicate;
use crate::query::{Query, QueryAnswer};
use crate::rewrite;
use crate::row::Row;
use crate::schema::{GroupKey, Schema, Value};
use crate::sogdb::EdbError;
use std::collections::BTreeMap;

/// Maximum length of a view name accepted at registration (keeps hostile
/// remote registrations from storing unbounded identifiers).
pub const MAX_VIEW_NAME_LEN: usize = 128;

/// A registered view: a name bound to a materializable query shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    name: String,
    query: Query,
}

impl ViewDef {
    /// Validates and creates a view definition.
    ///
    /// Rejects empty or oversized names, query shapes that cannot be
    /// maintained incrementally (joins, row-returning selects), and queries
    /// that reference the engine-internal dummy-flag column.
    pub fn new(name: impl Into<String>, query: Query) -> Result<Self, EdbError> {
        let name = name.into();
        if name.is_empty() || name.len() > MAX_VIEW_NAME_LEN {
            return Err(EdbError::InvalidView(format!(
                "view name must be 1..={MAX_VIEW_NAME_LEN} bytes"
            )));
        }
        let (predicate, group_by) = match &query {
            Query::Count { predicate, .. } => (predicate.as_ref(), None),
            Query::GroupByCount {
                predicate,
                group_by,
                ..
            } => (predicate.as_ref(), Some(group_by.as_str())),
            Query::JoinCount { .. } | Query::Select { .. } => {
                return Err(EdbError::InvalidView(format!(
                    "{} queries cannot be materialized incrementally",
                    query.kind()
                )));
            }
        };
        let references_flag = group_by == Some(rewrite::IS_DUMMY_COLUMN)
            || predicate.is_some_and(|p| p.columns().contains(&rewrite::IS_DUMMY_COLUMN));
        if references_flag {
            return Err(EdbError::InvalidView(format!(
                "views may not reference the reserved `{}` column",
                rewrite::IS_DUMMY_COLUMN
            )));
        }
        Ok(Self { name, query })
    }

    /// The view's name (the handle used by `query_view`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The query this view materializes.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The single table the view is defined over.
    pub fn table(&self) -> &str {
        match &self.query {
            Query::Count { table, .. } | Query::GroupByCount { table, .. } => table,
            // Unreachable by construction: `new` rejects other shapes.
            Query::JoinCount { left, .. } => left,
            Query::Select { table, .. } => table,
        }
    }
}

/// The incremental aggregate state of one registered view.
///
/// Counts are exact `u64`s (the mirror is append-only, so deltas only ever
/// increment) and are converted to the engine's f64 answer representation at
/// read time — byte-identical to what the full-scan executor produces.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    def: ViewDef,
    /// Pre-resolved group column index (`GroupByCount` only).
    group_index: Option<usize>,
    /// Scalar count state (`Count` views).
    count: u64,
    /// Per-group count state (`GroupByCount` views).
    groups: BTreeMap<GroupKey, u64>,
    /// Total records this view's maintenance has touched — real *and* dummy,
    /// since every record of a padded batch takes the per-record step.
    maintained_records: u64,
}

impl MaterializedView {
    /// Creates empty view state over `schema` (the engine's mirror schema,
    /// i.e. the logical schema extended with the dummy flag).
    ///
    /// Fails like the scan executor does when the group column is unknown.
    pub fn new(def: ViewDef, schema: &Schema) -> Result<Self, EdbError> {
        let group_index = match def.query() {
            Query::GroupByCount {
                table, group_by, ..
            } => Some(schema.column_index(group_by).ok_or_else(|| {
                EdbError::Exec(crate::exec::ExecError::UnknownColumn {
                    table: table.clone(),
                    column: group_by.clone(),
                })
            })?),
            _ => None,
        };
        Ok(Self {
            def,
            group_index,
            count: 0,
            groups: BTreeMap::new(),
            maintained_records: 0,
        })
    }

    /// The definition this state maintains.
    pub fn def(&self) -> &ViewDef {
        &self.def
    }

    /// Applies one real inserted row.  `schema` must describe `row`'s layout
    /// by column name; predicates never reference the dummy flag (rejected at
    /// definition time), so the same call works for logical rows and for
    /// flag-extended mirror rows.
    pub fn apply_row(&mut self, schema: &Schema, row: &Row) {
        self.maintained_records += 1;
        let matches = match self.def.query() {
            Query::Count { predicate, .. } | Query::GroupByCount { predicate, .. } => predicate
                .as_ref()
                .is_none_or(|p| eval_predicate(p, schema, row)),
            _ => false,
        };
        if !matches {
            return;
        }
        match self.group_index {
            None => self.count += 1,
            Some(index) => {
                let key = row.value(index).map_or(GroupKey::Null, Value::group_key);
                *self.groups.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Applies one dummy record: a deliberate no-op that still takes the
    /// per-record maintenance step, so the per-batch maintenance cost depends
    /// only on the (already leaked) padded batch volume.
    pub fn apply_dummy(&mut self) {
        self.maintained_records += 1;
    }

    /// Applies a mirror row (flag column included): dummies take the no-op
    /// path, real rows the delta path.  Used to backfill a view registered
    /// after data has already been ingested.
    pub fn apply_mirror_row(&mut self, schema: &Schema, row: &Row, flag_column: usize) {
        if row.value(flag_column) == Some(&Value::Bool(true)) {
            self.apply_dummy();
        } else {
            self.apply_row(schema, row);
        }
    }

    /// The current answer, in the executor's representation.
    pub fn answer(&self) -> QueryAnswer {
        match self.group_index {
            None => QueryAnswer::Scalar(self.count as f64),
            Some(_) => QueryAnswer::Groups(
                self.groups
                    .iter()
                    .map(|(k, n)| (k.clone(), *n as f64))
                    .collect(),
            ),
        }
    }

    /// Number of values a read of this view releases (1 for counts, one per
    /// group otherwise).
    pub fn result_size(&self) -> u64 {
        match self.group_index {
            None => 1,
            Some(_) => self.groups.len() as u64,
        }
    }

    /// Total records (real + dummy) maintenance has touched so far.
    pub fn maintained_records(&self) -> u64 {
        self.maintained_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{paper_queries, Predicate};
    use crate::schema::DataType;

    fn schema() -> Schema {
        rewrite::schema_with_dummy_flag(&Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ]))
    }

    fn mirror_row(t: u64, p: i64, dummy: bool) -> Row {
        Row::new(rewrite::values_with_dummy_flag(
            if dummy {
                vec![Value::Null, Value::Null]
            } else {
                vec![Value::Timestamp(t), Value::Int(p)]
            },
            dummy,
        ))
    }

    #[test]
    fn def_validation() {
        assert!(ViewDef::new("q1", paper_queries::q1_range_count("yellow")).is_ok());
        assert!(ViewDef::new("q2", paper_queries::q2_group_by_count("yellow")).is_ok());
        assert!(matches!(
            ViewDef::new("", paper_queries::q1_range_count("yellow")),
            Err(EdbError::InvalidView(_))
        ));
        assert!(matches!(
            ViewDef::new("x".repeat(200), paper_queries::q1_range_count("yellow")),
            Err(EdbError::InvalidView(_))
        ));
        assert!(matches!(
            ViewDef::new("j", paper_queries::q3_join_count("yellow", "green")),
            Err(EdbError::InvalidView(_))
        ));
        assert!(matches!(
            ViewDef::new(
                "s",
                Query::Select {
                    table: "yellow".into(),
                    columns: vec![],
                    predicate: None,
                }
            ),
            Err(EdbError::InvalidView(_))
        ));
        // The engine-internal flag column is out of bounds for analysts.
        assert!(matches!(
            ViewDef::new(
                "d",
                Query::GroupByCount {
                    table: "yellow".into(),
                    group_by: rewrite::IS_DUMMY_COLUMN.into(),
                    predicate: None,
                }
            ),
            Err(EdbError::InvalidView(_))
        ));
        assert!(matches!(
            ViewDef::new(
                "d2",
                Query::Count {
                    table: "yellow".into(),
                    predicate: Some(Predicate::Eq(
                        rewrite::IS_DUMMY_COLUMN.into(),
                        Value::Bool(false)
                    )),
                }
            ),
            Err(EdbError::InvalidView(_))
        ));
        let def = ViewDef::new("q1", paper_queries::q1_range_count("yellow")).unwrap();
        assert_eq!(def.name(), "q1");
        assert_eq!(def.table(), "yellow");
    }

    #[test]
    fn count_view_tracks_matching_rows_and_ignores_dummies() {
        let def = ViewDef::new("q1", paper_queries::q1_range_count("yellow")).unwrap();
        let mut view = MaterializedView::new(def, &schema()).unwrap();
        for (p, dummy) in [(60, false), (200, false), (75, false), (0, true)] {
            view.apply_mirror_row(&schema(), &mirror_row(1, p, dummy), 2);
        }
        assert_eq!(view.answer(), QueryAnswer::Scalar(2.0));
        assert_eq!(view.result_size(), 1);
        assert_eq!(view.maintained_records(), 4);
    }

    #[test]
    fn group_view_matches_scan_semantics() {
        let def = ViewDef::new("q2", paper_queries::q2_group_by_count("yellow")).unwrap();
        let mut view = MaterializedView::new(def, &schema()).unwrap();
        for p in [5, 5, 9] {
            view.apply_row(&schema(), &mirror_row(1, p, false));
        }
        view.apply_dummy();
        let answer = view.answer();
        let groups = answer.as_groups().unwrap();
        assert_eq!(groups.get(&Value::Int(5).group_key()), Some(&2.0));
        assert_eq!(groups.get(&Value::Int(9).group_key()), Some(&1.0));
        assert_eq!(view.result_size(), 2);
        assert_eq!(view.maintained_records(), 4);
    }

    #[test]
    fn unknown_group_column_is_rejected_like_the_scan() {
        let def = ViewDef::new(
            "bad",
            Query::GroupByCount {
                table: "yellow".into(),
                group_by: "ghost".into(),
                predicate: None,
            },
        )
        .unwrap();
        assert!(matches!(
            MaterializedView::new(def, &schema()),
            Err(EdbError::Exec(_))
        ));
    }
}
