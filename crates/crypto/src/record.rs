//! Fixed-size authenticated record encryption.
//!
//! Every record outsourced by DP-Sync — real or dummy — is encrypted into a
//! ciphertext of exactly [`EncryptedRecord::TOTAL_LEN`] bytes:
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────────────┬───────────┐
//! │ nonce (12) │ ciphertext of [flag ‖ len ‖ padded payload]  │ tag (16)  │
//! └────────────┴──────────────────────────────────────────────┴───────────┘
//! ```
//!
//! The `is_dummy` flag and the true payload length live *inside* the
//! encrypted body, so the server cannot distinguish dummy records from real
//! ones, nor short payloads from long ones — the property the paper's dummy
//! mechanism relies on (§3.2.2).

use crate::chacha::{ChaCha20, CHACHA_NONCE_LEN};
use crate::keys::{KeyPurpose, MasterKey};
use crate::prf::{Mac, Prf, MAC_TAG_LEN};
use crate::CryptoError;
use bytes::Bytes;

/// Maximum serialized payload length of one record, in bytes.
///
/// A synthetic taxi record (pickup time, pickup/dropoff zones, distance,
/// fare, passenger count) serializes to well under this limit; the constant
/// is deliberately generous so other schemas fit without changing the
/// ciphertext format.
pub const RECORD_PAYLOAD_LEN: usize = 64;

/// Length of the plaintext body: 1 flag byte + 2 length bytes + padded payload.
const BODY_LEN: usize = 1 + 2 + RECORD_PAYLOAD_LEN;

/// A plaintext record as seen by the owner before encryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordPlaintext {
    /// Whether this is a dummy record inserted purely for padding.
    pub is_dummy: bool,
    /// Application payload (serialized row), at most [`RECORD_PAYLOAD_LEN`] bytes.
    pub payload: Vec<u8>,
}

impl RecordPlaintext {
    /// Creates a real record carrying `payload`.
    pub fn real(payload: Vec<u8>) -> Self {
        Self {
            is_dummy: false,
            payload,
        }
    }

    /// Creates a dummy record (empty payload, `is_dummy` set).
    pub fn dummy() -> Self {
        Self {
            is_dummy: true,
            payload: Vec::new(),
        }
    }

    fn to_body(&self) -> Result<[u8; BODY_LEN], CryptoError> {
        if self.payload.len() > RECORD_PAYLOAD_LEN {
            return Err(CryptoError::PayloadTooLarge {
                got: self.payload.len(),
                max: RECORD_PAYLOAD_LEN,
            });
        }
        let mut body = [0u8; BODY_LEN];
        body[0] = u8::from(self.is_dummy);
        body[1..3].copy_from_slice(&(self.payload.len() as u16).to_le_bytes());
        body[3..3 + self.payload.len()].copy_from_slice(&self.payload);
        Ok(body)
    }
}

/// A plaintext record whose padded body has been assembled ahead of time.
///
/// Preparing a plaintext performs the size check and the copy into the
/// fixed-size padded body once; [`RecordCryptor::encrypt_prepared`] can then
/// be called many times, and **every call is a fresh encryption** — a new
/// nonce, a new keystream, a new tag.  This is the dummy-record fast path:
/// the all-zero dummy body is a compile-time constant, but the emitted
/// ciphertexts must never repeat, or the server could count dummies and the
/// update-pattern indistinguishability of Definition 4 would collapse.
/// Cache the *plaintext*, never the *ciphertext*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedPlaintext {
    body: [u8; BODY_LEN],
}

impl PreparedPlaintext {
    /// Prepares a plaintext record (validates and pads the payload once).
    pub fn new(record: &RecordPlaintext) -> Result<Self, CryptoError> {
        Ok(Self {
            body: record.to_body()?,
        })
    }

    /// The prepared dummy record (flag set, zero-length zero padding).
    pub const fn dummy() -> Self {
        let mut body = [0u8; BODY_LEN];
        body[0] = 1; // is_dummy flag; length bytes and padding stay zero.
        Self { body }
    }

    /// Whether this prepared record is a dummy.
    pub fn is_dummy(&self) -> bool {
        self.body[0] != 0
    }
}

/// An authenticated, decrypted record body exposed without copying the
/// payload out of the fixed-size buffer.
///
/// [`RecordCryptor::decrypt_view`] returns this on the `Π_Update` ingest hot
/// path so engines can parse rows straight from [`PlaintextView::payload`]
/// instead of materializing an intermediate `Vec` per record.
#[derive(Debug, Clone)]
pub struct PlaintextView {
    body: [u8; BODY_LEN],
}

impl PlaintextView {
    /// Whether the record is a dummy.
    pub fn is_dummy(&self) -> bool {
        self.body[0] != 0
    }

    /// The true (unpadded) payload bytes.
    pub fn payload(&self) -> &[u8] {
        let len = u16::from_le_bytes([self.body[1], self.body[2]]) as usize;
        &self.body[3..3 + len.min(RECORD_PAYLOAD_LEN)]
    }

    /// Converts the view into an owned plaintext record.
    pub fn into_plaintext(self) -> RecordPlaintext {
        RecordPlaintext {
            is_dummy: self.is_dummy(),
            payload: self.payload().to_vec(),
        }
    }
}

/// Ciphertext bytes of one encrypted record, suitable for storage/transfer.
pub type CiphertextBytes = Bytes;

/// One encrypted record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedRecord {
    nonce: [u8; CHACHA_NONCE_LEN],
    body: [u8; BODY_LEN],
    tag: [u8; MAC_TAG_LEN],
}

impl EncryptedRecord {
    /// Total serialized length of every encrypted record, in bytes.
    pub const TOTAL_LEN: usize = CHACHA_NONCE_LEN + BODY_LEN + MAC_TAG_LEN;

    /// Serializes the record to bytes (nonce ‖ encrypted body ‖ tag).
    pub fn to_bytes(&self) -> CiphertextBytes {
        let mut out = Vec::with_capacity(Self::TOTAL_LEN);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&self.tag);
        Bytes::from(out)
    }

    /// Parses an encrypted record from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != Self::TOTAL_LEN {
            return Err(CryptoError::MalformedCiphertext {
                got: bytes.len(),
                expected: Self::TOTAL_LEN,
            });
        }
        let mut nonce = [0u8; CHACHA_NONCE_LEN];
        nonce.copy_from_slice(&bytes[..CHACHA_NONCE_LEN]);
        let mut body = [0u8; BODY_LEN];
        body.copy_from_slice(&bytes[CHACHA_NONCE_LEN..CHACHA_NONCE_LEN + BODY_LEN]);
        let mut tag = [0u8; MAC_TAG_LEN];
        tag.copy_from_slice(&bytes[CHACHA_NONCE_LEN + BODY_LEN..]);
        Ok(Self { nonce, body, tag })
    }

    /// The per-record nonce (public).
    pub fn nonce(&self) -> &[u8; CHACHA_NONCE_LEN] {
        &self.nonce
    }
}

/// Encrypts and decrypts records under keys derived from one master key.
///
/// The cryptor tracks a monotone sequence number used to derive a unique
/// nonce per encryption, so the caller never has to manage nonces.
#[derive(Debug, Clone)]
pub struct RecordCryptor {
    cipher: ChaCha20,
    mac: Mac,
    nonce_prf: Prf,
    next_sequence: u64,
}

impl RecordCryptor {
    /// Creates a cryptor from the owner's master key, starting the nonce
    /// sequence at zero.
    pub fn new(master: &MasterKey) -> Self {
        Self::with_sequence(master, 0)
    }

    /// Creates a cryptor whose nonce sequence starts at `next_sequence`
    /// (used when resuming after a restart).
    pub fn with_sequence(master: &MasterKey, next_sequence: u64) -> Self {
        let enc = master.derive(KeyPurpose::RecordEncryption);
        let mac = master.derive(KeyPurpose::RecordAuthentication);
        let nonce = master.derive(KeyPurpose::NonceDerivation);
        Self {
            cipher: ChaCha20::new(*enc.bytes()),
            mac: Mac::new(*mac.bytes()),
            nonce_prf: Prf::new(*nonce.bytes()),
            next_sequence,
        }
    }

    /// The sequence number the next encryption will consume.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// Seals an already-padded body: fresh nonce, encrypt, authenticate.
    ///
    /// The MAC input lives on the stack — this is the per-record inner loop
    /// of every upload and must not heap-allocate.
    fn seal_body(&mut self, mut body: [u8; BODY_LEN]) -> EncryptedRecord {
        let nonce = self.nonce_prf.derive_nonce(self.next_sequence);
        self.next_sequence += 1;
        self.cipher.apply(nonce, 0, &mut body);
        let mut mac_input = [0u8; CHACHA_NONCE_LEN + BODY_LEN];
        mac_input[..CHACHA_NONCE_LEN].copy_from_slice(&nonce);
        mac_input[CHACHA_NONCE_LEN..].copy_from_slice(&body);
        let tag = self.mac.tag(&mac_input);
        EncryptedRecord { nonce, body, tag }
    }

    /// Encrypts a plaintext record into a fixed-size ciphertext.
    pub fn encrypt(&mut self, record: &RecordPlaintext) -> Result<EncryptedRecord, CryptoError> {
        Ok(self.seal_body(record.to_body()?))
    }

    /// Encrypts a real record directly from its payload bytes, skipping the
    /// intermediate [`RecordPlaintext`] (and its owned `Vec`).
    pub fn encrypt_payload(&mut self, payload: &[u8]) -> Result<EncryptedRecord, CryptoError> {
        if payload.len() > RECORD_PAYLOAD_LEN {
            return Err(CryptoError::PayloadTooLarge {
                got: payload.len(),
                max: RECORD_PAYLOAD_LEN,
            });
        }
        let mut body = [0u8; BODY_LEN];
        body[1..3].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        body[3..3 + payload.len()].copy_from_slice(payload);
        Ok(self.seal_body(body))
    }

    /// Encrypts a prepared plaintext.  Infallible (the body was validated at
    /// preparation time) and **fresh** every call: a new nonce and keystream
    /// are derived per invocation, so encrypting the same prepared plaintext
    /// twice never yields related ciphertexts.
    pub fn encrypt_prepared(&mut self, prepared: &PreparedPlaintext) -> EncryptedRecord {
        self.seal_body(prepared.body)
    }

    /// Encrypts a dummy record.
    pub fn encrypt_dummy(&mut self) -> Result<EncryptedRecord, CryptoError> {
        Ok(self.encrypt_prepared(&PreparedPlaintext::dummy()))
    }

    /// Encrypts a batch of real records followed by `dummies` dummy records
    /// into `out`, amortizing per-record setup across the whole batch.
    ///
    /// `encode` serializes one item into the scratch buffer it is handed
    /// (already cleared); the same buffer is reused for every item, so the
    /// batch performs no per-record payload allocation.  The dummies ride
    /// the prepared fast path — each one still a fresh encryption.  `out` is
    /// not cleared, so a caller draining a queue can reuse one output buffer
    /// across batches.
    pub fn encrypt_batch_into<T>(
        &mut self,
        items: &[T],
        mut encode: impl FnMut(&T, &mut Vec<u8>),
        dummies: usize,
        out: &mut Vec<EncryptedRecord>,
    ) -> Result<(), CryptoError> {
        out.reserve(items.len() + dummies);
        let mut payload = Vec::with_capacity(RECORD_PAYLOAD_LEN);
        for item in items {
            payload.clear();
            encode(item, &mut payload);
            out.push(self.encrypt_payload(&payload)?);
        }
        let dummy = PreparedPlaintext::dummy();
        for _ in 0..dummies {
            out.push(self.encrypt_prepared(&dummy));
        }
        Ok(())
    }

    /// Decrypts and authenticates an encrypted record.
    pub fn decrypt(&self, record: &EncryptedRecord) -> Result<RecordPlaintext, CryptoError> {
        Ok(self.decrypt_view(record)?.into_plaintext())
    }

    /// Decrypts and authenticates a record, returning a zero-copy view of
    /// the padded body (the `Π_Update` ingest hot path).
    pub fn decrypt_view(&self, record: &EncryptedRecord) -> Result<PlaintextView, CryptoError> {
        let mut mac_input = [0u8; CHACHA_NONCE_LEN + BODY_LEN];
        mac_input[..CHACHA_NONCE_LEN].copy_from_slice(&record.nonce);
        mac_input[CHACHA_NONCE_LEN..].copy_from_slice(&record.body);
        if !self.mac.verify(&mac_input, &record.tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut body = record.body;
        self.cipher.apply(record.nonce, 0, &mut body);
        Ok(PlaintextView { body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cryptor() -> RecordCryptor {
        RecordCryptor::new(&MasterKey::from_bytes([3u8; 32]))
    }

    #[test]
    fn roundtrip_real_record() {
        let mut c = cryptor();
        let pt = RecordPlaintext::real(b"pickup=42,dropoff=17,fare=12.5".to_vec());
        let ct = c.encrypt(&pt).unwrap();
        assert_eq!(c.decrypt(&ct).unwrap(), pt);
    }

    #[test]
    fn roundtrip_dummy_record() {
        let mut c = cryptor();
        let ct = c.encrypt_dummy().unwrap();
        let pt = c.decrypt(&ct).unwrap();
        assert!(pt.is_dummy);
        assert!(pt.payload.is_empty());
    }

    #[test]
    fn all_ciphertexts_have_identical_length() {
        let mut c = cryptor();
        let short = c.encrypt(&RecordPlaintext::real(vec![1])).unwrap();
        let long = c
            .encrypt(&RecordPlaintext::real(vec![7u8; RECORD_PAYLOAD_LEN]))
            .unwrap();
        let dummy = c.encrypt_dummy().unwrap();
        assert_eq!(short.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        assert_eq!(long.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
        assert_eq!(dummy.to_bytes().len(), EncryptedRecord::TOTAL_LEN);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let mut c = cryptor();
        let err = c
            .encrypt(&RecordPlaintext::real(vec![0u8; RECORD_PAYLOAD_LEN + 1]))
            .unwrap_err();
        assert!(matches!(err, CryptoError::PayloadTooLarge { .. }));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut c = cryptor();
        let ct = c.encrypt(&RecordPlaintext::real(b"abc".to_vec())).unwrap();
        let bytes = ct.to_bytes();
        let parsed = EncryptedRecord::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, ct);
        assert!(matches!(
            EncryptedRecord::from_bytes(&bytes[..bytes.len() - 1]),
            Err(CryptoError::MalformedCiphertext { .. })
        ));
    }

    #[test]
    fn tampering_is_detected() {
        let mut c = cryptor();
        let ct = c
            .encrypt(&RecordPlaintext::real(b"secret".to_vec()))
            .unwrap();
        let mut bytes = ct.to_bytes().to_vec();
        bytes[20] ^= 0x01;
        let tampered = EncryptedRecord::from_bytes(&bytes).unwrap();
        assert_eq!(c.decrypt(&tampered), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let mut c1 = cryptor();
        let c2 = RecordCryptor::new(&MasterKey::from_bytes([4u8; 32]));
        let ct = c1
            .encrypt(&RecordPlaintext::real(b"secret".to_vec()))
            .unwrap();
        assert_eq!(c2.decrypt(&ct), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn nonces_never_repeat_across_encryptions() {
        let mut c = cryptor();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000u64 {
            let ct = c
                .encrypt(&RecordPlaintext::real(i.to_le_bytes().to_vec()))
                .unwrap();
            assert!(seen.insert(*ct.nonce()), "nonce reuse at {i}");
        }
        assert_eq!(c.next_sequence(), 2_000);
    }

    #[test]
    fn identical_plaintexts_produce_different_ciphertexts() {
        let mut c = cryptor();
        let pt = RecordPlaintext::real(b"same".to_vec());
        let a = c.encrypt(&pt).unwrap();
        let b = c.encrypt(&pt).unwrap();
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn dummy_and_real_ciphertexts_are_statistically_similar() {
        // Indistinguishability smoke test: byte histograms of dummy vs real
        // ciphertext bodies should both look uniform (we compare the mean byte
        // value and total length only — a full distinguisher is out of scope).
        let mut c = cryptor();
        let mut real_bytes = Vec::new();
        let mut dummy_bytes = Vec::new();
        for i in 0..500u64 {
            real_bytes.extend_from_slice(
                &c.encrypt(&RecordPlaintext::real(i.to_le_bytes().to_vec()))
                    .unwrap()
                    .to_bytes(),
            );
            dummy_bytes.extend_from_slice(&c.encrypt_dummy().unwrap().to_bytes());
        }
        assert_eq!(real_bytes.len(), dummy_bytes.len());
        let mean = |v: &[u8]| v.iter().map(|&b| f64::from(b)).sum::<f64>() / v.len() as f64;
        assert!((mean(&real_bytes) - mean(&dummy_bytes)).abs() < 3.0);
    }

    #[test]
    fn prepared_dummy_matches_plaintext_dummy() {
        // The prepared fast path and the general path must produce
        // ciphertexts that decrypt to the same plaintext dummy record.
        let master = MasterKey::from_bytes([3u8; 32]);
        let mut via_plaintext = RecordCryptor::new(&master);
        let mut via_prepared = RecordCryptor::new(&master);
        let a = via_plaintext
            .encrypt(&RecordPlaintext::dummy())
            .unwrap()
            .to_bytes();
        let b = via_prepared
            .encrypt_prepared(&PreparedPlaintext::dummy())
            .to_bytes();
        // Identical sequence numbers + identical bodies => identical bytes.
        assert_eq!(a, b);
        assert!(PreparedPlaintext::dummy().is_dummy());
    }

    #[test]
    fn prepared_encryption_is_fresh_every_call() {
        let mut c = cryptor();
        let prepared = PreparedPlaintext::new(&RecordPlaintext::real(b"same".to_vec())).unwrap();
        assert!(!prepared.is_dummy());
        let a = c.encrypt_prepared(&prepared);
        let b = c.encrypt_prepared(&prepared);
        assert_ne!(a.nonce(), b.nonce());
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(c.decrypt(&a).unwrap(), c.decrypt(&b).unwrap());
    }

    #[test]
    fn prepared_rejects_oversized_payloads() {
        let err = PreparedPlaintext::new(&RecordPlaintext::real(vec![0u8; RECORD_PAYLOAD_LEN + 1]))
            .unwrap_err();
        assert!(matches!(err, CryptoError::PayloadTooLarge { .. }));
    }

    #[test]
    fn encrypt_payload_matches_encrypt() {
        let master = MasterKey::from_bytes([3u8; 32]);
        let mut a = RecordCryptor::new(&master);
        let mut b = RecordCryptor::new(&master);
        let payload = b"pickup=42".to_vec();
        let via_record = a.encrypt(&RecordPlaintext::real(payload.clone())).unwrap();
        let via_payload = b.encrypt_payload(&payload).unwrap();
        assert_eq!(via_record.to_bytes(), via_payload.to_bytes());
        assert!(matches!(
            b.encrypt_payload(&[0u8; RECORD_PAYLOAD_LEN + 1]),
            Err(CryptoError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn batch_encryption_matches_one_by_one() {
        let master = MasterKey::from_bytes([3u8; 32]);
        let mut batch_cryptor = RecordCryptor::new(&master);
        let mut single_cryptor = RecordCryptor::new(&master);
        let payloads: Vec<Vec<u8>> = (0..10u64).map(|i| i.to_le_bytes().to_vec()).collect();

        let mut batched = Vec::new();
        batch_cryptor
            .encrypt_batch_into(
                &payloads,
                |p, buf| buf.extend_from_slice(p),
                4,
                &mut batched,
            )
            .unwrap();

        let mut singles = Vec::new();
        for p in &payloads {
            singles.push(
                single_cryptor
                    .encrypt(&RecordPlaintext::real(p.clone()))
                    .unwrap(),
            );
        }
        for _ in 0..4 {
            singles.push(single_cryptor.encrypt_dummy().unwrap());
        }
        assert_eq!(batched, singles);
        assert_eq!(
            batch_cryptor.next_sequence(),
            single_cryptor.next_sequence()
        );
        // The output buffer is appended to, not cleared.
        let no_items: [Vec<u8>; 0] = [];
        batch_cryptor
            .encrypt_batch_into(
                &no_items,
                |p, buf| buf.extend_from_slice(p),
                1,
                &mut batched,
            )
            .unwrap();
        assert_eq!(batched.len(), 15);
        // An oversized item surfaces the payload error, not a panic.
        let oversized = [vec![0u8; RECORD_PAYLOAD_LEN + 1]];
        let err = batch_cryptor
            .encrypt_batch_into(
                &oversized,
                |p, buf| buf.extend_from_slice(p),
                0,
                &mut batched,
            )
            .unwrap_err();
        assert!(matches!(err, CryptoError::PayloadTooLarge { .. }));
    }

    #[test]
    fn decrypt_view_exposes_payload_without_copy() {
        let mut c = cryptor();
        let ct = c
            .encrypt(&RecordPlaintext::real(b"hot path".to_vec()))
            .unwrap();
        let view = c.decrypt_view(&ct).unwrap();
        assert!(!view.is_dummy());
        assert_eq!(view.payload(), b"hot path");
        assert_eq!(
            view.into_plaintext(),
            RecordPlaintext::real(b"hot path".to_vec())
        );
        let dummy_view = c.decrypt_view(&c.clone().encrypt_dummy().unwrap()).unwrap();
        assert!(dummy_view.is_dummy());
        assert!(dummy_view.payload().is_empty());
    }

    #[test]
    fn with_sequence_resumes_nonce_counter() {
        let master = MasterKey::from_bytes([3u8; 32]);
        let mut a = RecordCryptor::with_sequence(&master, 500);
        assert_eq!(a.next_sequence(), 500);
        let ct = a.encrypt(&RecordPlaintext::real(vec![1])).unwrap();
        // A fresh cryptor at sequence 500 derives the same nonce.
        let mut b = RecordCryptor::with_sequence(&master, 500);
        let ct2 = b.encrypt(&RecordPlaintext::real(vec![2])).unwrap();
        assert_eq!(ct.nonce(), ct2.nonce());
    }
}
