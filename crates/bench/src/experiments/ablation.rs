//! Ablation study: how much of the DP strategies' behaviour comes from the
//! cache-flush mechanism?
//!
//! DESIGN.md calls out the flush as the design choice that buys the strong
//! "consistent eventually" property (P3) at the cost of a fixed dummy volume
//! `η = s⌊t/f⌋` (Theorems 7/9).  This ablation runs each DP strategy with the
//! flush enabled and disabled and reports the quantities that choice trades
//! off: the final logical gap (does every record eventually reach the
//! server?), the dummy volume, and the query error.

use crate::experiments::config::{EngineKind, ExperimentConfig};
use crate::experiments::runner::{build_run_engine, build_workloads, RunSpec};
use crate::report::TextTable;
use dpsync_core::metrics::SimulationReport;
use dpsync_core::simulation::{Simulation, SimulationConfig};
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, StrategyKind, SyncStrategy,
};
use dpsync_crypto::MasterKey;
use dpsync_dp::Epsilon;

/// One ablation observation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Whether the cache flush was enabled.
    pub flush_enabled: bool,
    /// Mean Q2 L1 error across the run.
    pub mean_q2_error: f64,
    /// Logical gap at the end of the run (0 means every record was synced).
    pub final_logical_gap: u64,
    /// Dummy records stored at the end of the run.
    pub dummy_records: u64,
    /// Total ciphertexts stored at the end of the run.
    pub outsourced_records: u64,
}

fn run_with_flush(
    strategy: StrategyKind,
    flush: Option<CacheFlush>,
    config: ExperimentConfig,
) -> SimulationReport {
    let spec = RunSpec {
        engine: EngineKind::ObliDb,
        strategy,
        config,
    };
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&config.seed.to_le_bytes());
    bytes[8] = 0xAB;
    let master = MasterKey::from_bytes(bytes);
    // Honors the spec's backend *and* transport (`--backend disk`,
    // `--transport tcp`), exactly like every other experiment runner; the
    // guard keeps a disk run's scratch directory alive for the run.
    let (engine, _disk_dir) = build_run_engine(&spec, &master);
    let workloads = build_workloads(&spec);
    let eps = Epsilon::new_unchecked(config.params.epsilon);
    let sim = Simulation::new(SimulationConfig {
        query_interval: config.query_interval,
        size_sample_interval: config.size_sample_interval,
        queries: spec.query_set(),
        seed: config.seed,
    });
    sim.run_parallel(
        &workloads,
        engine.as_ref(),
        &master,
        |_| -> Box<dyn SyncStrategy> {
            match strategy {
                StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
                    eps,
                    config.params.timer_period,
                    flush,
                )),
                StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
                    eps,
                    config.params.ant_threshold,
                    flush,
                )),
                other => config.params.build(other),
            }
        },
    )
    .expect("simulation over generated workloads cannot fail")
}

/// Runs the flush ablation for both DP strategies.
///
/// The four (strategy × flush) cells are independent simulations and run
/// concurrently on the worker pool.
pub fn flush_ablation(config: ExperimentConfig) -> Vec<AblationRow> {
    let flush = CacheFlush::new(config.params.flush_interval, config.params.flush_size);
    let cells: Vec<(StrategyKind, bool)> = [StrategyKind::DpTimer, StrategyKind::DpAnt]
        .into_iter()
        .flat_map(|strategy| [(strategy, true), (strategy, false)])
        .collect();
    crate::pool::parallel_map(&cells, |&(strategy, flush_enabled)| {
        let report = run_with_flush(strategy, flush_enabled.then_some(flush), config);
        let sizes = report.final_sizes().unwrap_or_default();
        AblationRow {
            strategy,
            flush_enabled,
            mean_q2_error: report.mean_l1_error("Q2"),
            final_logical_gap: sizes.logical_gap,
            dummy_records: sizes.dummy_records,
            outsourced_records: sizes.outsourced_records,
        }
    })
}

/// Renders the ablation as a text table.
pub fn ablation_table(rows: &[AblationRow]) -> TextTable {
    let mut table = TextTable::new([
        "Strategy",
        "Cache flush",
        "Mean Q2 L1 error",
        "Final logical gap",
        "Dummy records",
        "Outsourced records",
    ]);
    for row in rows {
        table.add_row([
            row.strategy.label().to_string(),
            if row.flush_enabled { "on" } else { "off" }.to_string(),
            format!("{:.2}", row.mean_q2_error),
            row.final_logical_gap.to_string(),
            row.dummy_records.to_string(),
            row.outsourced_records.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_reduces_the_final_backlog_at_the_cost_of_dummies() {
        let config = ExperimentConfig {
            scale: 60,
            seed: 13,
            ..Default::default()
        }
        .rescale();
        // Shrink the flush interval so several flushes fit in the scaled run.
        let mut config = config;
        config.params.flush_interval = 150;
        let rows = flush_ablation(config);
        assert_eq!(rows.len(), 4);
        for strategy in [StrategyKind::DpTimer, StrategyKind::DpAnt] {
            let with = rows
                .iter()
                .find(|r| r.strategy == strategy && r.flush_enabled)
                .unwrap();
            let without = rows
                .iter()
                .find(|r| r.strategy == strategy && !r.flush_enabled)
                .unwrap();
            // The flush can only help the backlog and can only add uploads.
            assert!(
                with.final_logical_gap <= without.final_logical_gap,
                "{strategy:?}: gap with flush {} vs without {}",
                with.final_logical_gap,
                without.final_logical_gap
            );
            assert!(with.outsourced_records >= without.outsourced_records);
        }
        let rendered = ablation_table(&rows).render();
        assert!(rendered.contains("Cache flush"));
        assert!(rendered.contains("off"));
    }
}
