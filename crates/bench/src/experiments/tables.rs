//! The analytic and classification tables: Table 2, Table 3 and the Table-4
//! privacy verification.

use crate::experiments::config::ExperimentConfig;
use crate::report::TextTable;
use dpsync_core::privacy::{self, DpTestResult};
use dpsync_core::strategy::bounds::{table2, BoundContext};
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, StrategyKind,
};
use dpsync_core::timeline::Timestamp;
use dpsync_dp::Epsilon;
use dpsync_edb::leakage::{catalog, LeakageClass};

/// Builds Table 2 (the strategy comparison) evaluated at the end of the
/// paper's month-long horizon with the default parameters.
pub fn table2_text(config: &ExperimentConfig) -> TextTable {
    let horizon = 43_200 / config.scale.max(1);
    let logical_size = 18_429 / config.scale.max(1);
    let ctx = BoundContext {
        epsilon: Epsilon::new_unchecked(config.params.epsilon),
        time: Timestamp(horizon),
        syncs_posted: horizon / config.params.timer_period.max(1),
        received_since_last_sync: config.params.ant_threshold,
        initial_size: logical_size.min(10),
        logical_size,
        flush: CacheFlush::new(config.params.flush_interval, config.params.flush_size),
        beta: 0.05,
    };
    let mut table = TextTable::new([
        "Strategy",
        "Privacy",
        "Logical gap (formula)",
        "Logical gap (95% bound)",
        "Outsourced records (formula)",
        "Outsourced records (95% bound)",
    ]);
    for row in table2(&ctx) {
        table.add_row([
            row.strategy.label().to_string(),
            row.privacy,
            row.logical_gap_formula,
            format!("{:.1}", row.logical_gap_value),
            row.outsourced_formula,
            format!("{:.1}", row.outsourced_value),
        ]);
    }
    table
}

/// Builds Table 3 (leakage groups and example systems).
pub fn table3_text() -> TextTable {
    let mut table = TextTable::new(["Leakage group", "Scheme", "DP-Sync compatible", "Rationale"]);
    for class in [
        LeakageClass::L0ResponseVolumeHiding,
        LeakageClass::LDpDifferentiallyPrivateVolume,
        LeakageClass::L1RevealResponseVolume,
        LeakageClass::L2RevealAccessPattern,
    ] {
        for entry in catalog().into_iter().filter(|e| e.class == class) {
            table.add_row([
                class.label().to_string(),
                entry.name.to_string(),
                if class.directly_compatible() {
                    "yes".to_string()
                } else if class.compatible_with_mitigation() {
                    "with mitigation".to_string()
                } else {
                    "no".to_string()
                },
                entry.rationale.to_string(),
            ]);
        }
    }
    table
}

/// The outcome of the Table-4 privacy verification for both DP strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyVerification {
    /// The empirical test for DP-Timer.
    pub timer: DpTestResult,
    /// The empirical test for DP-ANT.
    pub ant: DpTestResult,
}

/// Runs the empirical odds-ratio test (the executable counterpart of the
/// Table-4 mechanisms and Theorems 10/11) on neighboring arrival streams.
pub fn verify_update_pattern_privacy(epsilon: f64, trials: u32, seed: u64) -> PrivacyVerification {
    let eps = Epsilon::new_unchecked(epsilon);
    let stream: Vec<u64> = (1..=60u64).map(|t| u64::from(t % 3 == 0)).collect();
    let timer = privacy::test_strategy_update_pattern(eps, &stream, 45, 5, trials, seed, || {
        Box::new(DpTimerStrategy::with_flush(eps, 30, None))
    });
    let ant = privacy::test_strategy_update_pattern(eps, &stream, 45, 5, trials, seed + 1, || {
        Box::new(AboveNoisyThresholdStrategy::with_flush(eps, 10, None))
    });
    PrivacyVerification { timer, ant }
}

/// Renders the privacy verification as a table.
pub fn table4_text(verification: &PrivacyVerification) -> TextTable {
    let mut table = TextTable::new([
        "Mechanism",
        "Max bucket odds ratio",
        "Max tail odds ratio",
        "e^epsilon bound",
        "Events compared",
        "Trials",
        "Headroom",
        "Within corrected bound",
    ]);
    for (name, result) in [
        (StrategyKind::DpTimer.label(), &verification.timer),
        (StrategyKind::DpAnt.label(), &verification.ant),
    ] {
        table.add_row([
            name.to_string(),
            format!("{:.3}", result.max_ratio),
            format!("{:.3}", result.max_tail_ratio),
            format!("{:.3}", result.bound),
            format!(
                "{} + {} tails",
                result.buckets_compared, result.tail_events_compared
            ),
            result.trials.to_string(),
            format!("{:.2}x", result.headroom()),
            if result.passes { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_strategies_with_bounds() {
        let table = table2_text(&ExperimentConfig::default());
        let rendered = table.render();
        assert_eq!(table.len(), 5);
        for label in ["SUR", "OTO", "SET", "DP-Timer", "DP-ANT"] {
            assert!(rendered.contains(label), "missing {label}");
        }
        assert!(rendered.contains("√k"));
    }

    #[test]
    fn table3_covers_all_groups_and_flags_incompatibility() {
        let table = table3_text();
        let rendered = table.render();
        assert!(table.len() >= 15);
        for group in ["L-0", "L-DP", "L-1", "L-2"] {
            assert!(rendered.contains(group));
        }
        assert!(rendered.contains("with mitigation"));
        assert!(rendered.contains("ObliDB"));
        assert!(rendered.contains("Crypt-epsilon"));
    }

    #[test]
    fn privacy_verification_passes_for_both_dp_strategies() {
        let verification = verify_update_pattern_privacy(1.0, 10_000, 42);
        assert!(
            verification.timer.passes,
            "DP-Timer ratio {} bound {}",
            verification.timer.max_ratio, verification.timer.bound
        );
        assert!(
            verification.ant.passes,
            "DP-ANT ratio {} bound {}",
            verification.ant.max_ratio, verification.ant.bound
        );
        // The corrected per-bucket bound must pass with real headroom, not
        // just inside a flat sampling-slack fudge factor.
        assert!(
            verification.timer.headroom() > 1.05,
            "DP-Timer headroom {}",
            verification.timer.headroom()
        );
        assert!(
            verification.ant.headroom() > 1.05,
            "DP-ANT headroom {}",
            verification.ant.headroom()
        );
        let rendered = table4_text(&verification).render();
        assert!(rendered.contains("DP-Timer"));
        assert!(rendered.contains("Headroom"));
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn dp_timer_odds_ratio_bound_is_pinned_at_the_fixture_seed() {
        // Everything here is deterministic (seeded DpRng), so these are
        // exact-value pins, not statistical assertions: any drift in the
        // DP-Timer mechanism, the pattern statistic, or the corrected
        // bound's slack moves them and must be re-pinned consciously —
        // the sampling slack can't silently regrow.
        let verification = verify_update_pattern_privacy(1.0, 10_000, 42);
        let timer = &verification.timer;
        assert!(timer.passes);
        assert_eq!(timer.buckets_compared, 10);
        assert_eq!(timer.tail_events_compared, 31);
        assert!(
            (timer.max_ratio - 3.654).abs() < 0.01,
            "point-bucket ratio drifted: {}",
            timer.max_ratio
        );
        assert!(
            (timer.max_tail_ratio - 3.750).abs() < 0.01,
            "tail-event ratio drifted: {}",
            timer.max_tail_ratio
        );
        assert!(
            (timer.worst_margin - 0.9393).abs() < 0.005,
            "worst corrected margin drifted: {}",
            timer.worst_margin
        );
        // The headroom band cuts both ways: below the floor the mechanism
        // drifted toward the e^epsilon bound; above the ceiling the
        // statistical tolerance regrew (e.g. someone widened z or thinned
        // the compared events).
        let headroom = timer.headroom();
        assert!(
            headroom > 1.02 && headroom < 1.20,
            "DP-Timer headroom left its pinned band: {headroom}"
        );
        // DP-ANT rides along loosely — it sits well inside the bound.
        let ant_headroom = verification.ant.headroom();
        assert!(
            ant_headroom > 1.5 && ant_headroom < 3.0,
            "DP-ANT headroom left its pinned band: {ant_headroom}"
        );
    }
}
