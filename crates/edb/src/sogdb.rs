//! The Secure Outsourced Growing Database (SOGDB) protocol interface.
//!
//! Definition 1 of the paper specifies a SOGDB as three protocols plus a
//! synchronization algorithm:
//!
//! * `Π_Setup((λ, D₀), ⊥, ⊥)` — owner outsources the initial database;
//! * `Π_Update(γ, DS_t, ⊥)` — owner appends a batch of (real + dummy)
//!   encrypted records;
//! * `Π_Query(⊥, DS_t, q_t)` — analyst evaluates a query against the
//!   outsourced structure;
//! * `Sync(D)` — the owner-side strategy (implemented in `dpsync-core`).
//!
//! [`SecureOutsourcedDatabase`] is the Rust rendering of the first three.
//! Engines are object-safe so the owner runtime and the experiment harness
//! can swap them freely (`Box<dyn SecureOutsourcedDatabase>`).

use crate::backend::StorageError;
use crate::cost::CostModel;
use crate::emm::IndexDef;
use crate::exec::ExecError;
use crate::leakage::LeakageProfile;
use crate::query::{Query, QueryAnswer};
use crate::schema::Schema;
use crate::server::AdversaryView;
use crate::views::ViewDef;
use dpsync_crypto::{CryptoError, EncryptedRecord};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Errors surfaced by SOGDB protocol implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum EdbError {
    /// A cryptographic failure (authentication, malformed ciphertext, ...).
    Crypto(CryptoError),
    /// A relational execution failure (unknown table/column).
    Exec(ExecError),
    /// The engine does not support this query shape (e.g. joins on the
    /// Crypt-ε-like engine, mirroring footnote 2 of the paper).
    UnsupportedQuery {
        /// Engine name.
        engine: &'static str,
        /// Query kind that was rejected.
        kind: &'static str,
    },
    /// Setup was called twice for the same table.
    AlreadySetUp(String),
    /// Update or query referenced a table that was never set up.
    NotSetUp(String),
    /// A stored row failed to decode after decryption.
    CorruptRow(String),
    /// The storage backend failed (I/O error, on-disk corruption).
    ///
    /// Carried through from [`crate::backend::StorageError`] so owner and
    /// analyst code paths propagate backend failures cleanly instead of
    /// panicking; the underlying error is reachable via
    /// [`std::error::Error::source`].
    Storage(StorageError),
    /// `query_view` referenced a view name that was never registered.
    UnknownView(String),
    /// A view registration was rejected: unsupported query shape, a reserved
    /// column reference, or a name already bound to a different definition.
    InvalidView(String),
    /// `query_indexed` referenced an index name that was never registered.
    UnknownIndex(String),
    /// An index registration or indexed read was rejected: an unindexable
    /// column type, a name already bound to a different definition, or a
    /// query the named index cannot serve.
    InvalidIndex(String),
}

impl std::fmt::Display for EdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdbError::Crypto(e) => write!(f, "crypto error: {e}"),
            EdbError::Exec(e) => write!(f, "execution error: {e}"),
            EdbError::UnsupportedQuery { engine, kind } => {
                write!(f, "engine `{engine}` does not support {kind} queries")
            }
            EdbError::AlreadySetUp(t) => write!(f, "table `{t}` was already set up"),
            EdbError::NotSetUp(t) => write!(f, "table `{t}` has not been set up"),
            EdbError::CorruptRow(msg) => write!(f, "corrupt row: {msg}"),
            EdbError::Storage(e) => write!(f, "storage error: {e}"),
            EdbError::UnknownView(name) => write!(f, "unknown view `{name}`"),
            EdbError::InvalidView(msg) => write!(f, "invalid view definition: {msg}"),
            EdbError::UnknownIndex(name) => write!(f, "unknown index `{name}`"),
            EdbError::InvalidIndex(msg) => write!(f, "invalid index use: {msg}"),
        }
    }
}

impl std::error::Error for EdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdbError::Crypto(e) => Some(e),
            EdbError::Exec(e) => Some(e),
            EdbError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for EdbError {
    fn from(e: CryptoError) -> Self {
        EdbError::Crypto(e)
    }
}

impl From<ExecError> for EdbError {
    fn from(e: ExecError) -> Self {
        EdbError::Exec(e)
    }
}

impl From<StorageError> for EdbError {
    fn from(e: StorageError) -> Self {
        EdbError::Storage(e)
    }
}

/// Size statistics of one outsourced table, as measurable by the owner or the
/// experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of ciphertexts stored on the server.
    pub ciphertext_count: u64,
    /// Total ciphertext bytes stored on the server.
    pub ciphertext_bytes: u64,
    /// Number of real (non-dummy) records among them.
    pub real_records: u64,
    /// Number of dummy records among them.
    pub dummy_records: u64,
}

impl TableStats {
    /// Dummy bytes, assuming all ciphertexts share the fixed record size.
    pub fn dummy_bytes(&self) -> u64 {
        self.ciphertext_bytes
            .checked_div(self.ciphertext_count)
            .map_or(0, |per_record| self.dummy_records * per_record)
    }
}

/// The outcome of one `Π_Query` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The answer released to the analyst.
    pub answer: QueryAnswer,
    /// Estimated query execution time under the engine's [`CostModel`]
    /// (stands in for the paper's testbed wall-clock QET).
    pub estimated_seconds: f64,
    /// Wall-clock seconds this simulated execution actually took.
    pub measured_seconds: f64,
    /// Number of ciphertexts the engine touched.
    pub touched_records: u64,
}

/// The SOGDB protocol suite exposed by every engine.
///
/// All protocol methods take `&self`: engine state is sharded per table
/// behind interior locks (see [`crate::server::ServerStorage`]), so several
/// owners — one per table, each on its own thread — can run `Π_Update`
/// concurrently against one engine without serializing on a global lock.
/// The `Send + Sync` bound is what lets the simulation driver share a
/// `&dyn SecureOutsourcedDatabase` across those owner threads.
pub trait SecureOutsourcedDatabase: Send + Sync {
    /// A short engine name ("oblidb", "crypt-epsilon").
    fn name(&self) -> &'static str;

    /// The engine's leakage profile (determines DP-Sync compatibility, §6).
    fn leakage_profile(&self) -> LeakageProfile;

    /// The engine's cost model.
    fn cost_model(&self) -> CostModel;

    /// `Π_Setup`: creates `table` with `schema` and ingests the initial batch
    /// of encrypted records at time 0.
    fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError>;

    /// `Π_Update`: appends a batch of encrypted records to `table` at `time`.
    ///
    /// Locks only `table`'s shard — updates to distinct tables proceed in
    /// parallel.
    fn update(&self, table: &str, time: u64, records: Vec<EncryptedRecord>)
        -> Result<(), EdbError>;

    /// `Π_Query`: evaluates `query` over the current outsourced structure.
    fn query(&self, query: &Query, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError>;

    /// Whether the engine supports this query shape.
    fn supports(&self, query: &Query) -> bool;

    /// Size statistics for `table` (zeroes when the table does not exist).
    fn table_stats(&self, table: &str) -> TableStats;

    /// The transcript of everything the server has observed.
    fn adversary_view(&self) -> AdversaryView;

    /// Registers a materialized view so subsequent `Π_Update` batches are
    /// applied to it incrementally (see [`crate::views`]).
    ///
    /// Registration is idempotent for an identical definition.  The default
    /// implementation rejects views so engines opt in explicitly.
    fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        let _ = def;
        Err(EdbError::UnsupportedQuery {
            engine: self.name(),
            kind: "view",
        })
    }

    /// `Π_Query` served from a registered materialized view in O(result
    /// size), instead of rescanning the table.
    ///
    /// Engines must keep the released transcript (query observation, touched
    /// record count, estimated QET, and any DP noise drawn from `rng`)
    /// byte-identical to what [`SecureOutsourcedDatabase::query`] on the
    /// view's underlying query would have produced — only the measured wall
    /// clock may differ.  The default implementation rejects view reads.
    fn query_view(&self, name: &str, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        let _ = (name, rng);
        Err(EdbError::UnsupportedQuery {
            engine: self.name(),
            kind: "view",
        })
    }

    /// Registers an encrypted-multimap selection index so subsequent
    /// `Π_Update` batches maintain it incrementally (see [`crate::emm`]).
    ///
    /// Registration is idempotent for an identical definition.  The default
    /// implementation rejects indexes so engines opt in explicitly.
    fn register_index(&self, def: &IndexDef) -> Result<(), EdbError> {
        let _ = def;
        Err(EdbError::UnsupportedQuery {
            engine: self.name(),
            kind: "index",
        })
    }

    /// `Π_Query` served through a registered encrypted multimap: only the
    /// index entries matching the query's condition on the indexed column are
    /// fetched, instead of scanning the whole table.
    ///
    /// Unlike [`SecureOutsourcedDatabase::query_view`], an indexed read has a
    /// *different* declared transcript: the server observes kind `"index"`
    /// and a touched-record count equal to the number of index entries
    /// fetched (a response-volume signal).  The leakage-aware planner in
    /// `dpsync-core` only chooses this path under a policy that permits that
    /// leakage; the released *answer* must still equal the full scan's
    /// bit-for-bit.  The default implementation rejects indexed reads.
    fn query_indexed(
        &self,
        name: &str,
        query: &Query,
        rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, EdbError> {
        let _ = (name, query, rng);
        Err(EdbError::UnsupportedQuery {
            engine: self.name(),
            kind: "index",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_stats_dummy_bytes() {
        let stats = TableStats {
            ciphertext_count: 10,
            ciphertext_bytes: 950,
            real_records: 7,
            dummy_records: 3,
        };
        assert_eq!(stats.dummy_bytes(), 3 * 95);
        assert_eq!(TableStats::default().dummy_bytes(), 0);
    }

    #[test]
    fn error_display_and_conversions() {
        let e: EdbError = CryptoError::AuthenticationFailed.into();
        assert!(e.to_string().contains("crypto"));
        let e: EdbError = ExecError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e = EdbError::UnsupportedQuery {
            engine: "crypt-epsilon",
            kind: "join",
        };
        assert!(e.to_string().contains("join"));
        assert!(EdbError::AlreadySetUp("x".into())
            .to_string()
            .contains("already"));
        assert!(EdbError::NotSetUp("x".into())
            .to_string()
            .contains("not been set up"));
        assert!(EdbError::CorruptRow("bad".into())
            .to_string()
            .contains("bad"));
        assert!(EdbError::UnknownView("q1".into())
            .to_string()
            .contains("unknown view `q1`"));
        assert!(EdbError::InvalidView("join shape".into())
            .to_string()
            .contains("invalid view definition"));
        assert!(EdbError::UnknownIndex("idx".into())
            .to_string()
            .contains("unknown index `idx`"));
        assert!(EdbError::InvalidIndex("float column".into())
            .to_string()
            .contains("invalid index use"));
    }

    #[test]
    fn storage_errors_convert_and_expose_their_source() {
        use std::error::Error as _;
        let inner = StorageError::Io {
            path: "/data/seg-000001.dpl".into(),
            message: "disk full".into(),
        };
        let e: EdbError = inner.clone().into();
        assert!(matches!(e, EdbError::Storage(_)));
        assert!(e.to_string().contains("disk full"));
        let source = e.source().expect("storage errors carry a source");
        assert_eq!(source.to_string(), inner.to_string());
        // Non-wrapping variants have no source.
        assert!(EdbError::NotSetUp("t".into()).source().is_none());
    }
}
