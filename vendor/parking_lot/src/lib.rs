//! Offline stand-in for `parking_lot`, implemented over `std::sync` locks.
//!
//! Matches parking_lot's non-poisoning API: `read()` / `write()` / `lock()`
//! return guards directly. A poisoned std lock (a panic while held) is
//! recovered by taking the inner data anyway, mirroring parking_lot's
//! semantics of not propagating poison.

#![forbid(unsafe_code)]

use std::sync;

// Upstream parking_lot exposes its guard types; mirror that so downstream
// code can name them in type annotations.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
