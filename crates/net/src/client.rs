//! [`RemoteEdb`]: a [`SecureOutsourcedDatabase`] that lives across a socket.
//!
//! The client implements the full SOGDB trait, so `Owner`, `Analyst` and the
//! simulation drivers run over TCP *unchanged* — a `&RemoteEdb` drops in
//! wherever a `&dyn SecureOutsourcedDatabase` is expected.  One connection is
//! one session: on a shared-mode server every client sees the same engine; on
//! a factory-mode server (`dpsync-serve`) each connection gets its own.
//!
//! # Error mapping
//!
//! Protocol failures reported by the server round-trip as the original
//! [`EdbError`].  *Transport* failures (connection reset, deadline, framing)
//! have no variant of their own — deliberately, so the error surface is
//! identical across transports — and are mapped onto
//! [`EdbError::Storage`] / [`StorageError::Io`] with the peer address as the
//! path, preserving the full failure text in the source chain.
//!
//! The trait's infallible observers (`table_stats`, `adversary_view`,
//! `supports`) have no error channel at all; on a dead transport they panic
//! with the transport failure.  A vanished server mid-simulation is not a
//! recoverable condition for the harness, and silently returning zeroed
//! stats would corrupt experiment results invisibly.

use crate::frame::{read_frame, FrameError, FrameWriter};
use crate::wire::{BackendRequest, EntropyDraw, Request, Response, SessionRequest};
use dpsync_crypto::{EncryptedRecord, MasterKey};
use dpsync_edb::cost::CostModel;
use dpsync_edb::emm::IndexDef;
use dpsync_edb::engines::EngineKind;
use dpsync_edb::leakage::LeakageProfile;
use dpsync_edb::sogdb::{QueryOutcome, SecureOutsourcedDatabase, TableStats};
use dpsync_edb::views::ViewDef;
use dpsync_edb::{AdversaryView, EdbError, Query, Schema, StorageError};
use parking_lot::Mutex;
use rand::RngCore;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default client-side I/O timeout.  Generous: it exists to turn a hung
/// server into a diagnosable error, not to bound query latency.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// The timeout [`RemoteEdb::connect`] / [`RemoteEdb::connect_engine`] use:
/// the `DPSYNC_NET_TIMEOUT_SECS` environment variable when set (`0` disables
/// the timeout entirely), [`DEFAULT_CLIENT_TIMEOUT`] otherwise.
///
/// The environment hook exists for very large remote runs: a full-scale
/// `Π_Query` can legitimately keep the server silent for minutes of
/// server-side compute, and the experiment harness constructs its clients
/// through the default-connect path.
pub fn client_timeout() -> Option<Duration> {
    match std::env::var("DPSYNC_NET_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(0) => None,
        Some(secs) => Some(Duration::from_secs(secs)),
        None => Some(DEFAULT_CLIENT_TIMEOUT),
    }
}

/// A remote secure outsourced database reached over TCP.
#[derive(Debug)]
pub struct RemoteEdb {
    /// The connection plus its reusable outbound frame buffer; they travel
    /// under one lock because a request and its entropy replies must not
    /// interleave with another caller's frames.
    conn: Mutex<Connection>,
    peer: String,
    name: &'static str,
    profile: LeakageProfile,
    cost: CostModel,
}

#[derive(Debug)]
struct Connection {
    stream: TcpStream,
    writer: FrameWriter,
}

pub(crate) fn transport_error(peer: &str, message: impl std::fmt::Display) -> EdbError {
    EdbError::Storage(StorageError::Io {
        path: format!("tcp://{peer}"),
        message: message.to_string(),
    })
}

/// Maps the server-announced engine name onto the `&'static str` the trait
/// requires.  Unknown names collapse onto `"remote"` rather than leaking a
/// string per connection.
pub(crate) fn intern_name(name: &str) -> &'static str {
    match name {
        "oblidb" => "oblidb",
        "crypt-epsilon" => "crypt-epsilon",
        _ => "remote",
    }
}

impl RemoteEdb {
    /// Connects to a shared-mode server and attaches to its engine, with
    /// the [`client_timeout`] I/O timeout.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, EdbError> {
        Self::open(addr, SessionRequest::Shared, client_timeout())
    }

    /// Connects to a factory-mode server (`dpsync-serve`) and asks it to
    /// build a fresh engine for this connection.
    pub fn connect_engine(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        engine: EngineKind,
        master: &MasterKey,
        backend: BackendRequest,
    ) -> Result<Self, EdbError> {
        Self::open(
            addr,
            SessionRequest::NewEngine {
                engine,
                master_key: *master.bytes(),
                backend,
            },
            client_timeout(),
        )
    }

    /// As [`RemoteEdb::connect`] / [`RemoteEdb::connect_engine`] with an
    /// explicit I/O timeout (`None` waits indefinitely).
    pub fn open(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        session: SessionRequest,
        timeout: Option<Duration>,
    ) -> Result<Self, EdbError> {
        // `&str` debug-renders with quotes; strip them so the label reads as
        // an address in error messages.
        let peer_label = format!("{addr:?}").trim_matches('"').to_string();
        let stream = TcpStream::connect(&addr).map_err(|e| transport_error(&peer_label, e))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or(peer_label);
        stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(timeout))
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(|e| transport_error(&peer, e))?;

        let mut client = Self {
            conn: Mutex::new(Connection {
                stream,
                writer: FrameWriter::new(),
            }),
            peer,
            name: "remote",
            profile: LeakageProfile {
                class: dpsync_edb::LeakageClass::L2RevealAccessPattern,
                update_leaks_beyond_pattern: true,
                native_dummy_support: false,
            },
            cost: CostModel::oblidb(),
        };
        match client.call(Request::Hello(session), None)? {
            Response::EngineInfo {
                name,
                profile,
                cost,
            } => {
                client.name = intern_name(&name);
                client.profile = profile;
                client.cost = cost;
                Ok(client)
            }
            // A session rejection (wrong mode, missing disk root, ...) is an
            // expected, actionable answer — surface the server's message
            // directly instead of burying it in a Debug rendering.
            Response::Protocol(message) => Err(transport_error(
                &client.peer,
                format!("server rejected the session: {message}"),
            )),
            other => Err(client.unexpected(other)),
        }
    }

    /// The peer address this client is bound to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    fn unexpected(&self, response: Response) -> EdbError {
        transport_error(&self.peer, format!("unexpected response: {response:?}"))
    }

    fn io_failed(&self, error: impl std::fmt::Display) -> EdbError {
        transport_error(&self.peer, error)
    }

    /// Sends one request and reads its response, answering any interleaved
    /// entropy requests from `rng` (only `Π_Query` produces them).
    ///
    /// The connection lock is held across the whole exchange, so concurrent
    /// callers of the trait serialize per request — the wire protocol has
    /// one outstanding request per connection by construction.
    fn call(
        &self,
        request: Request,
        mut rng: Option<&mut dyn RngCore>,
    ) -> Result<Response, EdbError> {
        let mut conn = self.conn.lock();
        let conn = &mut *conn;
        conn.writer
            .write_frame(&mut conn.stream, &request.encode())
            .map_err(|e| self.io_failed(e))?;
        loop {
            let payload = match read_frame(&mut conn.stream) {
                Ok(payload) => payload,
                Err(FrameError::Closed) => {
                    return Err(self.io_failed("server closed the connection"))
                }
                Err(e) => return Err(self.io_failed(e)),
            };
            let response = Response::decode(&payload).map_err(|e| self.io_failed(e))?;
            let Response::EntropyRequest(draw) = response else {
                return Ok(response);
            };
            let Some(rng) = rng.as_deref_mut() else {
                return Err(self.io_failed("server requested entropy outside a query"));
            };
            let bytes = match draw {
                EntropyDraw::U32 => rng.next_u32().to_le_bytes().to_vec(),
                EntropyDraw::U64 => rng.next_u64().to_le_bytes().to_vec(),
                EntropyDraw::Fill(n) => {
                    // The server never legitimately asks for more than a few
                    // bytes per draw; cap defensively so a compromised server
                    // cannot demand unbounded memory.
                    if n as usize > crate::frame::MAX_FRAME_LEN / 2 {
                        return Err(self.io_failed("oversized entropy request"));
                    }
                    let mut buf = vec![0u8; n as usize];
                    rng.fill_bytes(&mut buf);
                    buf
                }
            };
            conn.writer
                .write_frame(&mut conn.stream, &Request::EntropyReply(bytes).encode())
                .map_err(|e| self.io_failed(e))?;
        }
    }

    fn expect_ok(&self, response: Response) -> Result<(), EdbError> {
        match response {
            Response::Ok => Ok(()),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }
}

impl SecureOutsourcedDatabase for RemoteEdb {
    fn name(&self) -> &'static str {
        self.name
    }

    fn leakage_profile(&self) -> LeakageProfile {
        self.profile.clone()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        let response = self.call(
            Request::Setup {
                table: table.to_string(),
                schema,
                records,
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn update(
        &self,
        table: &str,
        time: u64,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        let response = self.call(
            Request::Update {
                table: table.to_string(),
                time,
                records,
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn query(&self, query: &Query, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        match self.call(Request::Query(query.clone()), Some(rng))? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }

    fn supports(&self, query: &Query) -> bool {
        match self.call(Request::Supports(query.clone()), None) {
            Ok(Response::Supported(supported)) => supported,
            Ok(other) => panic!(
                "remote edb at {}: unexpected response to supports: {other:?}",
                self.peer
            ),
            Err(e) => panic!("remote edb at {}: supports failed: {e}", self.peer),
        }
    }

    fn table_stats(&self, table: &str) -> TableStats {
        match self.call(Request::TableStats(table.to_string()), None) {
            Ok(Response::Stats(stats)) => stats,
            Ok(other) => panic!(
                "remote edb at {}: unexpected response to table_stats: {other:?}",
                self.peer
            ),
            Err(e) => panic!("remote edb at {}: table_stats failed: {e}", self.peer),
        }
    }

    fn adversary_view(&self) -> AdversaryView {
        match self.call(Request::AdversaryView, None) {
            Ok(Response::View(view)) => view,
            Ok(other) => panic!(
                "remote edb at {}: unexpected response to adversary_view: {other:?}",
                self.peer
            ),
            Err(e) => panic!("remote edb at {}: adversary_view failed: {e}", self.peer),
        }
    }

    fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        let response = self.call(
            Request::RegisterView {
                name: def.name().to_string(),
                query: def.query().clone(),
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn query_view(&self, name: &str, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        // Like `query`: the server may interleave entropy requests (Crypt-ε
        // draws its per-read noise through the caller's rng), so the rng
        // rides along.
        match self.call(Request::QueryView(name.to_string()), Some(rng))? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }

    fn register_index(&self, def: &IndexDef) -> Result<(), EdbError> {
        let response = self.call(
            Request::RegisterIndex {
                name: def.name().to_string(),
                table: def.table().to_string(),
                column: def.column().to_string(),
            },
            None,
        )?;
        self.expect_ok(response)
    }

    fn query_indexed(
        &self,
        name: &str,
        query: &Query,
        rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, EdbError> {
        // Like `query_view`: the rng rides along for Crypt-ε's noise draws.
        match self.call(
            Request::QueryIndexed {
                name: name.to_string(),
                query: query.clone(),
            },
            Some(rng),
        )? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Edb(e) => Err(e),
            Response::Protocol(message) => Err(self.io_failed(message)),
            other => Err(self.unexpected(other)),
        }
    }
}
