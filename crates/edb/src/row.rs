//! Rows and their compact binary serialization.
//!
//! A [`Row`] is an ordered list of [`Value`]s matching a [`Schema`].  Rows are
//! serialized into a compact tag-prefixed binary format before encryption so
//! that the paper's taxi schema fits comfortably inside the fixed
//! [`dpsync_crypto::RECORD_PAYLOAD_LEN`] payload of an encrypted record.

use crate::schema::{Schema, Value};
use serde::{Deserialize, Serialize};

/// A row of typed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

/// Errors raised when decoding a serialized row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowDecodeError {
    /// The byte stream ended in the middle of a value.
    UnexpectedEnd,
    /// An unknown type tag was encountered.
    UnknownTag(u8),
    /// A text value was not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for RowDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowDecodeError::UnexpectedEnd => write!(f, "row bytes ended unexpectedly"),
            RowDecodeError::UnknownTag(t) => write!(f, "unknown row value tag {t}"),
            RowDecodeError::InvalidUtf8 => write!(f, "text value is not valid UTF-8"),
        }
    }
}

impl std::error::Error for RowDecodeError {}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TIMESTAMP: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_TEXT: u8 = 5;

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The row's values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at `index`, if within bounds.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// The value of the named column under `schema`.
    pub fn value_by_name<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.column_index(name).and_then(|i| self.values.get(i))
    }

    /// Projects the row onto the given column indices (missing indices become NULL).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(
            indices
                .iter()
                .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }

    /// Consumes the row, returning its values without cloning.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Serializes the row to a compact byte string.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.values.len() * 9 + 1);
        self.encode_into(&mut out);
        out
    }

    /// Serializes the row into `out` (appended), so batch encoders can reuse
    /// one buffer across rows instead of allocating per row.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.values.len() as u8);
        for v in &self.values {
            match v {
                Value::Null => out.push(TAG_NULL),
                Value::Int(i) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&f.to_le_bytes());
                }
                Value::Timestamp(t) => {
                    out.push(TAG_TIMESTAMP);
                    out.extend_from_slice(&t.to_le_bytes());
                }
                Value::Bool(b) => {
                    out.push(TAG_BOOL);
                    out.push(u8::from(*b));
                }
                Value::Text(s) => {
                    out.push(TAG_TEXT);
                    let bytes = s.as_bytes();
                    let len = bytes.len().min(u8::MAX as usize);
                    out.push(len as u8);
                    out.extend_from_slice(&bytes[..len]);
                }
            }
        }
    }

    /// Decodes a row previously produced by [`Row::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RowDecodeError> {
        let mut cursor = 0usize;
        let take = |cursor: &mut usize, n: usize| -> Result<&[u8], RowDecodeError> {
            if *cursor + n > bytes.len() {
                Err(RowDecodeError::UnexpectedEnd)
            } else {
                let slice = &bytes[*cursor..*cursor + n];
                *cursor += n;
                Ok(slice)
            }
        };

        let arity = take(&mut cursor, 1)?[0] as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = take(&mut cursor, 1)?[0];
            let value = match tag {
                TAG_NULL => Value::Null,
                TAG_INT => Value::Int(i64::from_le_bytes(
                    take(&mut cursor, 8)?.try_into().expect("8 bytes"),
                )),
                TAG_FLOAT => Value::Float(f64::from_le_bytes(
                    take(&mut cursor, 8)?.try_into().expect("8 bytes"),
                )),
                TAG_TIMESTAMP => Value::Timestamp(u64::from_le_bytes(
                    take(&mut cursor, 8)?.try_into().expect("8 bytes"),
                )),
                TAG_BOOL => Value::Bool(take(&mut cursor, 1)?[0] != 0),
                TAG_TEXT => {
                    let len = take(&mut cursor, 1)?[0] as usize;
                    let raw = take(&mut cursor, len)?;
                    Value::Text(
                        std::str::from_utf8(raw)
                            .map_err(|_| RowDecodeError::InvalidUtf8)?
                            .to_string(),
                    )
                }
                other => return Err(RowDecodeError::UnknownTag(other)),
            };
            values.push(value);
        }
        Ok(Row::new(values))
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn sample_row() -> Row {
        Row::new(vec![
            Value::Timestamp(1234),
            Value::Int(42),
            Value::Int(-7),
            Value::Float(3.25),
            Value::Bool(true),
            Value::Text("yellow".into()),
            Value::Null,
        ])
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let row = sample_row();
        let bytes = row.to_bytes();
        assert_eq!(Row::from_bytes(&bytes).unwrap(), row);
    }

    #[test]
    fn taxi_row_fits_in_record_payload() {
        let row = Row::new(vec![
            Value::Timestamp(43_199),
            Value::Int(265),
            Value::Int(131),
            Value::Float(12.75),
            Value::Float(38.20),
        ]);
        assert!(
            row.to_bytes().len() <= dpsync_crypto::RECORD_PAYLOAD_LEN,
            "taxi row is {} bytes",
            row.to_bytes().len()
        );
    }

    #[test]
    fn truncated_bytes_error() {
        let bytes = sample_row().to_bytes();
        for cut in [0usize, 1, 5, bytes.len() - 1] {
            assert!(
                matches!(
                    Row::from_bytes(&bytes[..cut]),
                    Err(RowDecodeError::UnexpectedEnd)
                ),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let bytes = vec![1u8, 200u8];
        assert_eq!(
            Row::from_bytes(&bytes),
            Err(RowDecodeError::UnknownTag(200))
        );
    }

    #[test]
    fn long_text_is_truncated_not_panicking() {
        let long = "x".repeat(500);
        let row = Row::new(vec![Value::Text(long)]);
        let decoded = Row::from_bytes(&row.to_bytes()).unwrap();
        match decoded.value(0).unwrap() {
            Value::Text(s) => assert_eq!(s.len(), 255),
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn value_by_name_uses_schema_ordering() {
        let schema = Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ]);
        let row = Row::new(vec![Value::Timestamp(5), Value::Int(99)]);
        assert_eq!(
            row.value_by_name(&schema, "pickup_id"),
            Some(&Value::Int(99))
        );
        assert_eq!(row.value_by_name(&schema, "nope"), None);
    }

    #[test]
    fn project_selects_and_pads_with_null() {
        let row = Row::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let projected = row.project(&[2, 0, 9]);
        assert_eq!(
            projected.values(),
            &[Value::Int(3), Value::Int(1), Value::Null]
        );
    }

    #[test]
    fn arity_and_value_accessors() {
        let row = sample_row();
        assert_eq!(row.arity(), 7);
        assert_eq!(row.value(1), Some(&Value::Int(42)));
        assert_eq!(row.value(99), None);
    }

    #[test]
    fn decode_error_display() {
        assert!(RowDecodeError::UnexpectedEnd.to_string().contains("ended"));
        assert!(RowDecodeError::UnknownTag(9).to_string().contains('9'));
        assert!(RowDecodeError::InvalidUtf8.to_string().contains("UTF-8"));
    }

    #[test]
    fn invalid_utf8_text_is_rejected() {
        // tag TEXT, len 2, invalid UTF-8 bytes
        let bytes = vec![1u8, TAG_TEXT, 2, 0xff, 0xfe];
        assert_eq!(Row::from_bytes(&bytes), Err(RowDecodeError::InvalidUtf8));
    }
}
