//! Workload generation for the DP-Sync evaluation.
//!
//! The paper evaluates on the June 2020 NYC Yellow Cab and Green Boro taxi
//! trip records (≈18.4k and ≈21.3k records after cleaning, replayed over the
//! month's 43 200 one-minute time units with at most one record per minute).
//! Those CSVs are not redistributable with this repository, so this crate
//! provides:
//!
//! * [`taxi`] — a synthetic generator that reproduces the statistical shape
//!   that the evaluation depends on: record counts, a diurnal arrival
//!   process over 43 200 minutes, the ≤1-record-per-minute dedup rule, and
//!   the taxi schema (pickup time, pickup/dropoff zone 1–265, distance,
//!   fare).  The generator is deterministic given a seed.
//! * [`csv`] — a loader for the real TLC CSV files, so the experiments can be
//!   re-run against the original data when it is available locally.
//! * [`arrival`] — reusable arrival-process models (Bernoulli, Poisson-like
//!   bursts, diurnal profiles) for workloads beyond the taxi trace.
//! * [`queries`] — the evaluation queries Q1/Q2/Q3 with their paper labels.
//! * [`scale`] — the open-loop fleet generator behind `exp_scale`:
//!   heavy-tailed per-owner rates, diurnal bursts, flash crowds, and owner
//!   churn for 10^5–10^6 seed-deterministic owners.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrival;
pub mod csv;
pub mod queries;
pub mod scale;
pub mod taxi;

pub use arrival::ArrivalProcess;
pub use scale::ScaleProfile;
pub use taxi::{TaxiConfig, TaxiDataset, TaxiRecord};
