//! An explicit query/update cost model.
//!
//! The paper reports wall-clock query execution times (QET) measured on an
//! SGX testbed (ObliDB) and a crypto-assisted DP engine (Crypt-ε).  Absolute
//! seconds cannot be reproduced without that hardware, but the *shape* of
//! every QET figure is determined by how many ciphertexts each strategy
//! leaves on the server — QET is "essentially a linear combination of the
//! amount of outsourced data" (§4.5.1).  The cost model makes that linear
//! relationship explicit and is calibrated so that the default workload sizes
//! land in the same ballpark as the paper's Table 5, which keeps the
//! regenerated tables readable side-by-side with the original.
//!
//! Engines also report real wall-clock time for their (plaintext-simulated)
//! execution; both numbers appear in experiment outputs.

use serde::{Deserialize, Serialize};

/// Per-operation cost coefficients, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-query overhead (protocol setup, enclave entry, ...).
    pub query_overhead: f64,
    /// Cost per record scanned by a filtered count (Q1-style).
    pub count_per_record: f64,
    /// Cost per record scanned by a group-by aggregation (Q2-style).
    pub group_by_per_record: f64,
    /// Cost per *pair of records* considered by a join (Q3-style, O(N·M)).
    pub join_per_pair: f64,
    /// Cost per record processed by the update protocol.
    pub update_per_record: f64,
    /// Cost per record processed by the setup protocol.
    pub setup_per_record: f64,
}

impl CostModel {
    /// Cost model calibrated to the ObliDB-like engine (oblivious scans in an
    /// enclave; joins are nested-loop oblivious and therefore quadratic).
    pub fn oblidb() -> Self {
        Self {
            query_overhead: 0.02,
            count_per_record: 2.9e-4,
            group_by_per_record: 1.25e-4,
            join_per_pair: 7.0e-9,
            update_per_record: 9.0e-5,
            setup_per_record: 9.0e-5,
        }
    }

    /// Cost model calibrated to the Crypt-ε-like engine (crypto-assisted
    /// aggregation; every released group requires heavier cryptographic
    /// machinery, joins are unsupported).
    pub fn crypt_epsilon() -> Self {
        Self {
            query_overhead: 0.3,
            count_per_record: 1.12e-3,
            group_by_per_record: 4.1e-3,
            join_per_pair: f64::INFINITY,
            update_per_record: 4.0e-4,
            setup_per_record: 4.0e-4,
        }
    }

    /// Estimated QET for a filtered count over `records` ciphertexts.
    pub fn count_cost(&self, records: u64) -> f64 {
        self.query_overhead + self.count_per_record * records as f64
    }

    /// Estimated QET for a group-by count over `records` ciphertexts.
    pub fn group_by_cost(&self, records: u64) -> f64 {
        self.query_overhead + self.group_by_per_record * records as f64
    }

    /// Estimated QET for a join over `left × right` ciphertext pairs.
    pub fn join_cost(&self, left: u64, right: u64) -> f64 {
        self.query_overhead + self.join_per_pair * (left as f64) * (right as f64)
    }

    /// Estimated cost of updating `records` ciphertexts.
    pub fn update_cost(&self, records: u64) -> f64 {
        self.update_per_record * records as f64
    }

    /// Estimated cost of the setup protocol over `records` ciphertexts.
    pub fn setup_cost(&self, records: u64) -> f64 {
        self.setup_per_record * records as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly_with_record_count() {
        let m = CostModel::oblidb();
        let one = m.count_cost(10_000) - m.query_overhead;
        let two = m.count_cost(20_000) - m.query_overhead;
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn join_cost_is_quadratic() {
        let m = CostModel::oblidb();
        let base = m.join_cost(10_000, 10_000) - m.query_overhead;
        let double_both = m.join_cost(20_000, 20_000) - m.query_overhead;
        assert!((double_both / base - 4.0).abs() < 1e-9);
    }

    #[test]
    fn oblidb_defaults_land_near_table5_scale() {
        // Table 5 (ObliDB / SUR): Q1 ≈ 5.4 s, Q2 ≈ 2.3 s, Q3 ≈ 2.8 s over
        // ≈18.4k (yellow) and ≈21.3k (green) records.
        let m = CostModel::oblidb();
        let q1 = m.count_cost(18_429);
        let q2 = m.group_by_cost(18_429);
        let q3 = m.join_cost(18_429, 21_300);
        assert!((3.0..8.0).contains(&q1), "q1={q1}");
        assert!((1.5..4.0).contains(&q2), "q2={q2}");
        assert!((1.5..5.0).contains(&q3), "q3={q3}");
    }

    #[test]
    fn crypt_epsilon_defaults_land_near_table5_scale() {
        // Table 5 (Crypt-ε / SUR): Q1 ≈ 21 s, Q2 ≈ 76 s.
        let m = CostModel::crypt_epsilon();
        let q1 = m.count_cost(18_429);
        let q2 = m.group_by_cost(18_429);
        assert!((15.0..30.0).contains(&q1), "q1={q1}");
        assert!((50.0..110.0).contains(&q2), "q2={q2}");
        assert!(m.join_cost(10, 10).is_infinite());
    }

    #[test]
    fn update_and_setup_costs_are_proportional() {
        let m = CostModel::oblidb();
        assert_eq!(m.update_cost(0), 0.0);
        assert!(m.update_cost(100) > 0.0);
        assert_eq!(m.setup_cost(1_000), m.setup_per_record * 1_000.0);
    }

    #[test]
    fn crypt_epsilon_is_slower_per_record_than_oblidb() {
        let c = CostModel::crypt_epsilon();
        let o = CostModel::oblidb();
        assert!(c.count_per_record > o.count_per_record);
        assert!(c.group_by_per_record > o.group_by_per_record);
    }
}
