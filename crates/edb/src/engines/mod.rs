//! Concrete encrypted-database engines.
//!
//! The paper evaluates DP-Sync on two systems drawn from different leakage
//! groups (§8): ObliDB (L-0, oblivious query processing inside SGX) and
//! Crypt-ε (L-DP, crypto-assisted differential privacy).  This module
//! provides simulators for both, sharing the storage/decryption plumbing in
//! [`base`]:
//!
//! * [`oblidb::ObliDbEngine`] — exact answers, oblivious full-scan cost,
//!   supports joins, reveals nothing about response volumes.
//! * [`crypte::CryptEpsilonEngine`] — DP-noised answers (per-query budget),
//!   heavier per-record cost, no join support, reveals only
//!   differentially-private response volumes.

pub mod base;
pub mod crypte;
pub mod oblidb;

pub use crypte::CryptEpsilonEngine;
pub use oblidb::ObliDbEngine;
