//! Composition of differentially private mechanisms.
//!
//! The security proofs of DP-Timer and DP-ANT (Theorems 10/11, 17/18) use two
//! composition rules:
//!
//! * **Sequential composition** (Lemma 15): mechanisms applied to the *same*
//!   data compose additively, `ε = ε₁ + ε₂`.
//! * **Parallel composition** (Lemma 16): mechanisms applied to *disjoint*
//!   data compose by the maximum, `ε = max(ε₁, ε₂)`.
//!
//! [`PrivacyAccountant`] tracks a running composition and is used by the
//! strategy implementations to expose the budget they have actually consumed,
//! and by tests to assert that every strategy stays within its configured ε.

use crate::Epsilon;

/// How two mechanisms relate to the data they observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Composition {
    /// Both mechanisms observe the same records (budgets add).
    Sequential,
    /// The mechanisms observe disjoint records (budgets take the max).
    Parallel,
}

impl Composition {
    /// Composes two budgets under this rule.
    pub fn compose(self, a: Epsilon, b: Epsilon) -> Epsilon {
        match self {
            Composition::Sequential => Epsilon::new_unchecked(a.value() + b.value()),
            Composition::Parallel => Epsilon::new_unchecked(a.value().max(b.value())),
        }
    }
}

/// Composes an iterator of budgets under sequential composition.
pub fn sequential<I: IntoIterator<Item = Epsilon>>(budgets: I) -> Option<Epsilon> {
    budgets.into_iter().fold(None, |acc, e| match acc {
        None => Some(e),
        Some(total) => Some(Composition::Sequential.compose(total, e)),
    })
}

/// Composes an iterator of budgets under parallel composition.
pub fn parallel<I: IntoIterator<Item = Epsilon>>(budgets: I) -> Option<Epsilon> {
    budgets.into_iter().fold(None, |acc, e| match acc {
        None => Some(e),
        Some(total) => Some(Composition::Parallel.compose(total, e)),
    })
}

/// A named expenditure recorded by the accountant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Expenditure {
    /// Human-readable label ("perturb", "svt-round", "setup", ...).
    pub label: String,
    /// Budget consumed by this mechanism invocation.
    pub epsilon: Epsilon,
    /// How this expenditure composes with the *previous* total.
    pub composition: Composition,
}

/// The remaining/consumed budget view of a [`PrivacyAccountant`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrivacyBudget {
    /// The total budget the owner configured.
    pub total: Epsilon,
    /// The budget consumed so far under the recorded composition.
    pub consumed: f64,
}

impl PrivacyBudget {
    /// Remaining budget (never negative).
    pub fn remaining(&self) -> f64 {
        (self.total.value() - self.consumed).max(0.0)
    }

    /// Whether the consumed budget exceeds the configured total (beyond a
    /// small floating point tolerance).
    pub fn exhausted(&self) -> bool {
        self.consumed > self.total.value() + 1e-9
    }
}

/// A running ledger of mechanism invocations and their composed privacy cost.
///
/// The accountant is deliberately conservative: it never *blocks* an
/// expenditure (the strategies are proven to respect their budget; the ledger
/// exists so tests and operators can verify that claim), but
/// [`PrivacyAccountant::budget`] reports whether the composed cost exceeds the
/// configured total.
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    total: Epsilon,
    ledger: Vec<Expenditure>,
    consumed: f64,
}

impl PrivacyAccountant {
    /// Creates an accountant for a total budget ε.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total,
            ledger: Vec::new(),
            consumed: 0.0,
        }
    }

    /// Records one mechanism invocation.
    pub fn spend(&mut self, label: impl Into<String>, epsilon: Epsilon, composition: Composition) {
        let consumed_before = self.consumed;
        self.consumed = match composition {
            Composition::Sequential => consumed_before + epsilon.value(),
            Composition::Parallel => consumed_before.max(epsilon.value()),
        };
        self.ledger.push(Expenditure {
            label: label.into(),
            epsilon,
            composition,
        });
    }

    /// The configured total budget.
    pub fn total(&self) -> Epsilon {
        self.total
    }

    /// The current budget view.
    pub fn budget(&self) -> PrivacyBudget {
        PrivacyBudget {
            total: self.total,
            consumed: self.consumed,
        }
    }

    /// The full expenditure ledger, in spend order.
    pub fn ledger(&self) -> &[Expenditure] {
        &self.ledger
    }

    /// Number of recorded expenditures.
    pub fn len(&self) -> usize {
        self.ledger.len()
    }

    /// Whether no expenditure has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ledger.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new_unchecked(v)
    }

    #[test]
    fn sequential_adds() {
        let total = sequential([eps(0.1), eps(0.2), eps(0.3)]).unwrap();
        assert!((total.value() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn parallel_takes_max() {
        let total = parallel([eps(0.1), eps(0.5), eps(0.3)]).unwrap();
        assert_eq!(total.value(), 0.5);
    }

    #[test]
    fn empty_composition_is_none() {
        assert!(sequential(std::iter::empty()).is_none());
        assert!(parallel(std::iter::empty()).is_none());
    }

    #[test]
    fn composition_enum_composes() {
        assert_eq!(
            Composition::Sequential.compose(eps(1.0), eps(2.0)).value(),
            3.0
        );
        assert_eq!(
            Composition::Parallel.compose(eps(1.0), eps(2.0)).value(),
            2.0
        );
    }

    #[test]
    fn accountant_tracks_dp_timer_shape() {
        // DP-Timer: setup (ε) composes in parallel with every per-window unit
        // mechanism (each ε, disjoint windows) => total consumption ε.
        let mut acc = PrivacyAccountant::new(eps(0.5));
        acc.spend("setup", eps(0.5), Composition::Parallel);
        for i in 0..100 {
            acc.spend(format!("window-{i}"), eps(0.5), Composition::Parallel);
        }
        let b = acc.budget();
        assert_eq!(b.consumed, 0.5);
        assert!(!b.exhausted());
        assert_eq!(acc.len(), 101);
    }

    #[test]
    fn accountant_tracks_dp_ant_shape() {
        // DP-ANT: within one round, SVT (ε/2) and Perturb (ε/2) compose
        // sequentially to ε; rounds compose in parallel (disjoint data).
        let total = eps(0.5);
        let mut acc = PrivacyAccountant::new(total);
        acc.spend("setup", total, Composition::Parallel);
        for i in 0..50 {
            // Each round replaces the running max with max(prev, ε/2 + ε/2).
            acc.spend(format!("svt-{i}"), total.halved(), Composition::Parallel);
            acc.spend(
                format!("perturb-{i}"),
                total.halved(),
                Composition::Sequential,
            );
            // The sequential spend inside a parallel block is conservative: the
            // consumed value may transiently exceed the max-rule total, so the
            // strategy layer resets between rounds. Here we just check the
            // accountant arithmetic itself.
        }
        assert!(acc.budget().consumed >= total.value());
    }

    #[test]
    fn exhausted_detects_overspend() {
        let mut acc = PrivacyAccountant::new(eps(0.3));
        acc.spend("a", eps(0.2), Composition::Sequential);
        assert!(!acc.budget().exhausted());
        acc.spend("b", eps(0.2), Composition::Sequential);
        assert!(acc.budget().exhausted());
        assert_eq!(acc.budget().remaining(), 0.0);
    }

    #[test]
    fn remaining_is_total_minus_consumed() {
        let mut acc = PrivacyAccountant::new(eps(1.0));
        acc.spend("a", eps(0.25), Composition::Sequential);
        assert!((acc.budget().remaining() - 0.75).abs() < 1e-12);
        assert!(!acc.is_empty());
    }

    #[test]
    fn ledger_preserves_order_and_labels() {
        let mut acc = PrivacyAccountant::new(eps(1.0));
        acc.spend("first", eps(0.1), Composition::Sequential);
        acc.spend("second", eps(0.2), Composition::Parallel);
        let labels: Vec<_> = acc.ledger().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["first", "second"]);
    }
}
