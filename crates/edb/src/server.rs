//! The untrusted server's storage and its adversarial view.
//!
//! DP-Sync's adversary is the semi-honest server (§4.3).  Everything the
//! server can observe while following the protocol is captured in
//! [`AdversaryView`]:
//!
//! * the **update pattern** — when updates happened and how many ciphertexts
//!   each carried (Definition 2),
//! * the **setup volume** — the size of the initial outsourcing,
//! * per-query observations — which kind of query ran and, depending on the
//!   engine's leakage class, the (possibly noisy) response volume.
//!
//! The privacy verification machinery in `dpsync-core` operates exclusively
//! on this transcript: it never looks at owner-side state, mirroring the
//! formal model in which the leakage function is all the adversary gets.
//!
//! # Sharding
//!
//! Storage is sharded **per table**: each table's ciphertexts and its slice
//! of the update-pattern transcript live in their own [`TableShard`] behind
//! an independent `RwLock`, so owners of different tables can run `Π_Update`
//! concurrently without serializing on one global lock.  The table map itself
//! is only write-locked when a new table is created; steady-state ingest
//! takes the map read lock just long enough to clone the shard handle.
//!
//! Concurrency does not change what the adversary formally sees: the
//! transcript of Definition 2 is a *set* of `(t, |γ_t|)` events, and
//! [`ServerStorage::adversary_view`] merges the per-table shards into one
//! canonical ordered transcript (sorted by time, then table name, then
//! per-table arrival index).  Both the sequential and the parallel simulation
//! drivers read the transcript through this merge, so the privacy verifier
//! always sees the same canonical view regardless of thread interleaving.

use crate::leakage::{UpdateEvent, UpdatePattern};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

pub use crate::view::{AdversaryView, QueryObservation};

/// Ciphertext storage for one table.
#[derive(Debug, Clone, Default)]
pub struct StoredTable {
    ciphertexts: Vec<Bytes>,
}

impl StoredTable {
    /// Number of stored ciphertexts.
    pub fn len(&self) -> usize {
        self.ciphertexts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ciphertexts.is_empty()
    }

    /// Total stored bytes.
    pub fn bytes(&self) -> u64 {
        self.ciphertexts.iter().map(|c| c.len() as u64).sum()
    }

    /// The raw ciphertexts.
    pub fn ciphertexts(&self) -> &[Bytes] {
        &self.ciphertexts
    }
}

/// One table's slice of the server: its ciphertexts plus the update events
/// the server observed for it, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct TableShard {
    table: StoredTable,
    updates: Vec<UpdateEvent>,
    ciphertext_bytes: u64,
}

impl TableShard {
    /// Appends a batch of ciphertexts at `time` and records the observation.
    pub fn ingest(&mut self, time: u64, ciphertexts: Vec<Bytes>) {
        let volume = ciphertexts.len() as u64;
        self.ciphertext_bytes += ciphertexts.iter().map(|c| c.len() as u64).sum::<u64>();
        self.table.ciphertexts.extend(ciphertexts);
        self.updates.push(UpdateEvent { time, volume });
    }

    /// The stored ciphertexts.
    pub fn stored(&self) -> &StoredTable {
        &self.table
    }

    /// The update events observed for this table, in arrival order.
    pub fn updates(&self) -> &[UpdateEvent] {
        &self.updates
    }

    /// Total ciphertext bytes received for this table.
    pub fn ciphertext_bytes(&self) -> u64 {
        self.ciphertext_bytes
    }
}

/// A shareable handle to one table's shard.
pub type ShardHandle = Arc<RwLock<TableShard>>;

/// The server's ciphertext store across tables, plus the adversary view.
///
/// All methods take `&self`: per-table state lives behind the shard locks and
/// the query transcript behind its own mutex, so one `ServerStorage` can be
/// driven by several owner threads at once.
#[derive(Debug, Default)]
pub struct ServerStorage {
    shards: RwLock<BTreeMap<String, ShardHandle>>,
    queries: Mutex<Vec<QueryObservation>>,
}

impl ServerStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard handle for `table`, creating it when absent.
    ///
    /// Steady-state callers hold the map lock only long enough to clone the
    /// `Arc`; all per-table work happens under the shard's own lock.
    pub fn shard(&self, table: &str) -> ShardHandle {
        if let Some(shard) = self.shards.read().get(table) {
            return Arc::clone(shard);
        }
        Arc::clone(self.shards.write().entry(table.to_string()).or_default())
    }

    /// The shard handle for `table`, when the table exists.
    pub fn existing_shard(&self, table: &str) -> Option<ShardHandle> {
        self.shards.read().get(table).map(Arc::clone)
    }

    /// Appends ciphertexts to a table and records the update observation.
    ///
    /// Only `table`'s shard is write-locked; owners of other tables proceed
    /// concurrently.
    pub fn ingest(&self, table: &str, time: u64, ciphertexts: Vec<Bytes>) {
        self.shard(table).write().ingest(time, ciphertexts);
    }

    /// Records a query observation.
    pub fn observe_query(&self, observation: QueryObservation) {
        self.queries.lock().push(observation);
    }

    /// Runs `f` over the stored table, if present (shard read-locked).
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&StoredTable) -> R) -> Option<R> {
        let shard = self.existing_shard(name)?;
        let guard = shard.read();
        Some(f(guard.stored()))
    }

    /// Number of ciphertexts in a table (0 when missing).
    pub fn ciphertext_count(&self, table: &str) -> u64 {
        self.with_table(table, |t| t.len() as u64).unwrap_or(0)
    }

    /// Total ciphertext bytes stored for a table (0 when missing).
    pub fn table_bytes(&self, table: &str) -> u64 {
        self.with_table(table, StoredTable::bytes).unwrap_or(0)
    }

    /// Total ciphertexts across all tables.
    pub fn total_ciphertexts(&self) -> u64 {
        let shards: Vec<ShardHandle> = self.shards.read().values().map(Arc::clone).collect();
        shards.iter().map(|s| s.read().stored().len() as u64).sum()
    }

    /// Total stored bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        let shards: Vec<ShardHandle> = self.shards.read().values().map(Arc::clone).collect();
        shards.iter().map(|s| s.read().stored().bytes()).sum()
    }

    /// Merges the per-table shards into the canonical adversary transcript.
    ///
    /// Update events are ordered by `(time, table name, per-table arrival
    /// index)` — a deterministic total order independent of how owner threads
    /// interleaved their uploads, so the privacy verifier sees the same
    /// transcript whether the simulation ran sequentially or sharded.
    pub fn adversary_view(&self) -> AdversaryView {
        let shards: Vec<(String, ShardHandle)> = self
            .shards
            .read()
            .iter()
            .map(|(name, shard)| (name.clone(), Arc::clone(shard)))
            .collect();

        // (time, table, per-table index) keys; BTreeMap iteration over table
        // names is already sorted, so a stable sort by time alone yields the
        // canonical (time, table, index) order.
        let mut events: Vec<UpdateEvent> = Vec::new();
        let mut total_bytes = 0u64;
        for (_, shard) in &shards {
            let guard = shard.read();
            events.extend_from_slice(guard.updates());
            total_bytes += guard.ciphertext_bytes();
        }
        events.sort_by_key(|e| e.time);

        let mut pattern = UpdatePattern::new();
        for e in events {
            pattern.record(e.time, e.volume);
        }

        let mut queries = self.queries.lock().clone();
        queries.sort_by_key(|q| q.sequence);
        AdversaryView::from_parts(pattern, queries, total_bytes)
    }

    /// The transcript restricted to one table (the per-owner view used by
    /// single-table privacy arguments; queries are global and omitted).
    pub fn table_view(&self, table: &str) -> AdversaryView {
        let mut pattern = UpdatePattern::new();
        let mut bytes = 0u64;
        if let Some(shard) = self.existing_shard(table) {
            let guard = shard.read();
            for e in guard.updates() {
                pattern.record(e.time, e.volume);
            }
            bytes = guard.ciphertext_bytes();
        }
        AdversaryView::from_parts(pattern, Vec::new(), bytes)
    }
}

/// A shareable handle to server storage (the analyst and the experiment
/// harness hold clones; the engine holds another).
pub type SharedServerStorage = Arc<ServerStorage>;

/// Creates a new shared server storage handle.
pub fn shared_storage() -> SharedServerStorage {
    Arc::new(ServerStorage::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ct(len: usize) -> Bytes {
        Bytes::from(vec![0u8; len])
    }

    #[test]
    fn ingest_accumulates_ciphertexts_and_pattern() {
        let s = ServerStorage::new();
        s.ingest("yellow", 0, vec![ct(95); 120]);
        s.ingest("yellow", 30, vec![ct(95); 4]);
        s.ingest("green", 30, vec![ct(95); 2]);
        assert_eq!(s.ciphertext_count("yellow"), 124);
        assert_eq!(s.ciphertext_count("green"), 2);
        assert_eq!(s.ciphertext_count("missing"), 0);
        assert_eq!(s.total_ciphertexts(), 126);
        assert_eq!(s.total_bytes(), 126 * 95);
        let view = s.adversary_view();
        let pattern = view.update_pattern();
        assert_eq!(pattern.len(), 3);
        assert_eq!(pattern.total_volume(), 126);
        assert_eq!(view.total_ciphertext_bytes(), 126 * 95);
    }

    #[test]
    fn merged_transcript_is_canonically_ordered() {
        let s = ServerStorage::new();
        // Interleave ingests out of time/table order.
        s.ingest("yellow", 30, vec![ct(10); 2]);
        s.ingest("green", 0, vec![ct(10); 5]);
        s.ingest("yellow", 0, vec![ct(10); 3]);
        s.ingest("green", 30, vec![ct(10); 1]);
        let view = s.adversary_view();
        // Sorted by (time, table): green@0, yellow@0, green@30, yellow@30.
        assert_eq!(view.update_pattern().times(), vec![0, 0, 30, 30]);
        assert_eq!(view.update_pattern().volumes(), vec![5, 3, 1, 2]);
    }

    #[test]
    fn table_view_restricts_to_one_shard() {
        let s = ServerStorage::new();
        s.ingest("yellow", 0, vec![ct(10); 3]);
        s.ingest("green", 5, vec![ct(10); 2]);
        let yellow = s.table_view("yellow");
        assert_eq!(yellow.update_pattern().times(), vec![0]);
        assert_eq!(yellow.update_pattern().total_volume(), 3);
        assert_eq!(yellow.total_ciphertext_bytes(), 30);
        assert!(s.table_view("missing").update_pattern().is_empty());
    }

    #[test]
    fn empty_updates_are_still_visible_events() {
        // An update carrying only zero ciphertexts would still be observed as
        // a protocol run; DP-Sync never produces one (Perturb returns nothing
        // when the noisy count is <= 0), but the server model must not hide it.
        let s = ServerStorage::new();
        s.ingest("t", 5, vec![]);
        let view = s.adversary_view();
        assert_eq!(view.update_pattern().len(), 1);
        assert_eq!(view.update_pattern().total_volume(), 0);
    }

    #[test]
    fn query_observations_are_appended_in_order() {
        let s = ServerStorage::new();
        for i in 0..3 {
            s.observe_query(QueryObservation {
                sequence: i,
                kind: "count".into(),
                touched_records: 10 * i,
                observed_response_volume: if i == 2 { Some(5) } else { None },
            });
        }
        let view = s.adversary_view();
        let qs = view.queries();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[2].observed_response_volume, Some(5));
        assert_eq!(qs[1].touched_records, 10);
    }

    #[test]
    fn stored_table_accessors() {
        let s = ServerStorage::new();
        s.ingest("t", 1, vec![ct(10), ct(20)]);
        s.with_table("t", |table| {
            assert_eq!(table.len(), 2);
            assert!(!table.is_empty());
            assert_eq!(table.bytes(), 30);
            assert_eq!(table.ciphertexts().len(), 2);
        })
        .unwrap();
        assert!(s.with_table("other", |_| ()).is_none());
        assert_eq!(s.table_bytes("t"), 30);
    }

    #[test]
    fn concurrent_ingest_to_disjoint_tables_merges_cleanly() {
        let shared = shared_storage();
        thread::scope(|scope| {
            for table in ["yellow", "green", "blue", "red"] {
                let storage = Arc::clone(&shared);
                scope.spawn(move || {
                    for t in 0..100u64 {
                        storage.ingest(table, t, vec![ct(10); 2]);
                    }
                });
            }
        });
        assert_eq!(shared.total_ciphertexts(), 4 * 100 * 2);
        let view = shared.adversary_view();
        assert_eq!(view.update_pattern().len(), 400);
        // Canonical order: times ascending, ties broken by table name.
        let times = view.update_pattern().times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(view.total_ciphertext_bytes(), 8000);
    }

    #[test]
    fn shared_storage_allows_concurrent_reads() {
        let shared = shared_storage();
        shared.ingest("t", 0, vec![ct(5)]);
        let a = Arc::clone(&shared);
        let b = Arc::clone(&shared);
        assert_eq!(a.total_ciphertexts(), b.total_ciphertexts());
    }
}
