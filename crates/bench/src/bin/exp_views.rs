//! `exp_views` — the materialized-view crossover sweep.
//!
//! Loads the paper's Q1 (range count) and Q2 (group-by count) shapes against
//! tables of increasing size, each with a 25% dummy-padding steady state, and
//! measures three things per size:
//!
//! * **full-scan latency** — `Π_Query` answered by scanning the encrypted
//!   mirror (the pre-view baseline, O(N));
//! * **view-read latency** — the same query served from an incrementally
//!   maintained [`MaterializedView`](dpsync_edb::MaterializedView) (O(result));
//! * **maintenance overhead** — the extra `Π_Update` ingest cost per record
//!   (dummies included — every padded record flows through the view delta
//!   path, so the overhead is a function only of the already-leaked update
//!   volume) with both paper views registered, versus plain ingest.
//!
//! From those it reports the **crossover**: a recurring query posed every
//! epoch costs `scan(N)` without a view and `Δ·maint + read` with one, where
//! `Δ` is the number of records ingested between poses (`--delta`, default
//! 128).  The sweep prints the smallest table size at which the view wins and
//! the break-even `Δ*` at the largest size — pose-to-pose ingest volumes
//! below `Δ*` favor the view.
//!
//! Output: an aligned text table plus an optional BENCH-format JSON report
//! (`--out FILE`) with per-size `views_q{1,2}_{scan,read}_N<rows>` entries,
//! `views_maint_overhead` (ns per maintained record in `median_ns_per_op`)
//! and `views_crossover` (crossover table size in `median_ns_per_op`, 0 when
//! the view wins at every swept size; largest-size Q1 speedup in
//! `throughput_per_sec`).
//!
//! Usage:
//!
//! ```text
//! exp_views [--seed 2021] [--delta 128] [--smoke] [--out FILE]
//! ```

use dpsync_bench::perf::{BenchReport, BenchResult, REPORT_VERSION};
use dpsync_bench::report::TextTable;
use dpsync_crypto::{MasterKey, RecordCryptor};
use dpsync_dp::DpRng;
use dpsync_edb::engines::base::encrypt_batch;
use dpsync_edb::engines::ObliDbEngine;
use dpsync_edb::query::paper_queries;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::{DataType, Row, Schema, Value, ViewDef};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Config {
    seed: u64,
    delta: u64,
    smoke: bool,
    out: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 2021,
            delta: 128,
            smoke: false,
            out: None,
        }
    }
}

const USAGE: &str = "usage: exp_views [--seed S] [--delta N] [--smoke] [--out FILE]";

fn parse_args() -> Config {
    let mut config = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let bad = |flag: &str, v: Option<&String>| -> ! {
        eprintln!(
            "exp_views: invalid value {:?} for `{flag}` (see --help)",
            v.map(String::as_str).unwrap_or("<missing>")
        );
        std::process::exit(2);
    };
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.seed = v;
                    i += 1;
                }
                None => bad("--seed", value(i)),
            },
            "--delta" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    config.delta = v;
                    i += 1;
                }
                None => bad("--delta", value(i)),
            },
            "--smoke" => config.smoke = true,
            "--out" => match value(i) {
                Some(v) => {
                    config.out = Some(v.clone());
                    i += 1;
                }
                None => bad("--out", None),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("exp_views: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    config
}

/// The same 5-column taxi-like schema the `exp_bench` query benchmarks load,
/// so the sweep's numbers line up with `query_q1_count` / `query_q1_view`.
fn taxi_like_schema() -> Schema {
    Schema::from_pairs(&[
        ("pick_time", DataType::Timestamp),
        ("pickup_id", DataType::Int),
        ("dropoff_id", DataType::Int),
        ("distance", DataType::Float),
        ("fare", DataType::Float),
    ])
}

fn synthetic_rows(n: usize, seed: u64) -> Vec<Row> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Timestamp(i as u64),
                Value::Int((next() % 265) as i64 + 1),
                Value::Int((next() % 265) as i64 + 1),
                Value::Float((next() % 3_000) as f64 / 100.0),
                Value::Float((next() % 10_000) as f64 / 100.0),
            ])
        })
        .collect()
}

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut() -> Duration) -> f64 {
    let mut elapsed: Vec<Duration> = (0..samples).map(|_| f()).collect();
    elapsed.sort();
    let median = if elapsed.len() % 2 == 1 {
        elapsed[elapsed.len() / 2]
    } else {
        (elapsed[elapsed.len() / 2 - 1] + elapsed[elapsed.len() / 2]) / 2
    };
    median.as_nanos().max(1) as f64
}

/// One swept table size: per-query latencies (ns) for scan and view reads.
struct SizePoint {
    rows: usize,
    scan_q1_ns: f64,
    read_q1_ns: f64,
    scan_q2_ns: f64,
    read_q2_ns: f64,
}

fn loaded_engine(rows: usize, seed: u64, with_views: bool) -> ObliDbEngine {
    let master = MasterKey::from_bytes([0xC4; 32]);
    let mut cryptor = RecordCryptor::new(&master);
    let engine = ObliDbEngine::new(&master);
    engine
        .setup(
            "views",
            taxi_like_schema(),
            encrypt_batch(&mut cryptor, &synthetic_rows(rows, seed), rows / 4),
        )
        .expect("fresh engine");
    if with_views {
        for (name, query) in [
            ("q1", paper_queries::q1_range_count("views")),
            ("q2", paper_queries::q2_group_by_count("views")),
        ] {
            let def = ViewDef::new(name, query).expect("paper queries are view-supported");
            engine.register_view(&def).expect("view registers");
        }
    }
    engine
}

fn sweep_size(rows: usize, samples: usize, reps: usize, seed: u64) -> SizePoint {
    let engine = loaded_engine(rows, seed, true);
    let q1 = paper_queries::q1_range_count("views");
    let q2 = paper_queries::q2_group_by_count("views");
    let time_queries = |run: &dyn Fn(&mut DpRng)| -> f64 {
        median_ns(samples, || {
            let mut rng = DpRng::seed_from_u64(seed);
            let started = Instant::now();
            for _ in 0..reps {
                run(&mut rng);
            }
            started.elapsed()
        }) / reps as f64
    };
    SizePoint {
        rows,
        scan_q1_ns: time_queries(&|rng| {
            black_box(engine.query(&q1, rng).expect("scan succeeds"));
        }),
        read_q1_ns: time_queries(&|rng| {
            black_box(engine.query_view("q1", rng).expect("view read succeeds"));
        }),
        scan_q2_ns: time_queries(&|rng| {
            black_box(engine.query(&q2, rng).expect("scan succeeds"));
        }),
        read_q2_ns: time_queries(&|rng| {
            black_box(engine.query_view("q2", rng).expect("view read succeeds"));
        }),
    }
}

/// Per-record ingest cost (ns) with and without the paper views registered.
/// Batches mirror the suite's `Π_Update` shape: small flushes, 25% dummies.
fn maintenance_overhead(samples: usize, seed: u64) -> (f64, f64) {
    const BATCHES: usize = 96;
    const BATCH_SIZE: usize = 8;
    let master = MasterKey::from_bytes([0xB3; 32]);
    let mut cryptor = RecordCryptor::new(&master);
    let batches: Vec<Vec<dpsync_crypto::EncryptedRecord>> = (0..BATCHES)
        .map(|b| {
            let rows = synthetic_rows(BATCH_SIZE * 3 / 4, seed ^ (b as u64).wrapping_mul(0x9e37));
            encrypt_batch(&mut cryptor, &rows, BATCH_SIZE / 4)
        })
        .collect();
    let records: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let ingest = |with_views: bool| -> f64 {
        median_ns(samples, || {
            let engine = ObliDbEngine::new(&master);
            engine
                .setup("views", taxi_like_schema(), Vec::new())
                .expect("fresh engine");
            if with_views {
                for (name, query) in [
                    ("q1", paper_queries::q1_range_count("views")),
                    ("q2", paper_queries::q2_group_by_count("views")),
                ] {
                    let def = ViewDef::new(name, query).expect("supported shape");
                    engine.register_view(&def).expect("view registers");
                }
            }
            let cloned: Vec<_> = batches.to_vec();
            let started = Instant::now();
            for (time, batch) in cloned.into_iter().enumerate() {
                engine
                    .update("views", time as u64 + 1, batch)
                    .expect("ingest succeeds");
            }
            let elapsed = started.elapsed();
            black_box(engine.table_stats("views").ciphertext_count);
            elapsed
        }) / records as f64
    };
    let plain = ingest(false);
    let viewed = ingest(true);
    (plain, viewed)
}

fn format_us(ns: f64) -> String {
    format!("{:.2} µs", ns / 1e3)
}

fn main() {
    let config = parse_args();
    let (sizes, samples, reps): (&[usize], usize, usize) = if config.smoke {
        (&[1_000, 4_000, 16_000], 5, 8)
    } else {
        (&[5_000, 20_000, 80_000, 320_000], 9, 16)
    };
    println!(
        "materialized-view crossover sweep — sizes {sizes:?}, Δ={} records/pose (seed {})\n",
        config.delta, config.seed
    );

    let points: Vec<SizePoint> = sizes
        .iter()
        .map(|&rows| {
            let point = sweep_size(rows, samples, reps, config.seed);
            println!(
                "  N={rows}: Q1 scan {} / view {}, Q2 scan {} / view {}",
                format_us(point.scan_q1_ns),
                format_us(point.read_q1_ns),
                format_us(point.scan_q2_ns),
                format_us(point.read_q2_ns)
            );
            point
        })
        .collect();
    let (plain_ingest_ns, viewed_ingest_ns) = maintenance_overhead(samples, config.seed);
    let maint_ns = (viewed_ingest_ns - plain_ingest_ns).max(0.0);
    println!(
        "  ingest: {plain_ingest_ns:.0} ns/record plain, {viewed_ingest_ns:.0} ns/record with \
         both views ({maint_ns:.0} ns/record maintenance)\n"
    );

    let mut table = TextTable::new([
        "table rows",
        "Q1 scan",
        "Q1 view",
        "Q1 speedup",
        "Q2 scan",
        "Q2 view",
        "Q2 speedup",
    ]);
    for p in &points {
        table.add_row([
            p.rows.to_string(),
            format_us(p.scan_q1_ns),
            format_us(p.read_q1_ns),
            format!("{:.0}x", p.scan_q1_ns / p.read_q1_ns.max(1.0)),
            format_us(p.scan_q2_ns),
            format_us(p.read_q2_ns),
            format!("{:.0}x", p.scan_q2_ns / p.read_q2_ns.max(1.0)),
        ]);
    }
    print!("{}", table.render());

    // Recurring-query cost per pose: `scan(N)` without the view versus
    // `Δ·maint + read(N)` with it.  The crossover is the smallest swept size
    // where the view side wins, linearly interpolated between the bracketing
    // sizes; 0 means the view already wins at the smallest swept size.
    let view_cost = |p: &SizePoint| config.delta as f64 * maint_ns + p.read_q1_ns;
    let crossover_rows: f64 = if view_cost(&points[0]) < points[0].scan_q1_ns {
        0.0
    } else {
        let mut found = f64::INFINITY;
        for pair in points.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            let lo_gap = view_cost(lo) - lo.scan_q1_ns;
            let hi_gap = view_cost(hi) - hi.scan_q1_ns;
            if lo_gap >= 0.0 && hi_gap < 0.0 {
                let t = lo_gap / (lo_gap - hi_gap);
                found = lo.rows as f64 + t * (hi.rows - lo.rows) as f64;
                break;
            }
        }
        found
    };
    let largest = points.last().expect("sweep is non-empty");
    // Break-even pose-to-pose ingest volume at the largest size: below this
    // many records per pose the view wins even counting its maintenance.
    let break_even = if maint_ns > 0.0 {
        (largest.scan_q1_ns - largest.read_q1_ns).max(0.0) / maint_ns
    } else {
        f64::INFINITY
    };
    match crossover_rows {
        0.0 => println!(
            "\ncrossover: the view wins at every swept size (Δ={} records/pose)",
            config.delta
        ),
        r if r.is_infinite() => println!(
            "\ncrossover: not reached within the sweep (Δ={} records/pose)",
            config.delta
        ),
        r => println!(
            "\ncrossover: the view wins above ≈{:.0} rows (Δ={} records/pose)",
            r, config.delta
        ),
    }
    println!(
        "break-even at N={}: the view wins while fewer than ≈{break_even:.0} records arrive \
         between poses",
        largest.rows
    );

    if let Some(path) = &config.out {
        let mut results: Vec<BenchResult> = Vec::new();
        for p in &points {
            for (name, ns) in [
                (format!("views_q1_scan_N{}", p.rows), p.scan_q1_ns),
                (format!("views_q1_read_N{}", p.rows), p.read_q1_ns),
                (format!("views_q2_scan_N{}", p.rows), p.scan_q2_ns),
                (format!("views_q2_read_N{}", p.rows), p.read_q2_ns),
            ] {
                results.push(BenchResult {
                    name,
                    median_ns_per_op: ns,
                    throughput_per_sec: 1e9 / ns.max(1.0),
                    records_processed: p.rows as u64,
                    samples: samples as u64,
                });
            }
        }
        results.push(BenchResult {
            name: "views_maint_overhead".into(),
            median_ns_per_op: maint_ns,
            throughput_per_sec: if maint_ns > 0.0 { 1e9 / maint_ns } else { 0.0 },
            records_processed: 1,
            samples: samples as u64,
        });
        results.push(BenchResult {
            name: "views_crossover".into(),
            median_ns_per_op: if crossover_rows.is_finite() {
                crossover_rows
            } else {
                -1.0
            },
            throughput_per_sec: largest.scan_q1_ns / largest.read_q1_ns.max(1.0),
            records_processed: config.delta,
            samples: samples as u64,
        });
        let report = BenchReport {
            version: REPORT_VERSION,
            label: "views".into(),
            seed: config.seed,
            smoke: config.smoke,
            workers: 1,
            results,
        };
        std::fs::write(path, report.to_json()).expect("write BENCH report");
        println!("\nBENCH report written to {path}");
    }
}
