//! The ChaCha20 block function and keystream generator (RFC 8439).
//!
//! ChaCha20 is used in two roles:
//!
//! * as the stream cipher that encrypts record payloads ([`ChaCha20::apply`]),
//! * as the pseudo-random function behind key derivation and MACs
//!   (see [`crate::prf`]), by treating the 64-byte output block keyed with a
//!   secret key and a structured nonce/counter as a PRF output.

/// Length of a ChaCha20 key in bytes.
pub const CHACHA_KEY_LEN: usize = 32;
/// Length of a ChaCha20 nonce in bytes (IETF variant).
pub const CHACHA_NONCE_LEN: usize = 12;
/// Length of one ChaCha20 output block in bytes.
pub const CHACHA_BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(16);

    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(12);

    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(8);

    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for the given key, block counter and nonce.
pub fn chacha20_block(
    key: &[u8; CHACHA_KEY_LEN],
    counter: u32,
    nonce: &[u8; CHACHA_NONCE_LEN],
) -> [u8; CHACHA_BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; CHACHA_BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// A ChaCha20 cipher instance bound to one key.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u8; CHACHA_KEY_LEN],
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha20")
            .field("key", &"<redacted>")
            .finish()
    }
}

impl ChaCha20 {
    /// Creates a cipher for the given 256-bit key.
    pub fn new(key: [u8; CHACHA_KEY_LEN]) -> Self {
        Self { key }
    }

    /// Returns a keystream starting at block `initial_counter` for `nonce`.
    pub fn keystream(&self, nonce: [u8; CHACHA_NONCE_LEN], initial_counter: u32) -> Keystream {
        Keystream {
            key: self.key,
            nonce,
            counter: initial_counter,
            block: [0u8; CHACHA_BLOCK_LEN],
            offset: CHACHA_BLOCK_LEN, // force generation on first use
        }
    }

    /// Encrypts or decrypts `data` in place (XOR with the keystream).
    ///
    /// The operation is an involution: applying it twice with the same key,
    /// nonce and counter restores the original bytes.
    pub fn apply(&self, nonce: [u8; CHACHA_NONCE_LEN], initial_counter: u32, data: &mut [u8]) {
        let mut ks = self.keystream(nonce, initial_counter);
        ks.xor_into(data);
    }

    /// Convenience wrapper that copies `data` and returns the transformed bytes.
    pub fn apply_copy(
        &self,
        nonce: [u8; CHACHA_NONCE_LEN],
        initial_counter: u32,
        data: &[u8],
    ) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(nonce, initial_counter, &mut out);
        out
    }
}

/// A lazily generated ChaCha20 keystream.
pub struct Keystream {
    key: [u8; CHACHA_KEY_LEN],
    nonce: [u8; CHACHA_NONCE_LEN],
    counter: u32,
    block: [u8; CHACHA_BLOCK_LEN],
    offset: usize,
}

impl Keystream {
    /// Returns the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        if self.offset >= CHACHA_BLOCK_LEN {
            self.block = chacha20_block(&self.key, self.counter, &self.nonce);
            self.counter = self.counter.wrapping_add(1);
            self.offset = 0;
        }
        let b = self.block[self.offset];
        self.offset += 1;
        b
    }

    /// XORs the keystream into `data`.
    ///
    /// Keystream bytes are consumed in exactly the same order as repeated
    /// [`Keystream::next_byte`] calls, but whole 64-byte spans are generated
    /// directly and XORed block-at-a-time instead of staging every byte
    /// through the buffered single-byte path.
    pub fn xor_into(&mut self, data: &mut [u8]) {
        let mut i = 0usize;
        // Drain the partially consumed buffered block first.
        while self.offset < CHACHA_BLOCK_LEN && i < data.len() {
            data[i] ^= self.block[self.offset];
            self.offset += 1;
            i += 1;
        }
        // Whole blocks, generated straight into the XOR.
        while data.len() - i >= CHACHA_BLOCK_LEN {
            let block = chacha20_block(&self.key, self.counter, &self.nonce);
            self.counter = self.counter.wrapping_add(1);
            for (byte, key) in data[i..i + CHACHA_BLOCK_LEN].iter_mut().zip(&block) {
                *byte ^= key;
            }
            i += CHACHA_BLOCK_LEN;
        }
        // Tail (shorter than one block) through the buffered path so a later
        // call continues mid-block correctly.
        for byte in data[i..].iter_mut() {
            *byte ^= self.next_byte();
        }
    }

    /// Fills `out` with raw keystream bytes (used by the PRF).
    pub fn fill(&mut self, out: &mut [u8]) {
        // Zero the destination and reuse the block-wise XOR: x ^ 0 = x.
        out.fill(0);
        self.xor_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; CHACHA_KEY_LEN] {
        let mut key = [0u8; CHACHA_KEY_LEN];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        key
    }

    #[test]
    fn rfc8439_block_function_test_vector() {
        // RFC 8439 §2.3.2: key = 00..1f, nonce = 000000090000004a00000000, counter = 1.
        let key = rfc_key();
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = chacha20_block(&key, 1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    #[test]
    fn rfc8439_quarter_round_test_vector() {
        // RFC 8439 §2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 §2.4.2 ("sunscreen" plaintext), counter starts at 1.
        let key = rfc_key();
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let cipher = ChaCha20::new(key);
        let ct = cipher.apply_copy(nonce, 1, plaintext);
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ct[..16], &expected_prefix);
        // Round trip back to the plaintext.
        let pt = cipher.apply_copy(nonce, 1, &ct);
        assert_eq!(&pt, plaintext);
    }

    #[test]
    fn apply_is_an_involution() {
        let cipher = ChaCha20::new([7u8; 32]);
        let nonce = [3u8; 12];
        let mut data = vec![0u8; 1000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let original = data.clone();
        cipher.apply(nonce, 0, &mut data);
        assert_ne!(data, original);
        cipher.apply(nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_give_unrelated_keystreams() {
        let cipher = ChaCha20::new([9u8; 32]);
        let a = cipher.apply_copy([0u8; 12], 0, &[0u8; 64]);
        let b = cipher.apply_copy([1u8; 12], 0, &[0u8; 64]);
        assert_ne!(a, b);
        let matching = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            matching < 10,
            "keystreams overlap suspiciously: {matching}/64"
        );
    }

    #[test]
    fn different_counters_give_unrelated_blocks() {
        let key = [5u8; 32];
        let nonce = [1u8; 12];
        let b0 = chacha20_block(&key, 0, &nonce);
        let b1 = chacha20_block(&key, 1, &nonce);
        assert_ne!(b0, b1);
    }

    #[test]
    fn keystream_is_deterministic_and_continuable() {
        let cipher = ChaCha20::new([42u8; 32]);
        let nonce = [6u8; 12];
        let mut ks = cipher.keystream(nonce, 0);
        let mut first = [0u8; 100];
        ks.fill(&mut first);
        // Regenerating from scratch yields the same 100 bytes.
        let mut ks2 = cipher.keystream(nonce, 0);
        let mut again = [0u8; 100];
        ks2.fill(&mut again);
        assert_eq!(first, again);
        // Continuing the first stream does not repeat.
        let mut next = [0u8; 100];
        ks.fill(&mut next);
        assert_ne!(first, next);
    }

    #[test]
    fn keystream_bytes_look_balanced() {
        // A crude statistical sanity check: roughly half the bits are set.
        let cipher = ChaCha20::new([1u8; 32]);
        let mut ks = cipher.keystream([0u8; 12], 0);
        let mut buf = vec![0u8; 1 << 16];
        ks.fill(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total_bits = (buf.len() * 8) as f64;
        let frac = f64::from(ones) / total_bits;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn debug_never_reveals_key() {
        let cipher = ChaCha20::new([0xAB; 32]);
        let rendered = format!("{cipher:?}");
        assert!(rendered.contains("redacted"));
        assert!(!rendered.contains("171")); // 0xAB as decimal
    }
}
