//! The end-to-end comparison experiments: Figures 2–4 and Table 5.
//!
//! One simulated month per (strategy × engine) pair provides everything these
//! artifacts need; the functions here run those simulations (or accept
//! pre-computed reports) and shape the results into figure series and table
//! rows.

use crate::experiments::config::{EngineKind, ExperimentConfig};
use crate::experiments::runner::{run_specs, RunSpec};
use crate::report::{format_mb, format_seconds, CsvSeries, TextTable};
use dpsync_core::metrics::SimulationReport;
use dpsync_core::strategy::StrategyKind;

/// All reports for one engine, keyed by strategy, in the paper's order.
pub type EngineReports = Vec<(StrategyKind, SimulationReport)>;

/// Runs the full end-to-end comparison for both engines.
///
/// All `engine × strategy` simulations are independent, so the whole grid is
/// submitted to the worker pool at once rather than engine by engine.
pub fn run_end_to_end(config: ExperimentConfig) -> Vec<(EngineKind, EngineReports)> {
    let specs: Vec<RunSpec> = EngineKind::ALL
        .iter()
        .flat_map(|&engine| {
            StrategyKind::ALL.iter().map(move |&strategy| RunSpec {
                engine,
                strategy,
                config,
            })
        })
        .collect();
    let mut reports = run_specs(&specs).into_iter();
    EngineKind::ALL
        .iter()
        .map(|&engine| {
            (
                engine,
                StrategyKind::ALL
                    .iter()
                    .map(|&strategy| (strategy, reports.next().expect("one report per spec")))
                    .collect(),
            )
        })
        .collect()
}

/// Figure 2: per-query L1 error (`metric = Error`) or QET (`metric = Qet`)
/// over time, one series column per strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Metric {
    /// L1 query error (Figure 2 a–e).
    Error,
    /// Estimated query execution time (Figure 2 f–j).
    Qet,
}

/// Builds one Figure-2 panel: the chosen metric for `query` over time, with
/// one column per strategy.
pub fn figure2_series(
    engine: EngineKind,
    query: &str,
    metric: Fig2Metric,
    reports: &EngineReports,
) -> CsvSeries {
    let metric_name = match metric {
        Fig2Metric::Error => "L1 error",
        Fig2Metric::Qet => "estimated QET (s)",
    };
    let mut columns = vec!["time".to_string()];
    columns.extend(reports.iter().map(|(k, _)| k.label().to_string()));
    let mut series = CsvSeries::new(format!("Figure 2: {engine} {query} {metric_name}"), columns);

    // Collect the union of query times (all strategies share the schedule).
    let times: Vec<u64> = reports
        .first()
        .map(|(_, r)| {
            r.query_samples
                .iter()
                .filter(|s| s.query == query)
                .map(|s| s.time)
                .collect()
        })
        .unwrap_or_default();

    for time in times {
        let mut point = vec![time as f64];
        for (_, report) in reports {
            let value = report
                .query_samples
                .iter()
                .find(|s| s.query == query && s.time == time)
                .map(|s| match metric {
                    Fig2Metric::Error => s.l1_error,
                    Fig2Metric::Qet => s.estimated_qet,
                })
                .unwrap_or(f64::NAN);
            point.push(value);
        }
        series.push(point);
    }
    series
}

/// Figure 3: total outsourced data size (or dummy data size) over time, in
/// megabytes, one column per strategy.
pub fn figure3_series(engine: EngineKind, dummy_only: bool, reports: &EngineReports) -> CsvSeries {
    let what = if dummy_only {
        "dummy"
    } else {
        "total outsourced"
    };
    let mut columns = vec!["time".to_string()];
    columns.extend(reports.iter().map(|(k, _)| k.label().to_string()));
    let mut series = CsvSeries::new(format!("Figure 3: {engine} {what} data size (MB)"), columns);

    let times: Vec<u64> = reports
        .first()
        .map(|(_, r)| r.size_samples.iter().map(|s| s.time).collect())
        .unwrap_or_default();
    for time in times {
        let mut point = vec![time as f64];
        for (_, report) in reports {
            let value = report
                .size_samples
                .iter()
                .find(|s| s.time == time)
                .map(|s| {
                    let bytes = if dummy_only {
                        s.dummy_bytes
                    } else {
                        s.outsourced_bytes
                    };
                    bytes as f64 / 1_000_000.0
                })
                .unwrap_or(f64::NAN);
            point.push(value);
        }
        series.push(point);
    }
    series
}

/// Figure 4: mean QET vs mean L1 error for the default query (Q2), one point
/// per strategy.
pub fn figure4_series(engine: EngineKind, reports: &EngineReports) -> CsvSeries {
    let mut series = CsvSeries::new(
        format!("Figure 4: {engine} mean Q2 QET (s) vs mean Q2 L1 error"),
        ["strategy_index", "mean_qet_seconds", "mean_l1_error"],
    );
    for (index, (_, report)) in reports.iter().enumerate() {
        series.push(vec![
            index as f64,
            report.mean_estimated_qet("Q2"),
            report.mean_l1_error("Q2"),
        ]);
    }
    series
}

/// Legend for Figure 4 (strategy index → label), printed next to the series.
pub fn figure4_legend(reports: &EngineReports) -> Vec<String> {
    reports
        .iter()
        .enumerate()
        .map(|(i, (k, _))| format!("{i} = {}", k.label()))
        .collect()
}

/// Table 5: the aggregated comparison statistics for one engine.
pub fn table5(engine: EngineKind, reports: &EngineReports) -> TextTable {
    let mut table = TextTable::new([
        "Engine".to_string(),
        "Metric".to_string(),
        StrategyKind::Sur.label().to_string(),
        StrategyKind::Set.label().to_string(),
        StrategyKind::Oto.label().to_string(),
        StrategyKind::DpTimer.label().to_string(),
        StrategyKind::DpAnt.label().to_string(),
    ]);

    let get = |kind: StrategyKind| -> &SimulationReport {
        &reports
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all strategies present")
            .1
    };
    let order = [
        StrategyKind::Sur,
        StrategyKind::Set,
        StrategyKind::Oto,
        StrategyKind::DpTimer,
        StrategyKind::DpAnt,
    ];
    let queries = get(StrategyKind::Sur).query_labels();

    for query in &queries {
        for (metric, f) in [
            (
                "Mean L1 Err",
                &(|r: &SimulationReport, q: &str| r.mean_l1_error(q))
                    as &dyn Fn(&SimulationReport, &str) -> f64,
            ),
            ("Max L1 Err", &|r, q| r.max_l1_error(q)),
            ("Mean QET (s)", &|r, q| r.mean_estimated_qet(q)),
        ] {
            let mut row = vec![engine.label().to_string(), format!("{query} {metric}")];
            for kind in order {
                row.push(format!("{:.2}", f(get(kind), query)));
            }
            table.add_row(row);
        }
    }

    let mut gap_row = vec![engine.label().to_string(), "Mean logical gap".to_string()];
    let mut total_row = vec![engine.label().to_string(), "Total data (MB)".to_string()];
    let mut dummy_row = vec![engine.label().to_string(), "Dummy data (MB)".to_string()];
    for kind in order {
        let report = get(kind);
        gap_row.push(format!("{:.2}", report.mean_logical_gap()));
        let sizes = report.final_sizes().unwrap_or_default();
        total_row.push(format_mb(sizes.outsourced_bytes));
        dummy_row.push(format_mb(sizes.dummy_bytes));
    }
    table.add_row(gap_row);
    table.add_row(total_row);
    table.add_row(dummy_row);
    table
}

/// The headline claims of the paper's abstract, computed from the reports:
/// the accuracy advantage of the DP strategies over OTO and the performance
/// advantage over SET.
pub fn headline_ratios(reports: &EngineReports) -> (f64, f64) {
    let get = |kind: StrategyKind| -> &SimulationReport {
        &reports.iter().find(|(k, _)| *k == kind).expect("present").1
    };
    let dp_err = get(StrategyKind::DpTimer)
        .mean_l1_error_all()
        .max(get(StrategyKind::DpAnt).mean_l1_error_all())
        .max(1e-9);
    let accuracy_gain = get(StrategyKind::Oto).mean_l1_error_all() / dp_err;

    let dp_qet = get(StrategyKind::DpTimer)
        .mean_estimated_qet_all()
        .max(get(StrategyKind::DpAnt).mean_estimated_qet_all())
        .max(1e-9);
    let performance_gain = get(StrategyKind::Set).mean_estimated_qet_all() / dp_qet;
    (accuracy_gain, performance_gain)
}

/// A human-readable summary line for one engine's headline ratios.
pub fn headline_summary(engine: EngineKind, reports: &EngineReports) -> String {
    let (accuracy, performance) = headline_ratios(reports);
    format!(
        "{engine}: DP strategies are {}x more accurate than OTO and {}x faster than SET (mean QET {} s vs {} s)",
        format_seconds(accuracy),
        format_seconds(performance),
        format_seconds(
            reports
                .iter()
                .find(|(k, _)| *k == StrategyKind::DpTimer)
                .map(|(_, r)| r.mean_estimated_qet_all())
                .unwrap_or(f64::NAN)
        ),
        format_seconds(
            reports
                .iter()
                .find(|(k, _)| *k == StrategyKind::Set)
                .map(|(_, r)| r.mean_estimated_qet_all())
                .unwrap_or(f64::NAN)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::runner::run_all_strategies;

    fn smoke_reports() -> EngineReports {
        let config = ExperimentConfig {
            scale: 60,
            seed: 11,
            ..Default::default()
        }
        .rescale();
        run_all_strategies(EngineKind::ObliDb, config)
    }

    #[test]
    fn figure2_series_has_one_column_per_strategy() {
        let reports = smoke_reports();
        let series = figure2_series(EngineKind::ObliDb, "Q2", Fig2Metric::Error, &reports);
        assert!(!series.is_empty());
        let rendered = series.render();
        assert!(rendered.contains("SUR"));
        assert!(rendered.contains("DP-ANT"));
        let qet = figure2_series(EngineKind::ObliDb, "Q1", Fig2Metric::Qet, &reports);
        assert!(!qet.is_empty());
    }

    #[test]
    fn figure3_and_4_series_are_populated() {
        let reports = smoke_reports();
        assert!(!figure3_series(EngineKind::ObliDb, false, &reports).is_empty());
        assert!(!figure3_series(EngineKind::ObliDb, true, &reports).is_empty());
        let fig4 = figure4_series(EngineKind::ObliDb, &reports);
        assert_eq!(fig4.len(), 5);
        assert_eq!(figure4_legend(&reports).len(), 5);
    }

    #[test]
    fn table5_contains_all_metrics_and_strategies() {
        let reports = smoke_reports();
        let table = table5(EngineKind::ObliDb, &reports);
        let rendered = table.render();
        assert!(rendered.contains("Mean L1 Err"));
        assert!(rendered.contains("Total data (MB)"));
        assert!(rendered.contains("DP-Timer"));
        // 3 metrics × 3 queries + 3 size rows = 12 rows.
        assert_eq!(table.len(), 12);
    }

    #[test]
    fn headline_ratios_reproduce_the_papers_direction() {
        let reports = smoke_reports();
        let (accuracy_gain, performance_gain) = headline_ratios(&reports);
        // The paper reports up to 520x accuracy gain vs OTO and up to 5.72x
        // performance gain vs SET; at smoke scale we only require the
        // direction (both ratios must be comfortably above 1).
        assert!(accuracy_gain > 5.0, "accuracy gain {accuracy_gain}");
        assert!(
            performance_gain > 1.2,
            "performance gain {performance_gain}"
        );
        assert!(headline_summary(EngineKind::ObliDb, &reports).contains("more accurate"));
    }
}
