//! The naïve synchronization baselines (§5.1).
//!
//! * **SUR** — synchronize upon receipt: every arrival is uploaded
//!   immediately.  Perfect accuracy and performance, zero privacy (the update
//!   pattern *is* the arrival pattern).
//! * **OTO** — one-time outsourcing: only the initial database is uploaded;
//!   the owner then goes offline.  Perfect privacy and performance, unbounded
//!   error.
//! * **SET** — synchronize every time unit: exactly one record (real if one
//!   arrived, dummy otherwise) is uploaded at every tick.  Perfect privacy
//!   and accuracy, maximal overhead.

use super::{StrategyKind, SyncDecision, SyncReason, SyncStrategy, TickContext};
use crate::timeline::Timestamp;
use dpsync_dp::Epsilon;
use rand::RngCore;

/// Synchronize upon receipt (SUR).
#[derive(Debug, Clone, Default)]
pub struct SynchronizeUponReceipt;

impl SynchronizeUponReceipt {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl SyncStrategy for SynchronizeUponReceipt {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Sur
    }

    fn epsilon(&self) -> Option<Epsilon> {
        None
    }

    fn initial_fetch(&mut self, initial_size: u64, _rng: &mut dyn RngCore) -> u64 {
        initial_size
    }

    fn on_tick(&mut self, ctx: &TickContext, _rng: &mut dyn RngCore) -> SyncDecision {
        if ctx.arrived > 0 {
            SyncDecision::Sync {
                fetch: ctx.arrived,
                reason: SyncReason::Strategy,
            }
        } else {
            SyncDecision::None
        }
    }

    fn next_wake(&self, _now: Timestamp) -> Option<Timestamp> {
        // SUR is purely arrival-driven: idle ticks are stateless no-ops.
        None
    }
}

/// One-time outsourcing (OTO).
#[derive(Debug, Clone, Default)]
pub struct OneTimeOutsourcing;

impl OneTimeOutsourcing {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl SyncStrategy for OneTimeOutsourcing {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Oto
    }

    fn epsilon(&self) -> Option<Epsilon> {
        None
    }

    fn initial_fetch(&mut self, initial_size: u64, _rng: &mut dyn RngCore) -> u64 {
        initial_size
    }

    fn on_tick(&mut self, _ctx: &TickContext, _rng: &mut dyn RngCore) -> SyncDecision {
        SyncDecision::None
    }

    fn next_wake(&self, _now: Timestamp) -> Option<Timestamp> {
        // OTO never acts after setup; it never needs an unsolicited wake.
        None
    }
}

/// Synchronize every time unit (SET).
#[derive(Debug, Clone, Default)]
pub struct SynchronizeEveryTime;

impl SynchronizeEveryTime {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl SyncStrategy for SynchronizeEveryTime {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Set
    }

    fn epsilon(&self) -> Option<Epsilon> {
        None
    }

    fn initial_fetch(&mut self, initial_size: u64, _rng: &mut dyn RngCore) -> u64 {
        initial_size
    }

    fn on_tick(&mut self, ctx: &TickContext, _rng: &mut dyn RngCore) -> SyncDecision {
        // Upload whatever arrived; if nothing arrived, upload one dummy so the
        // update pattern is completely data-independent.
        SyncDecision::Sync {
            fetch: ctx.arrived.max(1),
            reason: SyncReason::Strategy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timestamp;
    use dpsync_dp::DpRng;

    fn ctx(time: u64, arrived: u64, cache_len: u64) -> TickContext {
        TickContext {
            time: Timestamp(time),
            arrived,
            cache_len,
        }
    }

    #[test]
    fn sur_mirrors_arrivals_exactly() {
        let mut s = SynchronizeUponReceipt::new();
        let mut rng = DpRng::seed_from_u64(1);
        assert_eq!(s.initial_fetch(120, &mut rng), 120);
        assert_eq!(s.kind(), StrategyKind::Sur);
        assert_eq!(s.epsilon(), None);
        assert_eq!(s.on_tick(&ctx(1, 0, 0), &mut rng), SyncDecision::None);
        assert_eq!(
            s.on_tick(&ctx(2, 1, 1), &mut rng),
            SyncDecision::Sync {
                fetch: 1,
                reason: SyncReason::Strategy
            }
        );
        assert_eq!(
            s.on_tick(&ctx(3, 4, 4), &mut rng),
            SyncDecision::Sync {
                fetch: 4,
                reason: SyncReason::Strategy
            }
        );
        assert!(s.accountant().is_none());
    }

    #[test]
    fn oto_never_syncs_after_setup() {
        let mut s = OneTimeOutsourcing::new();
        let mut rng = DpRng::seed_from_u64(2);
        assert_eq!(s.initial_fetch(300, &mut rng), 300);
        assert_eq!(s.kind(), StrategyKind::Oto);
        for t in 1..1_000 {
            assert_eq!(s.on_tick(&ctx(t, t % 2, t), &mut rng), SyncDecision::None);
        }
    }

    #[test]
    fn set_uploads_exactly_one_record_when_idle() {
        let mut s = SynchronizeEveryTime::new();
        let mut rng = DpRng::seed_from_u64(3);
        assert_eq!(s.kind(), StrategyKind::Set);
        assert_eq!(
            s.on_tick(&ctx(1, 0, 0), &mut rng),
            SyncDecision::Sync {
                fetch: 1,
                reason: SyncReason::Strategy
            }
        );
        assert_eq!(
            s.on_tick(&ctx(2, 3, 3), &mut rng),
            SyncDecision::Sync {
                fetch: 3,
                reason: SyncReason::Strategy
            }
        );
    }

    #[test]
    fn arrival_driven_baselines_never_need_waking() {
        assert_eq!(SynchronizeUponReceipt::new().next_wake(Timestamp(7)), None);
        assert_eq!(OneTimeOutsourcing::new().next_wake(Timestamp(7)), None);
        // SET uploads a dummy every tick, so it keeps the dense default.
        assert_eq!(
            SynchronizeEveryTime::new().next_wake(Timestamp(7)),
            Some(Timestamp(8))
        );
    }

    #[test]
    fn set_update_volume_is_data_independent_for_single_arrivals() {
        // With at most one record per tick (the paper's base model), the SET
        // update pattern is (t, 1) for every t regardless of the data.
        let mut s = SynchronizeEveryTime::new();
        let mut rng = DpRng::seed_from_u64(4);
        for t in 1..500 {
            let arrived = u64::from(t % 3 == 0);
            assert_eq!(s.on_tick(&ctx(t, arrived, 0), &mut rng).fetch(), 1);
        }
    }
}
