//! Micro-benchmarks for the differential-privacy primitives: Laplace
//! sampling, the Laplace mechanism, the sparse-vector comparison, and the
//! `Perturb` operator the strategies call on every synchronization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpsync_core::perturb::perturbed_count;
use dpsync_dp::{AboveNoisyThreshold, DpRng, Epsilon, Laplace, LaplaceMechanism};

fn bench_laplace_sampling(c: &mut Criterion) {
    let dist = Laplace::new(0.0, 2.0).unwrap();
    let mut rng = DpRng::seed_from_u64(1);
    c.bench_function("laplace/sample", |b| {
        b.iter(|| black_box(dist.sample(&mut rng)))
    });

    let mechanism = LaplaceMechanism::counting(Epsilon::new_unchecked(0.5));
    c.bench_function("laplace/mechanism_release_count", |b| {
        b.iter(|| black_box(mechanism.release_count_clamped(black_box(1_000), &mut rng)))
    });
}

fn bench_sparse_vector(c: &mut Criterion) {
    let mut rng = DpRng::seed_from_u64(2);
    let eps = Epsilon::new_unchecked(0.25);
    c.bench_function("svt/observe_below_threshold", |b| {
        let mut svt = AboveNoisyThreshold::new(1_000_000.0, eps, &mut rng);
        b.iter(|| black_box(svt.observe(black_box(10), &mut rng)))
    });
    c.bench_function("svt/new_round", |b| {
        b.iter(|| black_box(AboveNoisyThreshold::new(15.0, eps, &mut rng)))
    });
}

fn bench_perturb(c: &mut Criterion) {
    let mut rng = DpRng::seed_from_u64(3);
    let eps = Epsilon::new_unchecked(0.5);
    c.bench_function("perturb/noisy_fetch_size", |b| {
        b.iter(|| black_box(perturbed_count(black_box(30), eps, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_laplace_sampling,
    bench_sparse_vector,
    bench_perturb
);
criterion_main!(benches);
