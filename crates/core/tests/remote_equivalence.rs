//! Remote/in-process equivalence suite: the TCP transport must be invisible
//! in everything DP-Sync's guarantees are stated over.
//!
//! Mirrors `backend_equivalence.rs` one layer up: where that suite swaps the
//! storage substrate, this one swaps the *transport* — the same fixed-seed
//! simulation runs once against an in-process engine and once against the
//! identical engine behind a loopback [`dpsync_net::EdbTcpServer`], through
//! [`dpsync_net::RemoteEdb`].  Three things must be byte-identical:
//!
//! 1. every query answer the analyst receives (including the Crypt-ε
//!    engine's *noisy* answers — the entropy sub-protocol forwards each RNG
//!    draw to the caller, so a fixed-seed analyst RNG produces the same
//!    noise on both transports),
//! 2. the full [`SimulationReport::normalized`] (errors, sizes, sync
//!    counts), and
//! 3. the complete adversary view the privacy verifier consumes.

use dpsync_core::metrics::SimulationReport;
use dpsync_core::simulation::{Simulation, SimulationConfig, TableWorkload};
use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, StrategyKind, SyncStrategy,
    SynchronizeEveryTime,
};
use dpsync_crypto::MasterKey;
use dpsync_dp::Epsilon;
use dpsync_edb::engines::EngineKind;
use dpsync_edb::query::paper_queries;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::{AdversaryView, DataType, Row, Schema, Value};
use dpsync_net::{BackendRequest, EdbTcpServer, EngineFactory, EngineProvider, RemoteEdb};

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("pick_time", DataType::Timestamp),
        ("pickup_id", DataType::Int),
    ])
}

fn row(t: u64, p: i64) -> Row {
    Row::new(vec![Value::Timestamp(t), Value::Int(p)])
}

/// The same deterministic two-table workload shape the backend-equivalence
/// suite uses: bursts, quiet stretches, and a second table for joins.
fn workloads(horizon: u64) -> Vec<TableWorkload> {
    let make = |name: &str, offset: u64| TableWorkload {
        table: name.into(),
        schema: schema(),
        initial_rows: (0..8).map(|i| row(0, 40 + offset as i64 + i)).collect(),
        arrivals: (1..=horizon)
            .map(|t| {
                if (t + offset).is_multiple_of(3) {
                    vec![row(t, ((t + offset) % 150) as i64)]
                } else if (t + offset).is_multiple_of(17) {
                    vec![row(t, 60), row(t, 61)]
                } else {
                    vec![]
                }
            })
            .collect(),
        join_time: 0,
        leave_time: None,
    };
    vec![make("yellow", 0), make("green", 5)]
}

fn simulation(horizon: u64, seed: u64, join: bool) -> Simulation {
    let mut queries = vec![
        ("Q1".into(), paper_queries::q1_range_count("yellow")),
        ("Q2".into(), paper_queries::q2_group_by_count("yellow")),
    ];
    if join {
        queries.push(("Q3".into(), paper_queries::q3_join_count("yellow", "green")));
    }
    Simulation::new(SimulationConfig {
        query_interval: horizon / 6,
        size_sample_interval: horizon / 3,
        queries,
        seed,
    })
}

fn strategy_for(kind: StrategyKind) -> Box<dyn SyncStrategy> {
    match kind {
        StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
        StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
            Epsilon::new_unchecked(0.5),
            30,
            Some(CacheFlush::new(300, 15)),
        )),
        StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
            Epsilon::new_unchecked(0.5),
            15,
            Some(CacheFlush::new(300, 15)),
        )),
        other => panic!("not used in this suite: {other:?}"),
    }
}

/// Runs one fixed-seed simulation (sharded driver, one owner thread per
/// table) on the given engine; returns the normalized report and the final
/// adversary view.
fn run_on(
    engine: &dyn SecureOutsourcedDatabase,
    kind: StrategyKind,
    horizon: u64,
    seed: u64,
) -> (SimulationReport, AdversaryView) {
    let master = MasterKey::from_bytes([0xEE; 32]);
    let join = matches!(engine.name(), "oblidb");
    let report = simulation(horizon, seed, join)
        .run_parallel(&workloads(horizon), engine, &master, |_| strategy_for(kind))
        .expect("simulation succeeds")
        .normalized();
    (report, engine.adversary_view())
}

#[test]
fn tcp_and_in_process_transports_are_byte_identical() {
    let master = MasterKey::from_bytes([0xEE; 32]);
    let server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory::default()),
    )
    .expect("loopback server binds");

    for engine_kind in EngineKind::ALL {
        for strategy in [
            StrategyKind::Set,
            StrategyKind::DpTimer,
            StrategyKind::DpAnt,
        ] {
            let local_engine = engine_kind.build(&master);
            let (local_report, local_view) = run_on(local_engine.as_ref(), strategy, 360, 7);

            // A fresh connection is a fresh engine on the factory server, so
            // every (engine, strategy) cell runs against clean tables.
            let remote_engine = RemoteEdb::connect_engine(
                server.local_addr(),
                engine_kind,
                &master,
                BackendRequest::Memory,
            )
            .expect("session opens");
            let (remote_report, remote_view) = run_on(&remote_engine, strategy, 360, 7);

            // Reports carry every released query answer, error, QET and size
            // sample; normalized() strips only wall-clock fields.
            assert_eq!(
                local_report, remote_report,
                "report mismatch for {engine_kind:?}/{strategy:?}"
            );
            // The adversary transcript — what the privacy guarantee is about
            // — must match to the byte, *including* the L-DP engine's noisy
            // observed response volumes.
            assert_eq!(
                local_view, remote_view,
                "adversary view mismatch for {engine_kind:?}/{strategy:?}"
            );
            assert_eq!(
                format!("{local_view:?}"),
                format!("{remote_view:?}"),
                "debug rendering must also be byte-identical"
            );
        }
    }
    assert_eq!(server.handler_panics(), 0);
}

#[test]
fn remote_engine_metadata_matches_in_process() {
    let master = MasterKey::from_bytes([0xED; 32]);
    let server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory::default()),
    )
    .unwrap();
    for engine_kind in EngineKind::ALL {
        let local = engine_kind.build(&master);
        let remote = RemoteEdb::connect_engine(
            server.local_addr(),
            engine_kind,
            &master,
            BackendRequest::Memory,
        )
        .unwrap();
        assert_eq!(remote.name(), local.name());
        assert_eq!(remote.leakage_profile(), local.leakage_profile());
        assert_eq!(remote.cost_model(), local.cost_model());
    }
}

#[test]
fn remote_disk_sessions_match_in_process_memory_runs() {
    // Transport and storage backend compose: a remote engine on the durable
    // segment log — per-batch fsync or group commit — still reproduces the
    // in-process in-memory run bit for bit (the backend-equivalence suite
    // already pins memory == disk in-process; this closes the square).
    let root =
        std::env::temp_dir().join(format!("dpsync-remote-equiv-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let mut server = EdbTcpServer::bind(
        "127.0.0.1:0",
        EngineProvider::Factory(EngineFactory {
            disk_root: Some(root.clone()),
        }),
    )
    .unwrap();

    let master = MasterKey::from_bytes([0xEE; 32]);
    let local_engine = EngineKind::ObliDb.build(&master);
    let (local_report, local_view) = run_on(local_engine.as_ref(), StrategyKind::DpTimer, 240, 13);

    for backend in [BackendRequest::Disk, BackendRequest::DiskGroup] {
        let remote_engine =
            RemoteEdb::connect_engine(server.local_addr(), EngineKind::ObliDb, &master, backend)
                .unwrap();
        let (remote_report, remote_view) = run_on(&remote_engine, StrategyKind::DpTimer, 240, 13);

        assert_eq!(
            local_report, remote_report,
            "report mismatch on {backend:?}"
        );
        assert_eq!(local_view, remote_view, "view mismatch on {backend:?}");
    }

    server.shutdown();
    let leftover: Vec<_> = std::fs::read_dir(&root).unwrap().collect();
    assert!(leftover.is_empty(), "disk session cleaned up: {leftover:?}");
    let _ = std::fs::remove_dir_all(&root);
}
