//! Differential privacy under continual observation: the binary-tree
//! counting mechanism.
//!
//! DP-Sync's update-pattern guarantee is an instance of event-level DP under
//! continual observation (Dwork et al., the paper's Definition 5 builds on
//! it).  The classic mechanism in that model is the **binary tree (or
//! Bennett/partial-sums) counter**: it releases a running count over a stream
//! of `T` bits with only `O(log T)` noise per release instead of the `O(T)`
//! noise naïve recomposition would need.
//!
//! The tree counter is not required by the paper's two strategies, but it is
//! the natural building block for the extension the paper hints at — letting
//! the *owner* privately publish how many records have been outsourced so far
//! (e.g. for capacity planning) without opening a new per-release budget.  It
//! is included here both as that extension and as a reusable primitive, with
//! the standard ε-DP and error guarantees tested below.

use crate::laplace::Laplace;
use crate::Epsilon;
use rand::Rng;

/// A binary-tree counter releasing ε-differentially-private running counts
/// over a bit stream of bounded length.
#[derive(Debug, Clone)]
pub struct TreeCounter {
    epsilon: Epsilon,
    levels: usize,
    horizon: u64,
    /// Noisy partial sums per level; `node_value[l]` holds the noisy sum of
    /// the currently open node at level `l` (a node at level `l` spans
    /// `2^l` consecutive time steps).
    node_noisy: Vec<f64>,
    /// True counts per open node (kept only to build the next noisy value).
    node_true: Vec<u64>,
    noise: Laplace,
    steps: u64,
}

impl TreeCounter {
    /// Creates a counter for a stream of at most `horizon` steps with total
    /// budget ε.  Each level of the tree receives `ε / levels`, which yields
    /// per-release error `O(log(horizon)^{1.5} / ε)`.
    pub fn new(epsilon: Epsilon, horizon: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        let levels = (64 - (horizon.max(2) - 1).leading_zeros()) as usize + 1;
        let per_level = Epsilon::new_unchecked(epsilon.value() / levels as f64);
        Self {
            epsilon,
            levels,
            horizon,
            node_noisy: vec![0.0; levels],
            node_true: vec![0; levels],
            noise: Laplace::new(0.0, 1.0 / per_level.value()).expect("valid scale"),
            steps: 0,
        }
    }

    /// The total privacy budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Number of tree levels (≈ log2(horizon) + 1).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The configured stream length bound.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Steps observed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Feeds the next stream element (the number of records that arrived at
    /// this time step, 0 or 1 in the paper's base model) and returns the
    /// noisy running count.
    ///
    /// This is the standard binary mechanism (Chan–Shi–Song / Dwork et al.):
    /// the running count `[1, t]` is decomposed into the dyadic intervals
    /// given by the binary representation of `t`; each interval is released
    /// once with fresh Laplace noise, and every stream element contributes to
    /// at most `levels` intervals, so the per-level budget composes to ε.
    ///
    /// # Panics
    /// Panics when more than `horizon` steps are fed — the privacy analysis
    /// only covers the configured stream length.
    pub fn observe<R: Rng + ?Sized>(&mut self, increment: u64, rng: &mut R) -> f64 {
        assert!(
            self.steps < self.horizon,
            "TreeCounter received more than its configured horizon of {} steps",
            self.horizon
        );
        self.steps += 1;
        let t = self.steps;

        // The node that closes at step t sits at level `i = trailing_zeros(t)`
        // and covers the last 2^i stream elements: its true value is the sum
        // of all lower-level open nodes plus this step's increment.
        let closing = (t.trailing_zeros() as usize).min(self.levels - 1);
        let mut closing_sum = increment;
        for level in 0..closing {
            closing_sum += self.node_true[level];
            self.node_true[level] = 0;
            self.node_noisy[level] = 0.0;
        }
        self.node_true[closing] = closing_sum;
        self.node_noisy[closing] = closing_sum as f64 + self.noise.sample(rng);

        // Release the dyadic decomposition of [1, t]: one noisy node per set
        // bit in t.
        let mut released = 0.0;
        for level in 0..self.levels {
            if (t >> level) & 1 == 1 {
                released += self.node_noisy[level];
            }
        }
        released.max(0.0)
    }

    /// The standard high-probability error bound for the released counts:
    /// `O(levels^{1.5} / ε · ln(1/β))` (loose constant 2).
    pub fn error_bound(&self, beta: f64) -> f64 {
        assert!((0.0..1.0).contains(&beta) && beta > 0.0);
        2.0 * (self.levels as f64).powf(1.5) / self.epsilon.value() * (1.0 / beta).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpRng;

    #[test]
    fn levels_scale_logarithmically() {
        assert!(TreeCounter::new(Epsilon::new_unchecked(1.0), 8).levels() <= 5);
        assert!(TreeCounter::new(Epsilon::new_unchecked(1.0), 1 << 20).levels() <= 22);
        let c = TreeCounter::new(Epsilon::new_unchecked(1.0), 100);
        assert_eq!(c.horizon(), 100);
        assert_eq!(c.epsilon().value(), 1.0);
        assert_eq!(c.steps(), 0);
    }

    #[test]
    fn released_counts_track_the_true_running_count() {
        let mut rng = DpRng::seed_from_u64(1);
        let horizon = 2_000u64;
        let mut counter = TreeCounter::new(Epsilon::new_unchecked(2.0), horizon);
        let mut truth = 0u64;
        let mut max_err: f64 = 0.0;
        for t in 1..=horizon {
            let inc = u64::from(t % 3 == 0);
            truth += inc;
            let released = counter.observe(inc, &mut rng);
            max_err = max_err.max((released - truth as f64).abs());
        }
        assert_eq!(counter.steps(), horizon);
        // The bound is loose; just check the error stays far below the naive
        // O(T/epsilon) scale and within the stated bound.
        assert!(
            max_err < counter.error_bound(0.01) * 3.0,
            "max error {max_err}"
        );
        assert!(max_err < 200.0, "max error {max_err}");
    }

    #[test]
    fn error_grows_sublinearly_with_the_horizon() {
        let run = |horizon: u64, seed: u64| {
            let mut rng = DpRng::seed_from_u64(seed);
            let mut counter = TreeCounter::new(Epsilon::new_unchecked(1.0), horizon);
            let mut truth = 0u64;
            let mut total_err = 0.0;
            for _ in 1..=horizon {
                truth += 1;
                total_err += (counter.observe(1, &mut rng) - truth as f64).abs();
            }
            total_err / horizon as f64
        };
        let short = run(256, 2);
        let long = run(4_096, 3);
        // A naive independent-noise counter would scale the error by 16x here;
        // the tree counter should grow by far less.
        assert!(long < short * 8.0, "short {short} long {long}");
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn observing_past_the_horizon_panics() {
        let mut rng = DpRng::seed_from_u64(4);
        let mut counter = TreeCounter::new(Epsilon::new_unchecked(1.0), 4);
        for _ in 0..5 {
            let _ = counter.observe(1, &mut rng);
        }
    }

    #[test]
    fn releases_are_never_negative() {
        let mut rng = DpRng::seed_from_u64(5);
        let mut counter = TreeCounter::new(Epsilon::new_unchecked(0.1), 500);
        for _ in 0..500 {
            assert!(counter.observe(0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn error_bound_is_monotone_in_beta_and_epsilon() {
        let c_tight = TreeCounter::new(Epsilon::new_unchecked(1.0), 1024);
        let c_loose = TreeCounter::new(Epsilon::new_unchecked(0.1), 1024);
        assert!(c_loose.error_bound(0.05) > c_tight.error_bound(0.05));
        assert!(c_tight.error_bound(0.01) > c_tight.error_bound(0.1));
    }
}
