//! A client-side leakage-aware query planner.
//!
//! The planner decides, per query, whether to answer by full scan or through
//! a registered encrypted-multimap index ([`crate::emm`]).  The decision has
//! two axes:
//!
//! * **Leakage**: an indexed read reveals the number of index entries
//!   fetched for the query's condition ([`PlanLeakage::IndexedVolume`]) —
//!   a signal correlated with the condition's true selectivity that a full
//!   scan never emits.  Under [`LeakagePolicy::TranscriptOnly`] the planner
//!   refuses to pay this and always scans; under
//!   [`LeakagePolicy::AllowIndexedVolume`] it may trade the declared leakage
//!   for speed.
//! * **Cost**: using the engine's own [`CostModel`] and per-column
//!   [`ColumnStats`] held client-side (the analyst knows its own data), the
//!   planner estimates how many entries a lookup would fetch and compares the
//!   indexed cost against the scan cost.  A low-selectivity condition (or a
//!   tiny table) stays on the scan plan even when the policy would allow the
//!   index.
//!
//! The planner runs entirely on the trusted client — plan *selection* leaks
//! nothing; only plan *execution* does, and each plan carries the
//! [`PlanLeakage`] tag it declares.

use crate::cost::CostModel;
use crate::emm::{index_condition, IndexCondition, IndexDef};
use crate::leakage::PlanLeakage;
use crate::query::Query;
use std::collections::BTreeMap;

/// What extra leakage the analyst is willing to accept from query plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeakagePolicy {
    /// Never leak beyond the engine's baseline transcript: every query runs
    /// as a full scan and the adversary's view is byte-identical to a run
    /// without any indexes registered.
    TranscriptOnly,
    /// Allow plans that reveal per-query indexed fetch volumes in exchange
    /// for sub-scan query cost.
    AllowIndexedVolume,
}

/// The physical plan chosen for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Scan every stored ciphertext (the engines' default path).
    FullScan,
    /// Serve a single-table query through the named index's candidates.
    IndexLookup {
        /// Name of the registered index to use.
        index: String,
    },
    /// Serve an equi-join by scanning the non-indexed side and probing the
    /// named index with each join value.
    IndexNestedLoop {
        /// Name of the registered index to probe.
        index: String,
    },
}

impl Plan {
    /// The leakage this plan declares when executed.
    pub fn leakage(&self) -> PlanLeakage {
        match self {
            Plan::FullScan => PlanLeakage::TranscriptOnly,
            Plan::IndexLookup { .. } | Plan::IndexNestedLoop { .. } => PlanLeakage::IndexedVolume,
        }
    }
}

/// A chosen plan together with its declared leakage and cost estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The physical plan.
    pub plan: Plan,
    /// The leakage executing the plan declares.
    pub leakage: PlanLeakage,
    /// The planner's cost estimate for the plan, in model seconds.
    pub estimated_seconds: f64,
}

/// Client-side statistics for one indexable column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Records the planner believes the table stores (the analyst's best
    /// estimate of the server-side ciphertext count; using the real row
    /// count instead merely under-costs the scan, biasing toward scans).
    pub rows: u64,
    /// Distinct non-NULL values observed in the column (≥ 1 when any row
    /// has a value).
    pub distinct: u64,
    /// Smallest observed value (as `i64` image).
    pub min: i64,
    /// Largest observed value.
    pub max: i64,
}

impl ColumnStats {
    /// Expected rows matching an equality on this column (uniformity
    /// assumption: rows / distinct).
    fn expected_eq(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.rows as f64 / self.distinct as f64
        }
    }

    /// Expected rows matching `BETWEEN lo AND hi` (uniform spread over the
    /// observed [min, max] span).
    fn expected_range(&self, lo: f64, hi: f64) -> f64 {
        if self.rows == 0 || hi < lo {
            return 0.0;
        }
        let span = (self.max - self.min) as f64;
        if span <= 0.0 {
            // Single-valued column: all or nothing.
            let v = self.min as f64;
            return if (lo..=hi).contains(&v) {
                self.rows as f64
            } else {
                0.0
            };
        }
        let overlap = (hi.min(self.max as f64) - lo.max(self.min as f64)).max(0.0);
        self.rows as f64 * (overlap / span).min(1.0)
    }
}

/// Per-(table, column) statistics the analyst feeds the planner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Statistics {
    columns: BTreeMap<(String, String), ColumnStats>,
}

impl Statistics {
    /// Creates an empty statistics set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or replaces) the stats for `table.column`.
    pub fn record(&mut self, table: &str, column: &str, stats: ColumnStats) {
        self.columns
            .insert((table.to_string(), column.to_string()), stats);
    }

    /// The stats for `table.column`, if recorded.
    pub fn get(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.columns.get(&(table.to_string(), column.to_string()))
    }

    /// Derives stats for every indexable column of `table` from plaintext
    /// rows (the analyst's logical copy of its own data).
    pub fn observe_table(
        &mut self,
        table: &str,
        schema: &crate::schema::Schema,
        rows: &[crate::row::Row],
    ) {
        for (ci, col) in schema.columns().iter().enumerate() {
            let mut distinct = std::collections::BTreeSet::new();
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            for row in rows {
                if let Some(v) = row.value(ci).and_then(crate::schema::Value::as_i64) {
                    distinct.insert(v);
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            if distinct.is_empty() {
                continue;
            }
            self.record(
                table,
                &col.name,
                ColumnStats {
                    rows: rows.len() as u64,
                    distinct: distinct.len() as u64,
                    min,
                    max,
                },
            );
        }
    }
}

/// The leakage-aware planner.
#[derive(Debug, Clone)]
pub struct Planner {
    policy: LeakagePolicy,
    stats: Statistics,
}

impl Planner {
    /// Creates a planner with the given policy and statistics.
    pub fn new(policy: LeakagePolicy, stats: Statistics) -> Self {
        Self { policy, stats }
    }

    /// The policy this planner enforces.
    pub fn policy(&self) -> LeakagePolicy {
        self.policy
    }

    /// Mutable access to the statistics (the analyst refreshes them as its
    /// logical database grows).
    pub fn stats_mut(&mut self) -> &mut Statistics {
        &mut self.stats
    }

    /// Chooses a plan for `query` given the registered indexes and the
    /// engine's cost model.
    ///
    /// Under [`LeakagePolicy::TranscriptOnly`] this is always the full scan.
    /// Otherwise the cheapest eligible indexed plan is compared against the
    /// scan estimate, and the index wins only when its estimated cost is
    /// strictly lower.
    pub fn plan(&self, query: &Query, indexes: &[IndexDef], cost: &CostModel) -> PlannedQuery {
        let scan = PlannedQuery {
            plan: Plan::FullScan,
            leakage: PlanLeakage::TranscriptOnly,
            estimated_seconds: self.scan_estimate(query, cost),
        };
        if self.policy == LeakagePolicy::TranscriptOnly {
            return scan;
        }
        let mut best = scan;
        for def in indexes {
            if let Some(candidate) = self.indexed_estimate(query, def, cost) {
                if candidate.estimated_seconds < best.estimated_seconds {
                    best = candidate;
                }
            }
        }
        best
    }

    fn table_rows(&self, table: &str) -> u64 {
        // Any recorded column of the table carries its row count.
        self.stats
            .columns
            .iter()
            .find(|((t, _), _)| t == table)
            .map_or(0, |(_, s)| s.rows)
    }

    fn scan_estimate(&self, query: &Query, cost: &CostModel) -> f64 {
        match query {
            Query::Count { table, .. } | Query::Select { table, .. } => {
                cost.count_cost(self.table_rows(table))
            }
            Query::GroupByCount { table, .. } => cost.group_by_cost(self.table_rows(table)),
            Query::JoinCount { left, right, .. } => {
                cost.join_cost(self.table_rows(left), self.table_rows(right))
            }
        }
    }

    /// The cost of serving `query` through `def`, or `None` when the index
    /// cannot serve it (wrong table/column, no usable condition, no stats).
    fn indexed_estimate(
        &self,
        query: &Query,
        def: &IndexDef,
        cost: &CostModel,
    ) -> Option<PlannedQuery> {
        match query {
            Query::Count { table, predicate }
            | Query::GroupByCount {
                table, predicate, ..
            }
            | Query::Select {
                table, predicate, ..
            } => {
                if table != def.table() {
                    return None;
                }
                let stats = self.stats.get(def.table(), def.column())?;
                let expected = match index_condition(predicate.as_ref(), def.column())? {
                    IndexCondition::Eq(_) => stats.expected_eq(),
                    IndexCondition::Range(lo, hi) => stats.expected_range(lo, hi),
                };
                Some(PlannedQuery {
                    plan: Plan::IndexLookup {
                        index: def.name().to_string(),
                    },
                    leakage: PlanLeakage::IndexedVolume,
                    estimated_seconds: cost.count_cost(expected.ceil() as u64),
                })
            }
            Query::JoinCount {
                left,
                right,
                left_column,
                right_column,
            } => {
                // The index must sit on one join side; the other side drives.
                let outer = if def.table() == right && def.column() == right_column {
                    left
                } else if def.table() == left && def.column() == left_column {
                    right
                } else {
                    return None;
                };
                let inner = self.stats.get(def.table(), def.column())?;
                let outer_rows = self.table_rows(outer);
                let fetched = outer_rows as f64 * inner.expected_eq();
                Some(PlannedQuery {
                    plan: Plan::IndexNestedLoop {
                        index: def.name().to_string(),
                    },
                    leakage: PlanLeakage::IndexedVolume,
                    estimated_seconds: cost.count_cost(outer_rows + fetched.ceil() as u64),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{paper_queries, Predicate};
    use crate::row::Row;
    use crate::schema::{DataType, Schema, Value};

    fn stats_with(table: &str, column: &str, stats: ColumnStats) -> Statistics {
        let mut s = Statistics::new();
        s.record(table, column, stats);
        s
    }

    fn selective_stats() -> Statistics {
        // 100k rows, 10k distinct pickup ids spread over [0, 100k].
        stats_with(
            "yellow",
            "pickup_id",
            ColumnStats {
                rows: 100_000,
                distinct: 10_000,
                min: 0,
                max: 100_000,
            },
        )
    }

    fn idx() -> IndexDef {
        IndexDef::new("idx", "yellow", "pickup_id").unwrap()
    }

    #[test]
    fn transcript_only_policy_always_scans() {
        let planner = Planner::new(LeakagePolicy::TranscriptOnly, selective_stats());
        let planned = planner.plan(
            &paper_queries::q1_range_count("yellow"),
            &[idx()],
            &CostModel::oblidb(),
        );
        assert_eq!(planned.plan, Plan::FullScan);
        assert_eq!(planned.leakage, PlanLeakage::TranscriptOnly);
    }

    #[test]
    fn selective_lookup_beats_scan_under_permissive_policy() {
        let planner = Planner::new(LeakagePolicy::AllowIndexedVolume, selective_stats());
        let cost = CostModel::oblidb();
        // Q1's range [50, 100] covers 0.05% of the value span: the index
        // fetches ~50 of 100k rows.
        let planned = planner.plan(&paper_queries::q1_range_count("yellow"), &[idx()], &cost);
        assert_eq!(
            planned.plan,
            Plan::IndexLookup {
                index: "idx".into()
            }
        );
        assert_eq!(planned.leakage, PlanLeakage::IndexedVolume);
        assert!(planned.estimated_seconds < cost.count_cost(100_000));
    }

    #[test]
    fn unselective_conditions_stay_on_the_scan_plan() {
        // Every row shares one value: the "index" would fetch the whole
        // table, so the scan (identical fetch, no extra leakage) wins.
        let stats = stats_with(
            "yellow",
            "pickup_id",
            ColumnStats {
                rows: 10_000,
                distinct: 1,
                min: 75,
                max: 75,
            },
        );
        let planner = Planner::new(LeakagePolicy::AllowIndexedVolume, stats);
        let q = Query::Count {
            table: "yellow".into(),
            predicate: Some(Predicate::Eq("pickup_id".into(), Value::Int(75))),
        };
        let planned = planner.plan(&q, &[idx()], &CostModel::oblidb());
        assert_eq!(planned.plan, Plan::FullScan);
    }

    #[test]
    fn queries_the_index_cannot_serve_fall_back() {
        let planner = Planner::new(LeakagePolicy::AllowIndexedVolume, selective_stats());
        let cost = CostModel::oblidb();
        // No condition on the indexed column.
        let q = Query::Count {
            table: "yellow".into(),
            predicate: Some(Predicate::GreaterThan("pick_time".into(), 10.0)),
        };
        assert_eq!(planner.plan(&q, &[idx()], &cost).plan, Plan::FullScan);
        // Wrong table.
        let q = paper_queries::q1_range_count("green");
        assert_eq!(planner.plan(&q, &[idx()], &cost).plan, Plan::FullScan);
        // No stats for the column.
        let planner = Planner::new(LeakagePolicy::AllowIndexedVolume, Statistics::new());
        let q = paper_queries::q1_range_count("yellow");
        assert_eq!(planner.plan(&q, &[idx()], &cost).plan, Plan::FullScan);
    }

    #[test]
    fn join_prefers_index_nested_loop_when_probes_are_cheap() {
        let mut stats = Statistics::new();
        stats.record(
            "yellow",
            "pick_time",
            ColumnStats {
                rows: 200_000,
                distinct: 160_000,
                min: 0,
                max: 259_200,
            },
        );
        stats.record(
            "green",
            "pick_time",
            ColumnStats {
                rows: 200_000,
                distinct: 160_000,
                min: 0,
                max: 259_200,
            },
        );
        let planner = Planner::new(LeakagePolicy::AllowIndexedVolume, stats);
        let jix = IndexDef::new("jix", "green", "pick_time").unwrap();
        let cost = CostModel::oblidb();
        let planned = planner.plan(
            &paper_queries::q3_join_count("yellow", "green"),
            &[jix],
            &cost,
        );
        assert_eq!(
            planned.plan,
            Plan::IndexNestedLoop {
                index: "jix".into()
            }
        );
        assert!(planned.estimated_seconds < cost.join_cost(200_000, 200_000));
        // An index on a non-join column cannot serve the join.
        let other = IndexDef::new("other", "green", "pickup_id").unwrap();
        let planned = planner.plan(
            &paper_queries::q3_join_count("yellow", "green"),
            &[other],
            &cost,
        );
        assert_eq!(planned.plan, Plan::FullScan);
    }

    #[test]
    fn observe_table_derives_stats_from_logical_rows() {
        let schema = Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
            ("fare", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row::new(vec![
                    Value::Timestamp(i),
                    Value::Int(50 + (i as i64 % 5)),
                    Value::Float(1.5),
                ])
            })
            .collect();
        let mut stats = Statistics::new();
        stats.observe_table("yellow", &schema, &rows);
        let s = stats.get("yellow", "pickup_id").unwrap();
        assert_eq!(s.rows, 10);
        assert_eq!(s.distinct, 5);
        assert_eq!((s.min, s.max), (50, 54));
        // Float columns have no i64 image and get no stats.
        assert!(stats.get("yellow", "fare").is_none());
        // Timestamp columns do.
        assert!(stats.get("yellow", "pick_time").is_some());
    }

    #[test]
    fn expected_range_handles_degenerate_spans() {
        let single = ColumnStats {
            rows: 100,
            distinct: 1,
            min: 7,
            max: 7,
        };
        assert_eq!(single.expected_range(0.0, 10.0), 100.0);
        assert_eq!(single.expected_range(8.0, 10.0), 0.0);
        let empty = ColumnStats {
            rows: 0,
            distinct: 0,
            min: 0,
            max: 0,
        };
        assert_eq!(empty.expected_eq(), 0.0);
        assert_eq!(empty.expected_range(0.0, 10.0), 0.0);
    }
}
