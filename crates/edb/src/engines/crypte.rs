//! A Crypt-ε-like engine: crypto-assisted DP query answering, L-DP leakage.
//!
//! Crypt-ε (Roy Chowdhury et al.) answers aggregate queries over encrypted
//! data with a per-query differential-privacy budget: released counts carry
//! Laplace noise, so the scheme only ever leaks differentially-private
//! response volumes (the L-DP group of §6).  The paper's evaluation sets the
//! query budget to ε = 3 and notes that Crypt-ε does not support joins
//! (footnote 2), both of which this simulator reproduces.
//!
//! What the simulator preserves from the real system, for the purposes of
//! evaluating DP-Sync:
//!
//! * query answers are the exact count over synced non-dummy records **plus
//!   Laplace noise** with scale `1/ε_query` (per released value),
//! * join queries are rejected,
//! * per-record query cost is an order of magnitude heavier than the
//!   SGX-based engine (crypto-assisted aggregation), and
//! * the adversary observes the update pattern and noisy response volumes
//!   only.

use crate::cost::CostModel;
use crate::emm::IndexDef;
use crate::engines::base::EngineCore;
use crate::leakage::{LeakageClass, LeakageProfile};
use crate::query::{Query, QueryAnswer};
use crate::schema::Schema;
use crate::server::{AdversaryView, QueryObservation};
use crate::sogdb::{EdbError, QueryOutcome, SecureOutsourcedDatabase, TableStats};
use crate::views::ViewDef;
use dpsync_crypto::{EncryptedRecord, MasterKey};
use dpsync_dp::{Epsilon, Laplace};
use rand::RngCore;
use std::time::Instant;

/// Default per-query privacy budget used in the paper's evaluation (§8).
pub const DEFAULT_QUERY_EPSILON: f64 = 3.0;

/// The Crypt-ε-like engine.
#[derive(Debug)]
pub struct CryptEpsilonEngine {
    core: EngineCore,
    cost: CostModel,
    query_epsilon: Epsilon,
}

impl CryptEpsilonEngine {
    /// Creates an engine with the paper's default query budget (ε = 3) and
    /// in-memory ciphertext storage.
    pub fn new(master: &MasterKey) -> Self {
        Self::with_query_epsilon(master, Epsilon::new_unchecked(DEFAULT_QUERY_EPSILON))
    }

    /// Creates an engine over an explicit storage backend (e.g. the durable
    /// segment log), with the default query budget.
    pub fn with_backend(
        master: &MasterKey,
        backend: std::sync::Arc<dyn crate::backend::StorageBackend>,
    ) -> Result<Self, crate::backend::StorageError> {
        Ok(Self {
            core: EngineCore::with_backend(master, backend)?,
            cost: CostModel::crypt_epsilon(),
            query_epsilon: Epsilon::new_unchecked(DEFAULT_QUERY_EPSILON),
        })
    }

    /// Creates an engine with a custom per-query budget.
    pub fn with_query_epsilon(master: &MasterKey, query_epsilon: Epsilon) -> Self {
        Self {
            core: EngineCore::new(master),
            cost: CostModel::crypt_epsilon(),
            query_epsilon,
        }
    }

    /// The per-query privacy budget used to perturb released answers.
    pub fn query_epsilon(&self) -> Epsilon {
        self.query_epsilon
    }

    fn estimate(&self, query: &Query) -> f64 {
        match query {
            Query::Count { table, .. } | Query::Select { table, .. } => {
                self.cost.count_cost(self.core.ciphertext_count(table))
            }
            Query::GroupByCount { table, .. } => {
                self.cost.group_by_cost(self.core.ciphertext_count(table))
            }
            Query::JoinCount { .. } => f64::INFINITY,
        }
    }

    fn perturb_answer(&self, answer: QueryAnswer, rng: &mut dyn RngCore) -> QueryAnswer {
        let noise = Laplace::new(0.0, 1.0 / self.query_epsilon.value())
            .expect("query epsilon is validated");
        // The raw perturbed value is released as-is — a Laplace draw can
        // drive a count below zero, and flooring it here would bias the
        // released distribution and desynchronize the transcript from the
        // release.  Consumers that want a presentable count clamp at the
        // analyst trust boundary (see `dpsync-core`'s `Analyst`), never on
        // the server.
        match answer {
            QueryAnswer::Scalar(v) => QueryAnswer::Scalar((v + noise.sample(rng)).round()),
            QueryAnswer::Groups(groups) => QueryAnswer::Groups(
                groups
                    .into_iter()
                    .map(|(k, v)| (k, (v + noise.sample(rng)).round()))
                    .collect(),
            ),
            QueryAnswer::Rows(rows) => QueryAnswer::Rows(rows),
        }
    }
}

impl SecureOutsourcedDatabase for CryptEpsilonEngine {
    fn name(&self) -> &'static str {
        "crypt-epsilon"
    }

    fn leakage_profile(&self) -> LeakageProfile {
        LeakageProfile {
            class: LeakageClass::LDpDifferentiallyPrivateVolume,
            update_leaks_beyond_pattern: false,
            native_dummy_support: false,
        }
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn setup(
        &self,
        table: &str,
        schema: Schema,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        self.core.setup(table, schema, records)
    }

    fn update(
        &self,
        table: &str,
        time: u64,
        records: Vec<EncryptedRecord>,
    ) -> Result<(), EdbError> {
        self.core.ingest(table, time, records)
    }

    fn query(&self, query: &Query, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        if matches!(query, Query::JoinCount { .. }) {
            return Err(EdbError::UnsupportedQuery {
                engine: self.name(),
                kind: "join",
            });
        }
        let started = Instant::now();
        let (exact, touched) = self.core.execute(query)?;
        let answer = self.perturb_answer(exact, rng);
        let measured = started.elapsed().as_secs_f64();
        let estimated = self.estimate(query);

        let sequence = self.core.next_query_sequence();
        let noisy_volume = answer.total().max(0.0).round() as u64;
        self.core.storage().observe_query(QueryObservation {
            sequence,
            kind: query.kind().to_string(),
            touched_records: touched,
            // L-DP: the server learns only the differentially-private volume.
            observed_response_volume: Some(noisy_volume),
        });

        Ok(QueryOutcome {
            answer,
            estimated_seconds: estimated,
            measured_seconds: measured,
            touched_records: touched,
        })
    }

    fn supports(&self, query: &Query) -> bool {
        !matches!(query, Query::JoinCount { .. })
    }

    fn table_stats(&self, table: &str) -> TableStats {
        self.core.table_stats(table)
    }

    fn adversary_view(&self) -> AdversaryView {
        self.core.storage().adversary_view()
    }

    fn register_view(&self, def: &ViewDef) -> Result<(), EdbError> {
        // Views only cover count shapes, which Crypt-ε supports; nothing is
        // observed by the server at registration time.
        self.core.register_view(def)
    }

    fn query_view(&self, name: &str, rng: &mut dyn RngCore) -> Result<QueryOutcome, EdbError> {
        let started = Instant::now();
        let (query, exact, touched) = self.core.view_read(name)?;
        // The exact view answer equals the exact scan answer bit-for-bit, so
        // drawing the Laplace perturbation from the caller's rng consumes the
        // same draws in the same order as the scan path — fixed-seed runs
        // (including remote ones through the entropy sub-protocol) release
        // identical noisy answers and identical noisy volumes with views on
        // or off.
        let answer = self.perturb_answer(exact, rng);
        let measured = started.elapsed().as_secs_f64();
        let estimated = self.estimate(&query);

        let sequence = self.core.next_query_sequence();
        let noisy_volume = answer.total().max(0.0).round() as u64;
        self.core.storage().observe_query(QueryObservation {
            sequence,
            kind: query.kind().to_string(),
            touched_records: touched,
            // L-DP: the server learns only the differentially-private volume.
            observed_response_volume: Some(noisy_volume),
        });

        Ok(QueryOutcome {
            answer,
            estimated_seconds: estimated,
            measured_seconds: measured,
            touched_records: touched,
        })
    }

    fn register_index(&self, def: &IndexDef) -> Result<(), EdbError> {
        // Index maintenance inserts one entry per padded record; the server
        // observes nothing beyond the Definition-2 update pattern.
        self.core.register_index(def)
    }

    fn query_indexed(
        &self,
        name: &str,
        query: &Query,
        rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, EdbError> {
        // Crypt-ε does not support joins, indexed or not (footnote 2).
        if matches!(query, Query::JoinCount { .. }) {
            return Err(EdbError::UnsupportedQuery {
                engine: self.name(),
                kind: "join",
            });
        }
        let started = Instant::now();
        let (exact, touched) = self.core.indexed_read(name, query)?;
        // The exact indexed answer equals the exact scan answer bit-for-bit,
        // so the Laplace draws (and the released noisy values) match the
        // scan path's under the same rng state.
        let answer = self.perturb_answer(exact, rng);
        let measured = started.elapsed().as_secs_f64();
        let estimated = self.cost.count_cost(touched);

        let sequence = self.core.next_query_sequence();
        let noisy_volume = answer.total().max(0.0).round() as u64;
        self.core.storage().observe_query(QueryObservation {
            sequence,
            kind: "index".to_string(),
            touched_records: touched,
            // L-DP volume plus the declared index access pattern (the
            // touched-entry count above) — the leakage the planner accepts
            // when it picks this plan.
            observed_response_volume: Some(noisy_volume),
        });

        Ok(QueryOutcome {
            answer,
            estimated_seconds: estimated,
            measured_seconds: measured,
            touched_records: touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::base::encrypt_batch;
    use crate::query::paper_queries;
    use crate::row::Row;
    use crate::schema::{DataType, Value};
    use dpsync_crypto::RecordCryptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ])
    }

    fn row(t: u64, p: i64) -> Row {
        Row::new(vec![Value::Timestamp(t), Value::Int(p)])
    }

    fn engine_with_data(n: usize) -> (CryptEpsilonEngine, RecordCryptor) {
        let master = MasterKey::from_bytes([11u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = CryptEpsilonEngine::new(&master);
        let rows: Vec<Row> = (0..n).map(|i| row(i as u64, 75)).collect();
        let batch = encrypt_batch(&mut cryptor, &rows, n / 2);
        engine.setup("yellow", schema(), batch).unwrap();
        (engine, cryptor)
    }

    #[test]
    fn answers_are_noisy_but_close() {
        let (engine, _) = engine_with_data(200);
        let mut rng = StdRng::seed_from_u64(5);
        let q = paper_queries::q1_range_count("yellow");
        let mut errors = Vec::new();
        for _ in 0..50 {
            let outcome = engine.query(&q, &mut rng).unwrap();
            errors.push((outcome.answer.as_scalar().unwrap() - 200.0).abs());
        }
        let mean_error = errors.iter().sum::<f64>() / errors.len() as f64;
        // With epsilon = 3 the expected absolute Laplace error is 1/3.
        assert!(mean_error < 2.0, "mean error {mean_error}");
        assert!(errors.iter().any(|e| *e > 0.0), "noise was never added");
    }

    #[test]
    fn group_by_answers_are_noisy_per_group() {
        let (engine, _) = engine_with_data(100);
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = engine
            .query(&paper_queries::q2_group_by_count("yellow"), &mut rng)
            .unwrap();
        let groups = outcome.answer.as_groups().unwrap();
        assert_eq!(groups.len(), 1);
        let count = groups.values().next().unwrap();
        assert!((count - 100.0).abs() < 10.0);
    }

    #[test]
    fn joins_are_rejected() {
        let (engine, _) = engine_with_data(10);
        let mut rng = StdRng::seed_from_u64(7);
        let q = paper_queries::q3_join_count("yellow", "yellow");
        assert!(!engine.supports(&q));
        assert!(matches!(
            engine.query(&q, &mut rng),
            Err(EdbError::UnsupportedQuery { kind: "join", .. })
        ));
    }

    #[test]
    fn leakage_profile_is_ldp_and_compatible() {
        let (engine, _) = engine_with_data(10);
        let profile = engine.leakage_profile();
        assert_eq!(profile.class, LeakageClass::LDpDifferentiallyPrivateVolume);
        assert!(profile.dp_sync_compatible());
        assert!(!profile.native_dummy_support);
        assert_eq!(engine.name(), "crypt-epsilon");
        assert_eq!(engine.query_epsilon().value(), DEFAULT_QUERY_EPSILON);
    }

    #[test]
    fn adversary_sees_noisy_volumes_only() {
        let (engine, _) = engine_with_data(50);
        let mut rng = StdRng::seed_from_u64(8);
        engine
            .query(&paper_queries::q1_range_count("yellow"), &mut rng)
            .unwrap();
        let view = engine.adversary_view();
        assert_eq!(view.queries().len(), 1);
        let observed = view.queries()[0].observed_response_volume.unwrap();
        // The observed volume is the noisy released count, close to but not
        // guaranteed equal to the true 50.
        assert!((observed as i64 - 50).abs() < 20);
    }

    #[test]
    fn cost_model_is_heavier_than_oblidb() {
        let (engine, _) = engine_with_data(100);
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = engine
            .query(&paper_queries::q2_group_by_count("yellow"), &mut rng)
            .unwrap();
        assert!(outcome.estimated_seconds > CostModel::oblidb().group_by_cost(150));
    }

    #[test]
    fn view_read_draws_identical_noise_as_scan() {
        use crate::views::ViewDef;
        // Same data, same seed: the noisy view answer and the noisy volume
        // the adversary observes must equal the scan path's bit-for-bit,
        // because the exact answers (and therefore the Laplace draws) match.
        let (scan_engine, _) = engine_with_data(60);
        let (view_engine, _) = engine_with_data(60);
        let q1 = paper_queries::q1_range_count("yellow");
        view_engine
            .register_view(&ViewDef::new("q1", q1.clone()).unwrap())
            .unwrap();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let scan = scan_engine.query(&q1, &mut rng_a).unwrap();
        let view = view_engine.query_view("q1", &mut rng_b).unwrap();
        assert_eq!(view.answer, scan.answer);
        assert_eq!(view.estimated_seconds, scan.estimated_seconds);
        assert_eq!(view.touched_records, scan.touched_records);
        assert_eq!(
            scan_engine.adversary_view().queries(),
            view_engine.adversary_view().queries()
        );
    }

    #[test]
    fn indexed_read_draws_identical_noise_as_scan_and_rejects_joins() {
        let (scan_engine, _) = engine_with_data(60);
        let (index_engine, _) = engine_with_data(60);
        let q1 = paper_queries::q1_range_count("yellow");
        index_engine
            .register_index(&IndexDef::new("idx", "yellow", "pickup_id").unwrap())
            .unwrap();
        let mut rng_a = StdRng::seed_from_u64(78);
        let mut rng_b = StdRng::seed_from_u64(78);
        let scan = scan_engine.query(&q1, &mut rng_a).unwrap();
        let indexed = index_engine.query_indexed("idx", &q1, &mut rng_b).unwrap();
        // Same exact answer, same rng state → the same noisy release and the
        // same noisy volume on the transcript.
        assert_eq!(indexed.answer, scan.answer);
        assert_eq!(
            index_engine.adversary_view().queries()[0].observed_response_volume,
            scan_engine.adversary_view().queries()[0].observed_response_volume
        );
        // The observation declares the index plan and its fetch count.
        let observed = index_engine.adversary_view().queries()[0].clone();
        assert_eq!(observed.kind, "index");
        assert_eq!(observed.touched_records, 60);
        // Joins stay unsupported through the indexed path too.
        let mut rng = StdRng::seed_from_u64(79);
        assert!(matches!(
            index_engine.query_indexed(
                "idx",
                &paper_queries::q3_join_count("yellow", "yellow"),
                &mut rng
            ),
            Err(EdbError::UnsupportedQuery { kind: "join", .. })
        ));
    }

    #[test]
    fn negative_noisy_draws_are_released_raw() {
        // An empty table with a very small query budget produces large
        // noise; the engine must release the raw perturbed value — negative
        // draws included — because clamping belongs at the analyst trust
        // boundary, never on the server, where it would bias the released
        // distribution.  The adversary-observed volume stays a u64 (a
        // negative release is observed as volume 0).
        let master = MasterKey::from_bytes([12u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        let engine = CryptEpsilonEngine::with_query_epsilon(&master, Epsilon::new_unchecked(0.05));
        engine
            .setup("yellow", schema(), encrypt_batch(&mut cryptor, &[], 0))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut saw_negative = false;
        for _ in 0..100 {
            let outcome = engine
                .query(&paper_queries::q1_range_count("yellow"), &mut rng)
                .unwrap();
            saw_negative |= outcome.answer.as_scalar().unwrap() < 0.0;
        }
        assert!(saw_negative, "a 100-draw Laplace run must dip below zero");
        for q in engine.adversary_view().queries() {
            // The transcript's observed volume is the released value's u64
            // image: never negative by construction of the type.
            assert!(q.observed_response_volume.is_some());
        }
    }
}
