//! `any::<T>()`: strategies for a type's full natural domain.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Standard;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Returns the canonical strategy for this type.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen()
    }
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Returns the canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}
