//! Closed-form accuracy and performance bounds from the paper.
//!
//! * [`laplace_sum_tail`] / [`laplace_sum_tail_alpha`] implement Lemma 19 and
//!   Corollary 20: tail bounds on the sum of `k` i.i.d. `Lap(b)` variables.
//! * [`timer_logical_gap_bound`] / [`timer_outsourced_bound`] implement
//!   Theorems 6 and 7 (DP-Timer accuracy / performance).
//! * [`ant_logical_gap_bound`] / [`ant_outsourced_bound`] implement Theorems 8
//!   and 9 (DP-ANT accuracy / performance).
//!
//! The simulation-based property tests in `dpsync-core` check that the
//! empirical logical gap and outsourced-size overhead respect these bounds
//! with the advertised probability, which is the executable counterpart of
//! the paper's Appendix C proofs.

use crate::Epsilon;

/// Lemma 19: for `Y = Σ_{i=1..k} Y_i` with `Y_i ~ Lap(b)` i.i.d. and
/// `0 < alpha <= k·b`, `Pr[Y >= alpha] <= exp(-alpha² / (4 k b²))`.
///
/// Values of `alpha` above `k·b` are clamped to `k·b` (the bound still holds,
/// it is merely looser than the optimal Chernoff exponent there).
pub fn laplace_sum_tail(k: u64, b: f64, alpha: f64) -> f64 {
    assert!(b > 0.0, "Laplace scale must be positive");
    if alpha <= 0.0 || k == 0 {
        return 1.0;
    }
    let kb = k as f64 * b;
    let a = alpha.min(kb);
    (-(a * a) / (4.0 * k as f64 * b * b)).exp().min(1.0)
}

/// Corollary 20: the value `alpha = 2 b sqrt(k ln(1/beta))` such that
/// `Pr[Y >= alpha] <= beta` (valid once `k >= 4 ln(1/beta)`).
pub fn laplace_sum_tail_alpha(k: u64, b: f64, beta: f64) -> f64 {
    assert!(b > 0.0, "Laplace scale must be positive");
    assert!(
        (0.0..1.0).contains(&beta) && beta > 0.0,
        "beta must be in (0,1)"
    );
    2.0 * b * ((k as f64) * (1.0 / beta).ln()).sqrt()
}

/// Theorem 6: with probability at least `1 - beta`, the DP-Timer logical gap
/// at a time where `k` synchronizations have happened is at most
/// `c + 2/ε · sqrt(k ln(1/β))` where `c` is the number of records received
/// since the last update.  This function returns the `alpha` term (excluding
/// `c`, which is workload-dependent and bounded by the timer period).
pub fn timer_logical_gap_bound(epsilon: Epsilon, k: u64, beta: f64) -> f64 {
    laplace_sum_tail_alpha(k, 1.0 / epsilon.value(), beta)
}

/// Theorem 7: with probability at least `1 - beta`, the total outsourced size
/// under DP-Timer satisfies `|DS_t| <= |D_t| + alpha + eta` with
/// `alpha = 2/ε sqrt(k ln 1/β)` and `eta = s * floor(t / f)` (cache-flush
/// dummy volume).  Returns `alpha + eta`.
pub fn timer_outsourced_bound(
    epsilon: Epsilon,
    k: u64,
    beta: f64,
    flush_size: u64,
    flush_interval: u64,
    t: u64,
) -> f64 {
    let alpha = timer_logical_gap_bound(epsilon, k, beta);
    let eta = flush_dummy_volume(flush_size, flush_interval, t) as f64;
    alpha + eta
}

/// Theorem 8: with probability at least `1 - beta`, the DP-ANT logical gap at
/// time `t` is at most `c + 16 (ln t + ln(2/β)) / ε`.  Returns the `alpha`
/// term (excluding `c`).
pub fn ant_logical_gap_bound(epsilon: Epsilon, t: u64, beta: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&beta) && beta > 0.0,
        "beta must be in (0,1)"
    );
    let t = (t.max(1)) as f64;
    16.0 * (t.ln() + (2.0 / beta).ln()) / epsilon.value()
}

/// Theorem 9: with probability at least `1 - beta`, the total outsourced size
/// under DP-ANT satisfies `|DS_t| <= |D_t| + alpha + eta`.  Returns
/// `alpha + eta`.
pub fn ant_outsourced_bound(
    epsilon: Epsilon,
    t: u64,
    beta: f64,
    flush_size: u64,
    flush_interval: u64,
) -> f64 {
    let alpha = ant_logical_gap_bound(epsilon, t, beta);
    let eta = flush_dummy_volume(flush_size, flush_interval, t) as f64;
    alpha + eta
}

/// The `eta = s * floor(t / f)` dummy volume contributed by the cache-flush
/// mechanism by time `t` (both Theorems 7 and 9).
pub fn flush_dummy_volume(flush_size: u64, flush_interval: u64, t: u64) -> u64 {
    t.checked_div(flush_interval)
        .map_or(0, |flushes| flush_size * flushes)
}

/// The minimum number of synchronizations `k >= 4 ln(1/beta)` required for
/// Corollary 20 / Theorem 6 to apply.
pub fn min_syncs_for_bound(beta: f64) -> u64 {
    assert!(
        (0.0..1.0).contains(&beta) && beta > 0.0,
        "beta must be in (0,1)"
    );
    (4.0 * (1.0 / beta).ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpRng, Laplace};

    #[test]
    fn tail_bound_is_a_probability() {
        for k in [1u64, 5, 50, 500] {
            for alpha in [0.1, 1.0, 10.0, 1000.0] {
                let p = laplace_sum_tail(k, 2.0, alpha);
                assert!((0.0..=1.0).contains(&p), "k={k} alpha={alpha} p={p}");
            }
        }
        assert_eq!(laplace_sum_tail(0, 1.0, 5.0), 1.0);
        assert_eq!(laplace_sum_tail(3, 1.0, 0.0), 1.0);
    }

    #[test]
    fn tail_bound_decreases_in_alpha() {
        let mut prev = 1.0;
        for a in 1..40 {
            let p = laplace_sum_tail(10, 1.0, a as f64);
            assert!(p <= prev + 1e-15);
            prev = p;
        }
    }

    #[test]
    fn corollary_20_alpha_hits_target_beta() {
        // Plugging alpha from Corollary 20 back into Lemma 19 (with alpha <= kb)
        // must give exactly beta.
        let k = 100u64;
        let b = 2.0;
        let beta = 0.05;
        let alpha = laplace_sum_tail_alpha(k, b, beta);
        assert!(
            alpha <= k as f64 * b,
            "corollary regime requires alpha <= kb"
        );
        let p = laplace_sum_tail(k, b, alpha);
        assert!((p - beta).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn empirical_laplace_sum_respects_lemma_19() {
        // Monte-Carlo check: the empirical exceedance frequency of sums of
        // Laplace noise must not exceed the Lemma 19 bound (with slack).
        let k = 25u64;
        let b = 1.0 / 0.5; // epsilon = 0.5
        let dist = Laplace::new(0.0, b).unwrap();
        let mut rng = DpRng::seed_from_u64(123);
        let beta = 0.1;
        let alpha = laplace_sum_tail_alpha(k, b, beta);
        let trials = 20_000;
        let mut exceed = 0u32;
        for _ in 0..trials {
            let sum: f64 = (0..k).map(|_| dist.sample(&mut rng)).sum();
            if sum >= alpha {
                exceed += 1;
            }
        }
        let freq = f64::from(exceed) / f64::from(trials as u32);
        assert!(freq <= beta * 1.2, "freq={freq} beta={beta}");
    }

    #[test]
    fn timer_bound_shrinks_with_larger_epsilon() {
        let k = 50;
        let beta = 0.05;
        let loose = timer_logical_gap_bound(Epsilon::new_unchecked(0.1), k, beta);
        let tight = timer_logical_gap_bound(Epsilon::new_unchecked(1.0), k, beta);
        assert!(tight < loose);
        assert!(
            (loose / tight - 10.0).abs() < 1e-9,
            "bound scales as 1/epsilon"
        );
    }

    #[test]
    fn ant_bound_grows_logarithmically_in_time() {
        let eps = Epsilon::new_unchecked(0.5);
        let beta = 0.05;
        let b1 = ant_logical_gap_bound(eps, 100, beta);
        let b2 = ant_logical_gap_bound(eps, 10_000, beta);
        let b3 = ant_logical_gap_bound(eps, 1_000_000, beta);
        assert!(b2 > b1 && b3 > b2);
        // Each 100x increase in t adds 16*ln(100)/eps.
        let expected_step = 16.0 * (100.0f64).ln() / eps.value();
        assert!(((b2 - b1) - expected_step).abs() < 1e-9);
        assert!(((b3 - b2) - expected_step).abs() < 1e-9);
    }

    #[test]
    fn flush_volume_counts_completed_intervals() {
        assert_eq!(flush_dummy_volume(15, 2000, 0), 0);
        assert_eq!(flush_dummy_volume(15, 2000, 1999), 0);
        assert_eq!(flush_dummy_volume(15, 2000, 2000), 15);
        assert_eq!(flush_dummy_volume(15, 2000, 43_200), 15 * 21);
        assert_eq!(flush_dummy_volume(15, 0, 43_200), 0);
    }

    #[test]
    fn outsourced_bounds_add_flush_volume() {
        let eps = Epsilon::new_unchecked(0.5);
        let a = timer_logical_gap_bound(eps, 100, 0.05);
        let total = timer_outsourced_bound(eps, 100, 0.05, 15, 2000, 43_200);
        assert!((total - (a + (15 * 21) as f64)).abs() < 1e-9);

        let a2 = ant_logical_gap_bound(eps, 43_200, 0.05);
        let total2 = ant_outsourced_bound(eps, 43_200, 0.05, 15, 2000);
        assert!((total2 - (a2 + (15 * 21) as f64)).abs() < 1e-9);
    }

    #[test]
    fn min_syncs_matches_formula() {
        assert_eq!(
            min_syncs_for_bound(0.05),
            (4.0 * (20.0f64).ln()).ceil() as u64
        );
        assert!(min_syncs_for_bound(0.5) >= 2);
    }

    #[test]
    #[should_panic]
    fn invalid_beta_panics() {
        let _ = laplace_sum_tail_alpha(10, 1.0, 1.5);
    }
}
