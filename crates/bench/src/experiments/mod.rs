//! Experiment implementations, one module per paper artifact group.
//!
//! * [`config`] — shared experiment configuration (engines, strategy
//!   parameters, scaling).
//! * [`runner`] — builds workloads/engines/strategies and runs simulations.
//! * [`end_to_end`] — the Figure 2/3/4 time series and the Table 5 aggregate
//!   comparison (one simulated month per strategy × engine).
//! * [`sweeps`] — the privacy sweep of Figure 5 and the `T`/θ sweeps of
//!   Figure 6.
//! * [`tables`] — the analytic Table 2, the leakage-classification Table 3
//!   and the Table 4 privacy verification.

pub mod ablation;
pub mod config;
pub mod end_to_end;
pub mod runner;
pub mod sweeps;
pub mod tables;
