//! Update-pattern leakage and the leakage classification of encrypted databases.
//!
//! * [`UpdatePattern`] is the paper's Definition 2: the transcript
//!   `{(t, |γ_t|)}` of update times and volumes the server observes.
//! * [`LeakageClass`] is the four-way classification of §6 (Table 3): what a
//!   database's *query* protocol reveals determines whether DP-Sync can hide
//!   dummy records from the adversary.
//! * [`LeakageProfile`] bundles the class with human-readable notes and the
//!   compatibility verdict, and [`catalog`] reproduces Table 3's inventory of
//!   published systems.

use serde::{Deserialize, Serialize};

/// One observed update event: the time it happened and how many ciphertexts
/// it carried (the "update volume").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Discrete time unit at which the update protocol ran.
    pub time: u64,
    /// Number of encrypted records uploaded (real + dummy — the server cannot
    /// tell them apart).
    pub volume: u64,
}

/// The update pattern `UpdtPatt(Σ, D) = {(t, |γ_t|)}` of Definition 2.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdatePattern {
    events: Vec<UpdateEvent>,
}

impl UpdatePattern {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an update of `volume` records at `time`.
    pub fn record(&mut self, time: u64, volume: u64) {
        self.events.push(UpdateEvent { time, volume });
    }

    /// The observed events in arrival order.
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// Number of updates observed.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no update has been observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of ciphertexts uploaded across all updates.
    pub fn total_volume(&self) -> u64 {
        self.events.iter().map(|e| e.volume).sum()
    }

    /// The volumes only, in arrival order (used by the privacy tester, which
    /// compares volume distributions between neighboring databases).
    pub fn volumes(&self) -> Vec<u64> {
        self.events.iter().map(|e| e.volume).collect()
    }

    /// The times at which updates occurred.
    pub fn times(&self) -> Vec<u64> {
        self.events.iter().map(|e| e.time).collect()
    }
}

/// The four leakage categories of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeakageClass {
    /// L-0: access-pattern and response-volume hiding.
    L0ResponseVolumeHiding,
    /// L-DP: reveals only differentially-private response volumes.
    LDpDifferentiallyPrivateVolume,
    /// L-1: hides access patterns but reveals exact response volumes.
    L1RevealResponseVolume,
    /// L-2: reveals the exact access pattern (and therefore volumes).
    L2RevealAccessPattern,
}

impl LeakageClass {
    /// Whether a database in this class can be plugged into DP-Sync without
    /// additional mitigation (§6).
    pub fn directly_compatible(self) -> bool {
        matches!(
            self,
            LeakageClass::L0ResponseVolumeHiding | LeakageClass::LDpDifferentiallyPrivateVolume
        )
    }

    /// Whether the class can be made compatible with extra measures (padding,
    /// pseudorandom transformation, ...). L-2 cannot.
    pub fn compatible_with_mitigation(self) -> bool {
        !matches!(self, LeakageClass::L2RevealAccessPattern)
    }

    /// The short label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            LeakageClass::L0ResponseVolumeHiding => "L-0",
            LeakageClass::LDpDifferentiallyPrivateVolume => "L-DP",
            LeakageClass::L1RevealResponseVolume => "L-1",
            LeakageClass::L2RevealAccessPattern => "L-2",
        }
    }
}

impl std::fmt::Display for LeakageClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A catalog entry describing a published encrypted database scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// System name as it appears in the paper.
    pub name: &'static str,
    /// Leakage class assigned in Table 3.
    pub class: LeakageClass,
    /// Short description of why it lands in that class.
    pub rationale: &'static str,
}

/// Reproduces the scheme inventory of Table 3.
pub fn catalog() -> Vec<CatalogEntry> {
    use LeakageClass::*;
    vec![
        CatalogEntry {
            name: "VLH/AVLH",
            class: L0ResponseVolumeHiding,
            rationale: "volume-hiding structured encryption",
        },
        CatalogEntry {
            name: "ObliDB",
            class: L0ResponseVolumeHiding,
            rationale: "oblivious query processing in SGX with padded outputs",
        },
        CatalogEntry {
            name: "SEAL (adjustable)",
            class: L0ResponseVolumeHiding,
            rationale: "adjustable oblivious index",
        },
        CatalogEntry {
            name: "Opaque",
            class: L0ResponseVolumeHiding,
            rationale: "oblivious distributed analytics",
        },
        CatalogEntry {
            name: "CSAGR19",
            class: L0ResponseVolumeHiding,
            rationale: "controllable leakage with padding",
        },
        CatalogEntry {
            name: "dp-MM",
            class: LDpDifferentiallyPrivateVolume,
            rationale: "differentially-private multimap volumes",
        },
        CatalogEntry {
            name: "Hermetic",
            class: LDpDifferentiallyPrivateVolume,
            rationale: "DP-padded oblivious operators",
        },
        CatalogEntry {
            name: "KKNO17",
            class: LDpDifferentiallyPrivateVolume,
            rationale: "DP access-pattern leakage",
        },
        CatalogEntry {
            name: "Crypt-epsilon",
            class: LDpDifferentiallyPrivateVolume,
            rationale: "DP query answers over encrypted data",
        },
        CatalogEntry {
            name: "AHKM19",
            class: LDpDifferentiallyPrivateVolume,
            rationale: "encrypted databases for differential privacy",
        },
        CatalogEntry {
            name: "Shrinkwrap",
            class: LDpDifferentiallyPrivateVolume,
            rationale: "DP intermediate result sizes",
        },
        CatalogEntry {
            name: "PPQED_a",
            class: L1RevealResponseVolume,
            rationale: "HE-based predicate evaluation reveals result sizes",
        },
        CatalogEntry {
            name: "StealthDB",
            class: L1RevealResponseVolume,
            rationale: "SGX row store reveals result volumes",
        },
        CatalogEntry {
            name: "SisoSPIR",
            class: L1RevealResponseVolume,
            rationale: "ORAM-based PIR reveals volumes",
        },
        CatalogEntry {
            name: "CryptDB",
            class: L2RevealAccessPattern,
            rationale: "deterministic/order-preserving encryption",
        },
        CatalogEntry {
            name: "Cipherbase",
            class: L2RevealAccessPattern,
            rationale: "TEE with plaintext-visible access patterns",
        },
        CatalogEntry {
            name: "Arx",
            class: L2RevealAccessPattern,
            rationale: "index traversal reveals access pattern",
        },
        CatalogEntry {
            name: "HardIDX",
            class: L2RevealAccessPattern,
            rationale: "SGX B-tree reveals search path",
        },
        CatalogEntry {
            name: "EnclaveDB",
            class: L2RevealAccessPattern,
            rationale: "enclave DB with observable memory access",
        },
    ]
}

/// A leakage profile for a concrete engine implementation in this workspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakageProfile {
    /// Leakage class of the query protocol.
    pub class: LeakageClass,
    /// Whether the update protocol leaks anything beyond the update pattern
    /// (DP-Sync requires this to be `false` — P4 in §2).
    pub update_leaks_beyond_pattern: bool,
    /// Whether the scheme supports dummy records natively.
    pub native_dummy_support: bool,
}

impl LeakageProfile {
    /// Whether DP-Sync may be layered on this engine.
    pub fn dp_sync_compatible(&self) -> bool {
        self.class.directly_compatible() && !self.update_leaks_beyond_pattern
    }
}

/// The leakage a chosen *query plan* adds on top of the engine's profile.
///
/// Index maintenance never leaks (one entry per padded record), but an
/// indexed **read** reveals how many index entries the query's condition
/// fetched — a response-volume-shaped signal the full scan does not emit.
/// The planner tags every plan it produces so the analyst (and the privacy
/// harness) can account for exactly what each executed query declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanLeakage {
    /// The plan reveals nothing beyond the engine's baseline transcript (a
    /// full scan touches every stored ciphertext, a number the adversary
    /// already knows from the update pattern).
    TranscriptOnly,
    /// The plan reveals the number of index entries fetched for the query's
    /// condition — correlated with the condition's true selectivity.
    IndexedVolume,
}

impl PlanLeakage {
    /// Short label for reports and transcripts.
    pub fn label(self) -> &'static str {
        match self {
            PlanLeakage::TranscriptOnly => "transcript-only",
            PlanLeakage::IndexedVolume => "indexed-volume",
        }
    }
}

impl std::fmt::Display for PlanLeakage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_pattern_records_events_in_order() {
        let mut p = UpdatePattern::new();
        assert!(p.is_empty());
        p.record(0, 120);
        p.record(30, 4);
        p.record(60, 0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_volume(), 124);
        assert_eq!(p.times(), vec![0, 30, 60]);
        assert_eq!(p.volumes(), vec![120, 4, 0]);
        assert_eq!(
            p.events()[1],
            UpdateEvent {
                time: 30,
                volume: 4
            }
        );
    }

    #[test]
    fn compatibility_follows_the_paper() {
        assert!(LeakageClass::L0ResponseVolumeHiding.directly_compatible());
        assert!(LeakageClass::LDpDifferentiallyPrivateVolume.directly_compatible());
        assert!(!LeakageClass::L1RevealResponseVolume.directly_compatible());
        assert!(!LeakageClass::L2RevealAccessPattern.directly_compatible());
        assert!(LeakageClass::L1RevealResponseVolume.compatible_with_mitigation());
        assert!(!LeakageClass::L2RevealAccessPattern.compatible_with_mitigation());
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(LeakageClass::L0ResponseVolumeHiding.to_string(), "L-0");
        assert_eq!(
            LeakageClass::LDpDifferentiallyPrivateVolume.to_string(),
            "L-DP"
        );
        assert_eq!(LeakageClass::L1RevealResponseVolume.to_string(), "L-1");
        assert_eq!(LeakageClass::L2RevealAccessPattern.to_string(), "L-2");
    }

    #[test]
    fn catalog_covers_all_classes_and_the_two_evaluated_engines() {
        let cat = catalog();
        assert!(cat.len() >= 15);
        for class in [
            LeakageClass::L0ResponseVolumeHiding,
            LeakageClass::LDpDifferentiallyPrivateVolume,
            LeakageClass::L1RevealResponseVolume,
            LeakageClass::L2RevealAccessPattern,
        ] {
            assert!(
                cat.iter().any(|e| e.class == class),
                "missing class {class}"
            );
        }
        assert!(cat.iter().any(|e| e.name == "ObliDB"));
        assert!(cat.iter().any(|e| e.name == "Crypt-epsilon"));
    }

    #[test]
    fn plan_leakage_labels_are_distinct() {
        assert_eq!(PlanLeakage::TranscriptOnly.to_string(), "transcript-only");
        assert_eq!(PlanLeakage::IndexedVolume.to_string(), "indexed-volume");
        assert_ne!(PlanLeakage::TranscriptOnly, PlanLeakage::IndexedVolume);
    }

    #[test]
    fn profile_compatibility_requires_class_and_update_constraint() {
        let good = LeakageProfile {
            class: LeakageClass::L0ResponseVolumeHiding,
            update_leaks_beyond_pattern: false,
            native_dummy_support: true,
        };
        assert!(good.dp_sync_compatible());
        let leaky_update = LeakageProfile {
            update_leaks_beyond_pattern: true,
            ..good.clone()
        };
        assert!(!leaky_update.dp_sync_compatible());
        let weak_class = LeakageProfile {
            class: LeakageClass::L2RevealAccessPattern,
            ..good
        };
        assert!(!weak_class.dp_sync_compatible());
    }
}
