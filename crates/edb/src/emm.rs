//! Encrypted multimaps: selection indexes maintained inside `Π_Update`.
//!
//! A full-table scan answers every selection in O(total records); for the
//! recurring point and range lookups of the paper's workload that is pure
//! waste once tables grow large.  This module adds an *encrypted multimap*
//! (EMM) in the structured-encryption tradition: the server-side structure
//! maps a PRF **label** — derived from the indexed column and a value
//! *bucket* — to a list of **encrypted record locators**.  Neither labels nor
//! locators reveal plaintext values or positions without the PRF key, which
//! stays inside the engine's trusted boundary.
//!
//! # Privacy: maintenance adds no leakage
//!
//! The EMM is maintained incrementally inside the ingest path, under the same
//! per-table write lock as the decrypted mirror and the materialized views:
//! **every record of the DP-padded batch inserts exactly one index entry** —
//! dummies insert an entry under a dedicated dummy label, NULLs under a null
//! label — so index growth and maintenance cost are functions only of the
//! public batch volumes `|γ_t|` that the Definition-2 update-pattern
//! transcript already reveals.  Registration and maintenance are therefore
//! invisible in the adversary's transcript.
//!
//! *Reads* are different: an indexed read fetches only the entries whose
//! labels match the query's condition, and the number of entries fetched is a
//! response-volume signal.  Engines record it honestly as a query observation
//! of kind `"index"` (see [`crate::sogdb::SecureOutsourcedDatabase::query_indexed`]),
//! and the leakage-aware planner in `dpsync-core` only takes this path under
//! a policy that declares the leakage acceptable.
//!
//! # Buckets
//!
//! Indexable columns are the exactly-integer types — `Int`, `Timestamp`,
//! `Bool` — bucketed by their `i64` image, so an `Eq` lookup touches one
//! bucket and a `Between` lookup touches one bucket per integer in the range
//! (capped at [`MAX_RANGE_BUCKETS`]).  Bucket candidates are a superset of
//! the matching rows; the engine re-checks the full predicate on the fetched
//! mirror rows, which keeps indexed answers byte-identical to scans.

use crate::query::Predicate;
use crate::rewrite;
use crate::row::Row;
use crate::schema::{DataType, Schema, Value};
use crate::sogdb::EdbError;
use dpsync_crypto::Prf;
use std::collections::BTreeMap;

/// Maximum length of an index name accepted at registration (keeps hostile
/// remote registrations from storing unbounded identifiers).
pub const MAX_INDEX_NAME_LEN: usize = 128;

/// Maximum number of value buckets a single range lookup may enumerate;
/// wider ranges must fall back to a scan.
pub const MAX_RANGE_BUCKETS: i64 = 4096;

/// A registered selection index: a name bound to one column of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    name: String,
    table: String,
    column: String,
}

impl IndexDef {
    /// Validates and creates an index definition.
    ///
    /// Rejects empty or oversized names, empty table or column names, and
    /// the engine-internal dummy-flag column.  Column *type* indexability is
    /// checked at registration time, when the table schema is known.
    pub fn new(
        name: impl Into<String>,
        table: impl Into<String>,
        column: impl Into<String>,
    ) -> Result<Self, EdbError> {
        let name = name.into();
        let table = table.into();
        let column = column.into();
        if name.is_empty() || name.len() > MAX_INDEX_NAME_LEN {
            return Err(EdbError::InvalidIndex(format!(
                "index name must be 1..={MAX_INDEX_NAME_LEN} bytes"
            )));
        }
        if table.is_empty() || column.is_empty() {
            return Err(EdbError::InvalidIndex(
                "index table and column names must be non-empty".into(),
            ));
        }
        if column == rewrite::IS_DUMMY_COLUMN {
            return Err(EdbError::InvalidIndex(format!(
                "indexes may not cover the reserved `{}` column",
                rewrite::IS_DUMMY_COLUMN
            )));
        }
        Ok(Self {
            name,
            table,
            column,
        })
    }

    /// The index's name (the handle used by `query_indexed`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table the index is defined over.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }
}

/// The value bucket an index entry files under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    /// A real row whose indexed value has the given `i64` image.
    Val(i64),
    /// A real row whose indexed value is NULL.
    Null,
    /// A dummy record (its padded entry, indistinguishable in size).
    Dummy,
}

impl Bucket {
    /// The PRF input this bucket labels under: a domain tag byte followed by
    /// the bucket value in little-endian.
    fn prf_input(self) -> [u8; 9] {
        let (tag, value) = match self {
            Bucket::Val(v) => (0u8, v),
            Bucket::Null => (1u8, 0),
            Bucket::Dummy => (2u8, 0),
        };
        let mut input = [0u8; 9];
        input[0] = tag;
        input[1..].copy_from_slice(&value.to_le_bytes());
        input
    }
}

/// An index-usable condition extracted from a query predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexCondition<'a> {
    /// `column = value` on the indexed column.
    Eq(&'a Value),
    /// `column BETWEEN lo AND hi` on the indexed column.
    Range(f64, f64),
}

/// Extracts the first top-level conjunct of `predicate` that is an `Eq` or
/// `Between` on `column`.  Descends `And` chains only — a condition under
/// `Or`/`Not` does not bound the matching rows, so it cannot drive an index
/// lookup.
pub fn index_condition<'a>(
    predicate: Option<&'a Predicate>,
    column: &str,
) -> Option<IndexCondition<'a>> {
    fn walk<'a>(p: &'a Predicate, column: &str) -> Option<IndexCondition<'a>> {
        match p {
            Predicate::Eq(c, v) if c == column => Some(IndexCondition::Eq(v)),
            Predicate::Between(c, lo, hi) if c == column => Some(IndexCondition::Range(*lo, *hi)),
            Predicate::And(a, b) => walk(a, column).or_else(|| walk(b, column)),
            _ => None,
        }
    }
    predicate.and_then(|p| walk(p, column))
}

/// The server-side encrypted multimap for one registered index.
///
/// `entries` maps a 32-byte PRF label to the encrypted locators filed under
/// it; a locator is the mirror row position XORed with a per-entry PRF pad,
/// so the structure reveals only *how many* entries share a label — and even
/// that only as ciphertext-count shape, since dummy and NULL entries occupy
/// labels of their own.
#[derive(Debug, Clone)]
pub struct EncryptedMultimap {
    def: IndexDef,
    prf: Prf,
    /// Pre-resolved position of the indexed column in the mirror schema.
    column_index: usize,
    /// Label → encrypted locators, in insertion order per label.
    entries: BTreeMap<[u8; 32], Vec<u64>>,
    /// Total records (real + dummy) maintenance has touched — every record
    /// of every padded batch inserts exactly one entry.
    maintained_records: u64,
}

impl EncryptedMultimap {
    /// Creates empty index state over `schema` (the engine's mirror schema,
    /// i.e. the logical schema extended with the dummy flag), keyed with a
    /// per-index PRF.
    ///
    /// Fails when the column is unknown or has a non-indexable type (floats
    /// and text have no exact integer bucketing).
    pub fn new(def: IndexDef, schema: &Schema, prf: Prf) -> Result<Self, EdbError> {
        let column_index = schema.column_index(def.column()).ok_or_else(|| {
            EdbError::Exec(crate::exec::ExecError::UnknownColumn {
                table: def.table().to_string(),
                column: def.column().to_string(),
            })
        })?;
        let data_type = schema.columns()[column_index].data_type;
        if !matches!(
            data_type,
            DataType::Int | DataType::Timestamp | DataType::Bool
        ) {
            return Err(EdbError::InvalidIndex(format!(
                "column `{}` has type {data_type:?}, which has no exact integer bucketing",
                def.column()
            )));
        }
        Ok(Self {
            def,
            prf,
            column_index,
            entries: BTreeMap::new(),
            maintained_records: 0,
        })
    }

    /// The definition this state maintains.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Pre-resolved position of the indexed column in the mirror schema.
    pub fn column_index(&self) -> usize {
        self.column_index
    }

    fn label(&self, bucket: Bucket) -> [u8; 32] {
        self.prf.eval(&bucket.prf_input())
    }

    /// The XOR pad for the `ordinal`-th entry under `label`.
    fn pad(&self, label: &[u8; 32], ordinal: u64) -> u64 {
        let mut input = [0u8; 43];
        input[..3].copy_from_slice(b"loc");
        input[3..35].copy_from_slice(label);
        input[35..].copy_from_slice(&ordinal.to_le_bytes());
        let out = self.prf.eval(&input);
        u64::from_le_bytes(out[..8].try_into().expect("8-byte slice"))
    }

    fn insert(&mut self, bucket: Bucket, position: u64) {
        self.maintained_records += 1;
        let label = self.label(bucket);
        let ordinal = self.entries.get(&label).map_or(0, |l| l.len() as u64);
        let pad = self.pad(&label, ordinal);
        self.entries.entry(label).or_default().push(position ^ pad);
    }

    /// Decrypts every locator filed under `bucket`, in insertion order.
    fn positions(&self, bucket: Bucket) -> Vec<u64> {
        let label = self.label(bucket);
        self.entries
            .get(&label)
            .map(|list| {
                list.iter()
                    .enumerate()
                    .map(|(ordinal, ct)| ct ^ self.pad(&label, ordinal as u64))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Applies one real mirror row inserted at `position` (flag column
    /// included; the flag itself is never indexed).
    pub fn apply_row(&mut self, row: &Row, position: u64) {
        let bucket = row
            .value(self.column_index)
            .and_then(Value::as_i64)
            .map_or(Bucket::Null, Bucket::Val);
        self.insert(bucket, position);
    }

    /// Applies one dummy record at `position`: one entry under the dummy
    /// label — the same per-record work as a real row, so maintenance cost
    /// depends only on the (already leaked) padded batch volume.
    pub fn apply_dummy(&mut self, position: u64) {
        self.insert(Bucket::Dummy, position);
    }

    /// Applies a mirror row at `position`: dummies take the dummy-label path,
    /// real rows the value path.  Used to backfill an index registered after
    /// data has already been ingested.
    pub fn apply_mirror_row(&mut self, row: &Row, flag_column: usize, position: u64) {
        if row.value(flag_column) == Some(&Value::Bool(true)) {
            self.apply_dummy(position);
        } else {
            self.apply_row(row, position);
        }
    }

    /// Positions of the candidate rows for an equi-join probe with `value`
    /// (which must be non-NULL).  Returns `None` when the value has no `i64`
    /// image — such a probe value can never equal an indexed-column value, so
    /// callers treat it as zero matches, exactly like the hash join does.
    pub fn probe(&self, value: &Value) -> Option<Vec<u64>> {
        value.as_i64().map(|v| self.positions(Bucket::Val(v)))
    }

    /// Positions of the candidate rows for `predicate`'s condition on the
    /// indexed column, sorted ascending (mirror order).
    ///
    /// Fails when the predicate has no usable condition, the `Eq` literal has
    /// no exact integer image, or the range spans more than
    /// [`MAX_RANGE_BUCKETS`] buckets.
    pub fn lookup(&self, predicate: Option<&Predicate>) -> Result<Vec<u64>, EdbError> {
        let condition = index_condition(predicate, self.def.column()).ok_or_else(|| {
            EdbError::InvalidIndex(format!(
                "query has no equality or range condition on indexed column `{}`",
                self.def.column()
            ))
        })?;
        let mut positions = match condition {
            IndexCondition::Eq(value) => {
                if value.is_null() {
                    self.positions(Bucket::Null)
                } else {
                    let v = value.as_i64().ok_or_else(|| {
                        EdbError::InvalidIndex(format!(
                            "equality literal {value} has no exact integer bucket"
                        ))
                    })?;
                    self.positions(Bucket::Val(v))
                }
            }
            IndexCondition::Range(lo, hi) => {
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(EdbError::InvalidIndex("range bounds must be finite".into()));
                }
                let lo_bucket = lo.ceil() as i64;
                let hi_bucket = hi.floor() as i64;
                let width = (hi_bucket as i128) - (lo_bucket as i128) + 1;
                if width > MAX_RANGE_BUCKETS as i128 {
                    return Err(EdbError::InvalidIndex(format!(
                        "range spans {width} buckets, more than the {MAX_RANGE_BUCKETS} cap"
                    )));
                }
                let mut out = Vec::new();
                let mut bucket = lo_bucket;
                while bucket <= hi_bucket {
                    out.extend(self.positions(Bucket::Val(bucket)));
                    bucket += 1;
                }
                out
            }
        };
        // Labels are injective per bucket and positions unique per insert, so
        // no dedup is needed; sorting restores mirror order across buckets.
        positions.sort_unstable();
        Ok(positions)
    }

    /// Total index entries stored (equals maintained records: one per record).
    pub fn entry_count(&self) -> u64 {
        self.entries.values().map(|l| l.len() as u64).sum()
    }

    /// Total records (real + dummy) maintenance has touched so far.
    pub fn maintained_records(&self) -> u64 {
        self.maintained_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Schema {
        rewrite::schema_with_dummy_flag(&Schema::from_pairs(&[
            ("pick_time", DataType::Timestamp),
            ("pickup_id", DataType::Int),
        ]))
    }

    fn mirror_row(t: u64, p: i64, dummy: bool) -> Row {
        Row::new(rewrite::values_with_dummy_flag(
            if dummy {
                vec![Value::Null, Value::Null]
            } else {
                vec![Value::Timestamp(t), Value::Int(p)]
            },
            dummy,
        ))
    }

    fn emm() -> EncryptedMultimap {
        let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
        EncryptedMultimap::new(def, &schema(), Prf::new([7u8; 32])).unwrap()
    }

    #[test]
    fn def_validation() {
        assert!(IndexDef::new("i", "yellow", "pickup_id").is_ok());
        assert!(matches!(
            IndexDef::new("", "yellow", "pickup_id"),
            Err(EdbError::InvalidIndex(_))
        ));
        assert!(matches!(
            IndexDef::new("x".repeat(200), "yellow", "pickup_id"),
            Err(EdbError::InvalidIndex(_))
        ));
        assert!(matches!(
            IndexDef::new("i", "", "pickup_id"),
            Err(EdbError::InvalidIndex(_))
        ));
        assert!(matches!(
            IndexDef::new("i", "yellow", rewrite::IS_DUMMY_COLUMN),
            Err(EdbError::InvalidIndex(_))
        ));
        let def = IndexDef::new("i", "yellow", "pickup_id").unwrap();
        assert_eq!(def.name(), "i");
        assert_eq!(def.table(), "yellow");
        assert_eq!(def.column(), "pickup_id");
    }

    #[test]
    fn unindexable_column_types_are_rejected() {
        let schema = rewrite::schema_with_dummy_flag(&Schema::from_pairs(&[
            ("fare", DataType::Float),
            ("note", DataType::Text),
        ]));
        for column in ["fare", "note"] {
            let def = IndexDef::new("i", "t", column).unwrap();
            assert!(matches!(
                EncryptedMultimap::new(def, &schema, Prf::new([1u8; 32])),
                Err(EdbError::InvalidIndex(_))
            ));
        }
        let def = IndexDef::new("i", "t", "ghost").unwrap();
        assert!(matches!(
            EncryptedMultimap::new(def, &schema, Prf::new([1u8; 32])),
            Err(EdbError::Exec(_))
        ));
    }

    #[test]
    fn every_record_inserts_exactly_one_entry() {
        let mut emm = emm();
        for (pos, (p, dummy)) in [(60i64, false), (0, true), (75, false), (0, true)]
            .into_iter()
            .enumerate()
        {
            emm.apply_mirror_row(&mirror_row(1, p, dummy), 2, pos as u64);
        }
        assert_eq!(emm.maintained_records(), 4);
        assert_eq!(emm.entry_count(), 4);
    }

    #[test]
    fn eq_lookup_finds_exactly_the_matching_positions() {
        let mut emm = emm();
        for (pos, p) in [60i64, 75, 60, 99].into_iter().enumerate() {
            emm.apply_row(&mirror_row(1, p, false), pos as u64);
        }
        emm.apply_dummy(4);
        let pred = Predicate::Eq("pickup_id".into(), Value::Int(60));
        assert_eq!(emm.lookup(Some(&pred)).unwrap(), vec![0, 2]);
        let pred = Predicate::Eq("pickup_id".into(), Value::Int(1234));
        assert!(emm.lookup(Some(&pred)).unwrap().is_empty());
    }

    #[test]
    fn range_lookup_unions_buckets_in_mirror_order() {
        let mut emm = emm();
        for (pos, p) in [40i64, 55, 100, 101, 50].into_iter().enumerate() {
            emm.apply_row(&mirror_row(1, p, false), pos as u64);
        }
        let pred = Predicate::Between("pickup_id".into(), 50.0, 100.0);
        assert_eq!(emm.lookup(Some(&pred)).unwrap(), vec![1, 2, 4]);
        // Fractional bounds shrink to the covered integer buckets.
        let pred = Predicate::Between("pickup_id".into(), 50.5, 100.5);
        assert_eq!(emm.lookup(Some(&pred)).unwrap(), vec![1, 2]);
    }

    #[test]
    fn condition_is_extracted_from_and_chains_only() {
        let eq = Predicate::Eq("pickup_id".into(), Value::Int(5));
        let other = Predicate::GreaterThan("pick_time".into(), 3.0);
        let anded = other.clone().and(eq.clone());
        assert!(matches!(
            index_condition(Some(&anded), "pickup_id"),
            Some(IndexCondition::Eq(_))
        ));
        // Under Or/Not the condition does not bound the result set.
        let ored = Predicate::Or(Box::new(eq.clone()), Box::new(other.clone()));
        assert!(index_condition(Some(&ored), "pickup_id").is_none());
        let notted = Predicate::Not(Box::new(eq));
        assert!(index_condition(Some(&notted), "pickup_id").is_none());
        assert!(index_condition(None, "pickup_id").is_none());
        assert!(index_condition(Some(&other), "pickup_id").is_none());
    }

    #[test]
    fn unusable_lookups_fail_cleanly() {
        let emm = emm();
        // No condition on the indexed column.
        assert!(matches!(emm.lookup(None), Err(EdbError::InvalidIndex(_))));
        // Eq literal without an exact integer image.
        let pred = Predicate::Eq("pickup_id".into(), Value::Float(60.0));
        assert!(matches!(
            emm.lookup(Some(&pred)),
            Err(EdbError::InvalidIndex(_))
        ));
        // Range wider than the bucket cap.
        let pred = Predicate::Between("pickup_id".into(), 0.0, 1e7);
        assert!(matches!(
            emm.lookup(Some(&pred)),
            Err(EdbError::InvalidIndex(_))
        ));
        // Non-finite bounds.
        let pred = Predicate::Between("pickup_id".into(), f64::NEG_INFINITY, 10.0);
        assert!(matches!(
            emm.lookup(Some(&pred)),
            Err(EdbError::InvalidIndex(_))
        ));
    }

    #[test]
    fn null_values_file_under_the_null_label() {
        let mut emm = emm();
        let null_row = Row::new(rewrite::values_with_dummy_flag(
            vec![Value::Timestamp(1), Value::Null],
            false,
        ));
        emm.apply_row(&null_row, 0);
        emm.apply_row(&mirror_row(1, 60, false), 1);
        let pred = Predicate::Eq("pickup_id".into(), Value::Null);
        assert_eq!(emm.lookup(Some(&pred)).unwrap(), vec![0]);
        let pred = Predicate::Eq("pickup_id".into(), Value::Int(60));
        assert_eq!(emm.lookup(Some(&pred)).unwrap(), vec![1]);
    }

    #[test]
    fn probe_returns_bucket_candidates() {
        let mut emm = emm();
        for (pos, p) in [5i64, 9, 5].into_iter().enumerate() {
            emm.apply_row(&mirror_row(1, p, false), pos as u64);
        }
        assert_eq!(emm.probe(&Value::Int(5)).unwrap(), vec![0, 2]);
        assert!(emm.probe(&Value::Int(7)).unwrap().is_empty());
        // Values with no integer image can never match an indexed column.
        assert!(emm.probe(&Value::Float(5.0)).is_none());
    }

    #[test]
    fn locators_are_encrypted_and_labels_keyed() {
        let mut a = {
            let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
            EncryptedMultimap::new(def, &schema(), Prf::new([1u8; 32])).unwrap()
        };
        let mut b = {
            let def = IndexDef::new("idx", "yellow", "pickup_id").unwrap();
            EncryptedMultimap::new(def, &schema(), Prf::new([2u8; 32])).unwrap()
        };
        a.apply_row(&mirror_row(1, 60, false), 3);
        b.apply_row(&mirror_row(1, 60, false), 3);
        // Different keys, same data: the stored labels must differ...
        assert_ne!(
            a.entries.keys().collect::<Vec<_>>(),
            b.entries.keys().collect::<Vec<_>>()
        );
        // ...and the stored locators must not be the raw position.
        assert!(a.entries.values().flatten().all(|ct| *ct != 3));
        // Yet both decrypt to the same position.
        let pred = Predicate::Eq("pickup_id".into(), Value::Int(60));
        assert_eq!(a.lookup(Some(&pred)).unwrap(), vec![3]);
        assert_eq!(b.lookup(Some(&pred)).unwrap(), vec![3]);
    }
}
