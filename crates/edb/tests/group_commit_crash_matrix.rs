//! Crash-point matrix for the group-commit segment log.
//!
//! A group-commit window has four places a crash can land:
//!
//! 1. **before the window's frames hit the file** — the batches were staged
//!    in memory only, nothing was acknowledged;
//! 2. **mid-write** — a frame is torn on disk, nothing was acknowledged;
//! 3. **after the write, before the sync** — the frames are complete on
//!    disk but the window never synced, so nothing was acknowledged;
//! 4. **after the sync** — every batch in the window was acknowledged.
//!
//! The recovery contract (see `dpsync_edb::backend::segment_log`): the
//! recovered transcript is exactly the acknowledged prefix, plus — in case 3
//! only — complete trailing frames that were written but never acknowledged
//! (indistinguishable from an in-flight `Π_Update` the owner never got an
//! answer to; the owner retries or not, exactly as with a lost response).
//!
//! The matrix also pins the equivalence claim the leakage argument rests on:
//! the bytes a group-commit log writes are identical to the bytes the
//! per-batch-fsync log writes — the window is pure sync scheduling, invisible
//! in the on-disk (and therefore adversary-visible) transcript.

use bytes::Bytes;
use dpsync_edb::backend::{GroupCommitConfig, SegmentLogBackend, SegmentLogConfig, StorageBackend};
use dpsync_edb::leakage::UpdateEvent;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(stem: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("dpsync-crashmatrix-{}-{stem}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(dir: &TempDir, group: bool) -> SegmentLogConfig {
    let config = SegmentLogConfig::new(&dir.0);
    if group {
        config.with_group_commit(GroupCommitConfig::default())
    } else {
        config
    }
}

fn ct(byte: u8) -> Bytes {
    Bytes::from(vec![byte; 95])
}

/// Appends `times` batches (one 95-byte ciphertext each) and acknowledges
/// every one, returning the segment file bytes after each acknowledgment
/// (index 0 is the empty, freshly-created segment).
fn build_acknowledged_log(dir: &TempDir, group: bool, times: &[u64]) -> Vec<Vec<u8>> {
    let backend = SegmentLogBackend::open(config(dir, group)).unwrap();
    let mut store = backend.open_table("t").unwrap();
    let segment = segment_path(dir);
    let mut snapshots = vec![std::fs::read(&segment).unwrap()];
    for (i, &time) in times.iter().enumerate() {
        store
            .append_batch(time, &[ct(i as u8)])
            .unwrap()
            .wait()
            .unwrap();
        snapshots.push(std::fs::read(&segment).unwrap());
    }
    snapshots
}

fn segment_path(dir: &TempDir) -> PathBuf {
    dir.0.join("t").join("seg-000000.dpl")
}

fn recovered_updates(dir: &TempDir, group: bool) -> Vec<UpdateEvent> {
    let backend = SegmentLogBackend::open(config(dir, group)).unwrap();
    let store = backend.open_table("t").unwrap();
    store.updates().to_vec()
}

const TIMES: [u64; 4] = [30, 60, 90, 120];

fn events(times: &[u64]) -> Vec<UpdateEvent> {
    times
        .iter()
        .map(|&time| UpdateEvent { time, volume: 1 })
        .collect()
}

#[test]
fn the_on_disk_transcript_is_identical_across_sync_policies() {
    let per_batch_dir = TempDir::new("bytes-perbatch");
    let group_dir = TempDir::new("bytes-group");
    let per_batch = build_acknowledged_log(&per_batch_dir, false, &TIMES);
    let group = build_acknowledged_log(&group_dir, true, &TIMES);
    assert_eq!(
        per_batch, group,
        "group commit must not change a single written byte, only when fdatasync runs"
    );
}

#[test]
fn every_crash_point_recovers_the_acknowledged_prefix() {
    // `snapshots[k]` is the exact file state with k acknowledged batches;
    // the crash is simulated by resetting the file to a window-boundary
    // state and reopening cold.  Recovery is config-independent, so each
    // crashed state is recovered under BOTH sync policies.
    let dir = TempDir::new("matrix");
    let snapshots = build_acknowledged_log(&dir, true, &TIMES);
    let segment = segment_path(&dir);
    let acked = 2usize; // batches 1..=2 acknowledged, 3..=4 in the dying window

    for group in [false, true] {
        // Case 1: crash before the window's frames reached the file.
        std::fs::write(&segment, &snapshots[acked]).unwrap();
        assert_eq!(
            recovered_updates(&dir, group),
            events(&TIMES[..acked]),
            "case 1 (group={group}): exactly the acknowledged prefix"
        );

        // Case 2: crash mid-write — the first unacknowledged frame is torn.
        let mut torn = snapshots[acked].clone();
        torn.extend_from_slice(&snapshots[acked + 1][snapshots[acked].len()..][..13]);
        std::fs::write(&segment, &torn).unwrap();
        assert_eq!(
            recovered_updates(&dir, group),
            events(&TIMES[..acked]),
            "case 2 (group={group}): the torn frame is truncated away"
        );
        assert_eq!(
            std::fs::metadata(&segment).unwrap().len(),
            snapshots[acked].len() as u64,
            "case 2 (group={group}): the torn tail is physically gone"
        );

        // Case 3: crash after the write, before the sync — the window's
        // frames are complete on disk but were never acknowledged.  They
        // are tolerated, exactly like an in-flight unacknowledged Π_Update.
        std::fs::write(&segment, snapshots.last().unwrap()).unwrap();
        assert_eq!(
            recovered_updates(&dir, group),
            events(&TIMES),
            "case 3 (group={group}): acknowledged prefix plus complete unacked tail"
        );

        // Case 4: crash after the sync — the whole window was acknowledged.
        std::fs::write(&segment, snapshots.last().unwrap()).unwrap();
        assert_eq!(
            recovered_updates(&dir, group),
            events(&TIMES),
            "case 4 (group={group}): the full transcript survives"
        );
    }
}

#[test]
fn recovery_after_a_group_commit_crash_keeps_accepting_appends() {
    let dir = TempDir::new("continue");
    let snapshots = build_acknowledged_log(&dir, true, &TIMES);
    let segment = segment_path(&dir);

    // Crash mid-write of the third batch's window, then recover under group
    // commit and keep going.
    let mut torn = snapshots[2].clone();
    torn.extend_from_slice(&[0xEE; 7]);
    std::fs::write(&segment, &torn).unwrap();

    let backend = SegmentLogBackend::open(config(&dir, true)).unwrap();
    let mut store = backend.open_table("t").unwrap();
    assert_eq!(store.updates(), &events(&TIMES[..2])[..]);
    store
        .append_batch(150, &[ct(0x77)])
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(store.ciphertext_count(), 3);

    // The post-recovery append is itself durable: a cold per-batch reopen
    // sees it.
    drop(store);
    drop(backend);
    let recovered = recovered_updates(&dir, false);
    assert_eq!(recovered.len(), 3);
    assert_eq!(
        recovered.last().unwrap(),
        &UpdateEvent {
            time: 150,
            volume: 1
        }
    );
}
