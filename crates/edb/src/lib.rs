//! Encrypted-database substrate for DP-Sync.
//!
//! DP-Sync (the `dpsync-core` crate) is a *synchronization framework*: it
//! decides when the owner uploads records and how many dummies pad each
//! upload, and it requires an underlying encrypted database (an "edb") that
//! satisfies the paper's interoperability constraints (§2, P4).  This crate
//! provides everything below that line:
//!
//! * [`schema`] / [`row`] — a small typed relational model with compact row
//!   serialization that fits the fixed-size encrypted record format.
//! * [`query`] — the query AST covering the paper's evaluation queries
//!   (filtered counts, group-by counts, equi-join counts) plus projections.
//! * [`exec`] — a plaintext reference executor used both for computing true
//!   answers over the logical database and inside the simulated engines.
//! * [`rewrite`] — dummy-aware query rewriting (Appendix B) so dummy records
//!   never affect query answers.
//! * [`sogdb`] — the Secure Outsourced Growing Database protocol trait
//!   (Definition 1: Setup / Update / Query) and its supporting types.
//! * [`leakage`] — the update-pattern definition (Definition 2) and the
//!   leakage classification of §6 (L-0, L-DP, L-1, L-2).
//! * [`server`] — the untrusted server's storage together with the
//!   [`server::AdversaryView`] transcript of everything the server observes.
//! * [`backend`] — pluggable ciphertext-storage backends behind the server
//!   tier: the in-memory store and a durable encrypted segment log with
//!   crash recovery.  Swapping backends cannot change the adversary view.
//! * [`cost`] — an explicit query-cost model standing in for the paper's
//!   SGX / crypto testbed wall-clock numbers.
//! * [`engines`] — two concrete engines mirroring the paper's evaluation:
//!   a Crypt-ε-like engine (L-DP leakage) and an ObliDB-like engine (L-0).
//! * [`views`] — incremental materialized views maintained inside `Π_Update`
//!   so recurring analyst queries read in O(result size) instead of
//!   rescanning, without changing the adversary's transcript.
//! * [`emm`] — encrypted multimaps: PRF-labelled selection indexes maintained
//!   inside `Π_Update` (one entry per padded record, dummies included) so
//!   that index growth reveals nothing beyond the Definition-2 volumes.
//! * [`planner`] — the client-side leakage-aware planner that chooses, per
//!   query, between the full scan and an indexed plan, tagging each plan
//!   with the leakage it declares.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod cost;
pub mod emm;
pub mod engines;
pub mod exec;
pub mod leakage;
pub mod planner;
pub mod query;
pub mod rewrite;
pub mod row;
pub mod schema;
pub mod server;
pub mod sogdb;
pub mod view;
pub mod views;

pub use backend::{BackendConfig, StorageBackend, StorageError, TableStore};
pub use emm::{EncryptedMultimap, IndexDef};
pub use engines::EngineKind;
pub use leakage::{LeakageClass, PlanLeakage, UpdateEvent, UpdatePattern};
pub use planner::{ColumnStats, LeakagePolicy, Plan, PlannedQuery, Planner, Statistics};
pub use query::{Predicate, Query, QueryAnswer};
pub use row::Row;
pub use schema::{ColumnDef, DataType, Schema, Value};
pub use sogdb::{EdbError, QueryOutcome, SecureOutsourcedDatabase, TableStats};
pub use view::{AdversaryView, QueryObservation};
pub use views::{MaterializedView, ViewDef};
