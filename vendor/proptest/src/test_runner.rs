//! Test-runner configuration and per-test RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Derives the deterministic RNG for a named test function.
///
/// The base seed is fixed (stable CI); set `PROPTEST_SEED` to explore other
/// streams.
pub fn case_rng(test_name: &str) -> StdRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5eed_d05e_ca5e_5eed);
    // FNV-1a over the test name keeps per-test streams independent.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
