//! The `Perturb` operator (Algorithm 2).
//!
//! `Perturb(c, ε, σ)` adds `Lap(1/ε)` noise to the count `c`, and — when the
//! noisy count is positive — reads that many records from the local cache σ,
//! padding with dummy records when the cache holds fewer.  When the noisy
//! count is non-positive, nothing is fetched (the owner skips the update).
//!
//! The cache interaction itself lives in [`crate::cache`]; this module
//! computes the noisy fetch size so the strategies (and the Table-4 mechanism
//! simulators, which must produce the *same* distribution over update
//! volumes) share one implementation.

use dpsync_dp::{Epsilon, Laplace};
use rand::Rng;

/// The outcome of the noisy-count step of `Perturb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbedCount {
    /// The noisy count was non-positive: fetch nothing, post no update.
    Skip,
    /// Fetch this many records (real records from the cache, topped up with
    /// dummies as needed).
    Fetch(u64),
}

impl PerturbedCount {
    /// The fetch size, treating `Skip` as zero.
    pub fn fetch_size(self) -> u64 {
        match self {
            PerturbedCount::Skip => 0,
            PerturbedCount::Fetch(n) => n,
        }
    }

    /// Whether an update will be posted.
    pub fn is_fetch(self) -> bool {
        matches!(self, PerturbedCount::Fetch(_))
    }
}

/// Computes the noisy fetch size for a true count `c` under budget `epsilon`.
///
/// Matches Algorithm 2: `c̃ ← c + Lap(1/ε)`; if `c̃ > 0` read `c̃` (rounded to
/// the nearest whole record) from the cache, otherwise return nothing.
pub fn perturbed_count<R: Rng + ?Sized>(
    count: u64,
    epsilon: Epsilon,
    rng: &mut R,
) -> PerturbedCount {
    let noise = Laplace::new(0.0, 1.0 / epsilon.value()).expect("epsilon is validated");
    let noisy = count as f64 + noise.sample(rng);
    if noisy > 0.0 {
        let fetch = noisy.round().max(1.0) as u64;
        PerturbedCount::Fetch(fetch)
    } else {
        PerturbedCount::Skip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsync_dp::DpRng;

    #[test]
    fn skip_treated_as_zero_fetch() {
        assert_eq!(PerturbedCount::Skip.fetch_size(), 0);
        assert!(!PerturbedCount::Skip.is_fetch());
        assert_eq!(PerturbedCount::Fetch(7).fetch_size(), 7);
        assert!(PerturbedCount::Fetch(7).is_fetch());
    }

    #[test]
    fn large_counts_rarely_skip_and_stay_close() {
        let eps = Epsilon::new_unchecked(0.5);
        let mut rng = DpRng::seed_from_u64(1);
        let mut skips = 0;
        let mut total_abs_err = 0.0;
        let trials = 2_000;
        for _ in 0..trials {
            match perturbed_count(100, eps, &mut rng) {
                PerturbedCount::Skip => skips += 1,
                PerturbedCount::Fetch(n) => total_abs_err += (n as f64 - 100.0).abs(),
            }
        }
        assert_eq!(
            skips, 0,
            "a count of 100 with scale 2 noise should never skip"
        );
        let mean_err = total_abs_err / f64::from(trials);
        // Mean |Lap(2)| = 2.
        assert!(mean_err < 4.0, "mean error {mean_err}");
    }

    #[test]
    fn zero_count_skips_about_half_the_time() {
        let eps = Epsilon::new_unchecked(0.5);
        let mut rng = DpRng::seed_from_u64(2);
        let trials = 4_000;
        let skips = (0..trials)
            .filter(|_| !perturbed_count(0, eps, &mut rng).is_fetch())
            .count();
        let frac = skips as f64 / f64::from(trials);
        assert!((frac - 0.5).abs() < 0.05, "skip fraction {frac}");
    }

    #[test]
    fn fetch_size_is_at_least_one_when_posting() {
        // Rounding a tiny positive noisy count must still fetch one record,
        // otherwise the posted update would have volume zero and leak that
        // the true count was (almost certainly) zero.
        let eps = Epsilon::new_unchecked(10.0);
        let mut rng = DpRng::seed_from_u64(3);
        for _ in 0..5_000 {
            if let PerturbedCount::Fetch(n) = perturbed_count(0, eps, &mut rng) {
                assert!(n >= 1);
            }
        }
    }

    #[test]
    fn smaller_epsilon_means_wider_spread() {
        let mut rng = DpRng::seed_from_u64(4);
        let spread = |eps: f64, rng: &mut DpRng| {
            let e = Epsilon::new_unchecked(eps);
            let xs: Vec<f64> = (0..3_000)
                .map(|_| perturbed_count(50, e, rng).fetch_size() as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).abs()).sum::<f64>() / xs.len() as f64
        };
        let tight = spread(1.0, &mut rng);
        let loose = spread(0.1, &mut rng);
        assert!(loose > tight * 3.0, "tight={tight} loose={loose}");
    }
}
