//! The cache-flush mechanism.
//!
//! Both DP strategies pair their data-dependent (noisy) synchronization with
//! a data-*independent* periodic flush: every `f` time units the owner
//! uploads exactly `s` records — cached records first, topped up with dummy
//! records when fewer than `s` are cached (§5.2.1).  Because the flush fires
//! on a fixed schedule with a fixed volume it consumes no privacy budget
//! (`M_flush` is 0-DP in Table 4), yet it guarantees that every record is
//! eventually synchronized: for a logical database of length `L`, all records
//! reach the server no later than `t = f · L / s`.

use crate::timeline::Timestamp;
use serde::{Deserialize, Serialize};

/// Configuration of the periodic cache flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheFlush {
    /// Flush interval `f`, in time units.
    pub interval: u64,
    /// Flush size `s`: the fixed number of records uploaded per flush.
    pub size: u64,
}

impl CacheFlush {
    /// The evaluation's default configuration (§8): `f = 2000`, `s = 15`.
    pub fn paper_default() -> Self {
        Self {
            interval: 2000,
            size: 15,
        }
    }

    /// Creates a flush configuration.
    ///
    /// # Panics
    /// Panics if `interval` or `size` is zero — a zero interval would flush
    /// every tick (that is SET, not a flush) and a zero size would be a
    /// no-op that still leaks a timing signal.
    pub fn new(interval: u64, size: u64) -> Self {
        assert!(interval > 0, "flush interval must be positive");
        assert!(size > 0, "flush size must be positive");
        Self { interval, size }
    }

    /// Whether the flush fires at `time`.
    pub fn fires_at(&self, time: Timestamp) -> bool {
        time.is_multiple_of(self.interval)
    }

    /// Number of flushes that have fired by `time` (inclusive) — the `⌊t/f⌋`
    /// factor in the `η` dummy-volume bound of Theorems 7 and 9.
    pub fn flushes_by(&self, time: Timestamp) -> u64 {
        time.value() / self.interval
    }

    /// Total flush upload volume by `time`: `η = s · ⌊t/f⌋`.
    pub fn volume_by(&self, time: Timestamp) -> u64 {
        self.size * self.flushes_by(time)
    }

    /// The latest time by which a logical database of length `record_count`
    /// is guaranteed to be fully synchronized (`t = f · L / s`, rounded up).
    pub fn full_sync_deadline(&self, record_count: u64) -> Timestamp {
        Timestamp(self.interval * record_count.div_ceil(self.size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_8() {
        let f = CacheFlush::paper_default();
        assert_eq!(f.interval, 2000);
        assert_eq!(f.size, 15);
    }

    #[test]
    fn fires_only_on_positive_multiples() {
        let f = CacheFlush::new(2000, 15);
        assert!(!f.fires_at(Timestamp(0)));
        assert!(!f.fires_at(Timestamp(1999)));
        assert!(f.fires_at(Timestamp(2000)));
        assert!(f.fires_at(Timestamp(4000)));
        assert!(!f.fires_at(Timestamp(4001)));
    }

    #[test]
    fn volume_matches_eta_formula() {
        let f = CacheFlush::new(2000, 15);
        assert_eq!(f.flushes_by(Timestamp(0)), 0);
        assert_eq!(f.flushes_by(Timestamp(1999)), 0);
        assert_eq!(f.flushes_by(Timestamp(43_200)), 21);
        assert_eq!(f.volume_by(Timestamp(43_200)), 315);
    }

    #[test]
    fn deadline_covers_all_records() {
        let f = CacheFlush::new(100, 10);
        // 95 records need ceil(95/10)=10 flushes => t = 1000.
        assert_eq!(f.full_sync_deadline(95), Timestamp(1000));
        assert_eq!(f.full_sync_deadline(0), Timestamp(0));
        assert_eq!(f.full_sync_deadline(10), Timestamp(100));
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let _ = CacheFlush::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "size")]
    fn zero_size_rejected() {
        let _ = CacheFlush::new(5, 0);
    }
}
