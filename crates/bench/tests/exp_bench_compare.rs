//! End-to-end tests for the `exp_bench compare` regression gate: the exit
//! codes CI relies on, and readable errors for malformed/missing reports.

use dpsync_bench::perf::{BenchReport, BenchResult, Tolerance, REPORT_VERSION};
use std::path::PathBuf;
use std::process::Command;

fn report_with(throughputs: &[(&str, f64)]) -> BenchReport {
    BenchReport {
        version: REPORT_VERSION,
        label: "test".into(),
        seed: 1,
        smoke: true,
        workers: 1,
        results: throughputs
            .iter()
            .map(|&(name, throughput)| BenchResult {
                name: name.into(),
                median_ns_per_op: 1e9 / throughput,
                throughput_per_sec: throughput,
                records_processed: 64,
                samples: 3,
            })
            .collect(),
    }
}

/// Writes a report under a unique temp path and returns the path.
fn write_report(stem: &str, report: &BenchReport) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dpsync_exp_bench_{}_{}.json",
        stem,
        std::process::id()
    ));
    std::fs::write(&path, report.to_json()).expect("temp dir is writable");
    path
}

fn exp_bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp_bench"))
}

#[test]
fn compare_exits_nonzero_on_regression_beyond_tolerance() {
    let baseline = write_report(
        "base_regress",
        &report_with(&[("pi_update_ingest", 1_000_000.0)]),
    );
    let current = write_report(
        "cur_regress",
        &report_with(&[("pi_update_ingest", 600_000.0)]),
    );
    let output = exp_bench()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            current.to_str().unwrap(),
            "--tolerance",
            "25%",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2), "regression must gate CI");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("pi_update_ingest"),
        "stderr names the regressed benchmark: {stderr}"
    );
    let _ = std::fs::remove_file(baseline);
    let _ = std::fs::remove_file(current);
}

#[test]
fn compare_passes_within_tolerance_and_on_improvement() {
    let baseline = write_report(
        "base_ok",
        &report_with(&[("pi_update_ingest", 1_000_000.0), ("crypto_encrypt", 500.0)]),
    );
    // One benchmark 10% slower (inside 25%), one faster.
    let current = write_report(
        "cur_ok",
        &report_with(&[("pi_update_ingest", 900_000.0), ("crypto_encrypt", 800.0)]),
    );
    let output = exp_bench()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            current.to_str().unwrap(),
            "--tolerance",
            "25%",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("OK"), "stdout: {stdout}");
    let _ = std::fs::remove_file(baseline);
    let _ = std::fs::remove_file(current);
}

#[test]
fn compare_reports_missing_file_readably() {
    let baseline = write_report("base_missing", &report_with(&[("x", 1.0)]));
    let output = exp_bench()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            "/nonexistent/definitely/absent.json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("absent.json") && stderr.contains("cannot read"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_file(baseline);
}

#[test]
fn compare_reports_malformed_file_readably() {
    let baseline = write_report("base_malformed", &report_with(&[("x", 1.0)]));
    let malformed = std::env::temp_dir().join(format!(
        "dpsync_exp_bench_malformed_{}.json",
        std::process::id()
    ));
    std::fs::write(&malformed, "{\"version\": 1, oops").unwrap();
    let output = exp_bench()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            malformed.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("not valid JSON"),
        "stderr lacks parse diagnosis: {stderr}"
    );
    let _ = std::fs::remove_file(baseline);
    let _ = std::fs::remove_file(malformed);
}

#[test]
fn compare_rejects_bad_tolerance_and_wrong_arity() {
    let some = write_report("base_args", &report_with(&[("x", 1.0)]));
    let output = exp_bench()
        .args([
            "compare",
            some.to_str().unwrap(),
            some.to_str().unwrap(),
            "--tolerance",
            "sideways",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("sideways"));

    let output = exp_bench()
        .args(["compare", some.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("exactly two"));
    let _ = std::fs::remove_file(some);
}

#[test]
fn checked_in_baseline_is_loadable_and_covers_the_gated_benchmarks() {
    // Guards the bench/baseline.json CI actually compares against: if its
    // schema drifts from the reader, the gate dies here rather than in CI.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline.json");
    let report = dpsync_bench::perf::load_report(path.to_str().unwrap())
        .expect("checked-in baseline parses");
    assert_eq!(report.version, REPORT_VERSION);
    assert!(report.smoke, "the CI baseline is a smoke-scale report");
    for name in ["pi_update_ingest", "crypto_encrypt", "e2e_sync"] {
        assert!(
            report.result(name).is_some(),
            "baseline lacks gated benchmark {name}"
        );
    }
    // Sanity on the comparator against itself: identical reports never gate.
    let cmp = dpsync_bench::perf::compare(&report, &report, Tolerance(0.0));
    assert!(!cmp.has_regressions());
}
