//! Verifies the Table-4 mechanisms empirically: runs the DP-Timer and DP-ANT
//! update-pattern mechanisms on neighboring growing databases many times and
//! checks that the observed odds ratio of the released update volumes stays
//! within `e^epsilon` (the executable counterpart of Theorems 10 and 11).
//!
//! It then re-checks the guarantee under the selection-index plans: with
//! encrypted-multimap indexes registered and maintained inside `Π_Update`,
//! the update pattern Theorems 10/11 constrain must be byte-identical to an
//! index-free run — under the `TranscriptOnly` planner policy the *entire*
//! adversary view is, and under `AllowIndexedVolume` only the per-query
//! fetch volumes the plan explicitly declares may move.
//!
//! Usage: `cargo run --release -p dpsync-bench --bin exp_table4_privacy [--seed S]`
//!
//! This is an **analytic** experiment: the Monte-Carlo trials run entirely in
//! process, so it accepts no `--transport`/`--backend` flags — passing one is
//! an error, not a no-op.

use dpsync_bench::experiments::tables::{table4_text, verify_update_pattern_privacy};
use dpsync_bench::ExperimentConfig;
use dpsync_core::simulation::{Simulation, SimulationConfig, TableWorkload};
use dpsync_core::strategy::DpTimerStrategy;
use dpsync_crypto::MasterKey;
use dpsync_dp::Epsilon;
use dpsync_edb::engines::ObliDbEngine;
use dpsync_edb::planner::LeakagePolicy;
use dpsync_edb::query::paper_queries;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::{AdversaryView, DataType, Row, Schema, Value};

/// One fixed-seed DP-Timer run with the given index policy (`None` = no
/// indexes registered); returns the final adversary view.
fn indexed_run(seed: u64, policy: Option<LeakagePolicy>) -> AdversaryView {
    let horizon = 180u64;
    let schema = Schema::from_pairs(&[
        ("pick_time", DataType::Timestamp),
        ("pickup_id", DataType::Int),
    ]);
    let workload = TableWorkload {
        table: "yellow".into(),
        schema,
        initial_rows: (0..12)
            .map(|i| Row::new(vec![Value::Timestamp(0), Value::Int(40 + i)]))
            .collect(),
        arrivals: (1..=horizon)
            .map(|t| {
                if t % 4 == 0 {
                    vec![Row::new(vec![
                        Value::Timestamp(t),
                        Value::Int((t % 150) as i64),
                    ])]
                } else {
                    vec![]
                }
            })
            .collect(),
        join_time: 0,
        leave_time: None,
    };
    let sim = Simulation::new(SimulationConfig {
        query_interval: horizon / 4,
        size_sample_interval: horizon / 2,
        queries: vec![("Q1".into(), paper_queries::q1_range_count("yellow"))],
        seed,
    });
    let sim = match policy {
        Some(policy) => sim.with_indexes(policy),
        None => sim,
    };
    let master = MasterKey::from_bytes([0x7A; 32]);
    let engine = ObliDbEngine::new(&master);
    sim.run_parallel(&[workload], &engine, &master, |_| {
        Box::new(DpTimerStrategy::with_flush(
            Epsilon::new_unchecked(1.0),
            30,
            None,
        ))
    })
    .expect("simulation succeeds");
    engine.adversary_view()
}

fn main() {
    let config =
        ExperimentConfig::from_args_analytic("exp_table4_privacy", std::env::args().skip(1));
    let epsilon = 1.0;
    let trials = 20_000;
    println!(
        "Table 4 — empirical verification of the update-pattern mechanisms (epsilon = {epsilon}, {trials} trials per neighboring database)\n"
    );
    let verification = verify_update_pattern_privacy(epsilon, trials, config.seed);
    print!("{}", table4_text(&verification).render());
    if verification.timer.passes && verification.ant.passes {
        println!(
            "\nBoth DP strategies stay within the e^epsilon bound (Theorems 10 and 11); \
             worst-case headroom {:.2}x under the statistically corrected bound \
             across point buckets and tail events.",
            verification
                .timer
                .headroom()
                .min(verification.ant.headroom())
        );
    } else {
        println!("\nWARNING: a strategy exceeded the e^epsilon bound — investigate before trusting the implementation.");
        std::process::exit(1);
    }

    // The mechanisms' guarantee must survive the index plans: the update
    // pattern is produced before any index sees a record, and maintenance
    // inserts exactly one entry per padded record.
    println!("\nIndex-plan leakage profile (fixed-seed DP-Timer run, ObliDB engine):");
    let baseline = indexed_run(config.seed, None);
    let transcript_only = indexed_run(config.seed, Some(LeakagePolicy::TranscriptOnly));
    let permissive = indexed_run(config.seed, Some(LeakagePolicy::AllowIndexedVolume));
    let mut ok = true;
    if baseline == transcript_only {
        println!(
            "  transcript-only plan: adversary view byte-identical to the index-free run \
             ({} update events, {} query observations)",
            baseline.update_events().len(),
            baseline.queries().len()
        );
    } else {
        println!("  WARNING: transcript-only plan moved the adversary view");
        ok = false;
    }
    if baseline.update_pattern() == permissive.update_pattern() {
        let indexed_reads = permissive
            .queries()
            .iter()
            .filter(|o| o.kind == "index")
            .count();
        println!(
            "  indexed-volume plan: update pattern unchanged (Theorems 10/11 unaffected); \
             {indexed_reads} reads declared their fetch volume"
        );
    } else {
        println!("  WARNING: the indexed-volume plan changed the update pattern itself");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
}
