//! The TCP service tier: [`EdbTcpServer`] runs any engine behind a socket.
//!
//! The server is an epoll readiness reactor (`crate::reactor` — built
//! on the vendored `mio` crate, the only place `unsafe` FFI lives): one
//! event-loop thread owns every socket, runs per-connection read/write state
//! machines over the [`crate::frame`] codec, and hands decoded requests to a
//! small worker pool.  Frames carry a session id, so one socket can
//! multiplex many logical owner sessions; thousands of mostly-idle
//! connections cost file descriptors, not threads.  What it serves is the
//! full SOGDB protocol suite over the [`crate::wire`] codec:
//!
//! * **Shared mode** — every session talks to one engine instance
//!   ([`EngineProvider::Shared`]).  Many concurrent clients land on the
//!   existing sharded [`dpsync_edb::server::ServerStorage`], one owner per
//!   table, exactly like in-process concurrent owners.
//! * **Factory mode** — each session gets a fresh engine built from its
//!   `Hello` frame ([`EngineProvider::Factory`]); this is what `dpsync-serve`
//!   runs, so independent experiment runs can share one server process
//!   without colliding on table names.
//!
//! # Robustness rules
//!
//! * a malformed frame gets one final protocol-error frame, then the
//!   connection closes (the stream offset can no longer be trusted);
//! * a malformed *message* in a well-formed frame gets a protocol-error
//!   frame and the connection continues;
//! * handler panics are caught per request and counted
//!   ([`EdbTcpServer::handler_panics`]) — one hostile client can never take
//!   the process down;
//! * a connection that stalls mid-frame, stops draining its responses, or
//!   owes an entropy reply is reaped after [`ServeOptions::io_deadline`];
//!   a connection that simply stops *reading* is paused by backpressure
//!   long before it can grow server memory (see
//!   [`ServerStats::peak_outbound_bytes`]);
//! * [`EdbTcpServer::shutdown`] stops accepting, wakes the reactor and
//!   joins every thread before returning.

use crate::wire::{BackendRequest, Response, SessionRequest};
use dpsync_crypto::MasterKey;
use dpsync_edb::backend::{GroupCommitConfig, SegmentLogConfig};
use dpsync_edb::engines::EngineKind;
use dpsync_edb::sogdb::SecureOutsourcedDatabase;
use dpsync_edb::BackendConfig;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The default `dpsync-serve` listen address.
///
/// The experiment binaries' `--transport tcp` connects here by default, so
/// the zero-config pairing (`dpsync-serve &` then `exp_* --transport tcp`)
/// depends on both sides reading this one constant.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7450";

/// Timing and sizing knobs for the server's event loop.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// How long a peer may stall mid-frame (or mid-entropy-exchange, or
    /// with undrained responses) before the connection is dropped.  Idling
    /// cleanly *between* frames never trips the deadline.
    pub io_deadline: Duration,
    /// The reactor's epoll timeout: the upper bound on how long shutdown
    /// and deadline reaping can lag behind their triggering event.
    pub poll_interval: Duration,
    /// Size of the worker pool draining decoded requests into the engines.
    /// `0` picks a small default from the machine's parallelism.
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            io_deadline: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            workers: 0,
        }
    }
}

/// Builds per-session engines for factory-mode servers.
#[derive(Debug, Clone, Default)]
pub struct EngineFactory {
    /// Root directory for [`BackendRequest::Disk`] and
    /// [`BackendRequest::DiskGroup`] sessions; each session gets its own
    /// subdirectory, removed when the session ends.  `None` rejects disk
    /// sessions.
    pub disk_root: Option<PathBuf>,
}

/// Prefix of every per-session scratch directory under the disk root.
const SESSION_DIR_PREFIX: &str = "dpsync-session-";

/// Removes stale per-session scratch directories under `root`.
///
/// Session directories are normally removed when their session ends (the
/// `SessionDir` drop guard survives even handler panics), but nothing
/// in-process survives SIGKILL: a killed `dpsync-serve` leaves its
/// `dpsync-session-*` directories — and their segment logs — on disk
/// forever.  A fresh server owns the root exclusively, so it sweeps every
/// leftover matching the session naming scheme at startup.
///
/// Returns the number of directories removed.  A missing root is fine
/// (nothing to sweep); individual removal failures are skipped so one
/// undeletable entry cannot block startup.
pub fn sweep_stale_session_dirs(root: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(root) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(SESSION_DIR_PREFIX) {
            continue;
        }
        if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            continue;
        }
        if std::fs::remove_dir_all(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// A per-session scratch directory, removed on drop — even when the worker
/// unwinds, so a panicking session never leaks its segment logs.
#[derive(Debug)]
struct SessionDir(PathBuf);

impl Drop for SessionDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Monotone session counter so concurrent disk sessions never share a
/// directory.
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

impl EngineFactory {
    fn build(
        &self,
        kind: EngineKind,
        master_key: [u8; 32],
        backend: BackendRequest,
    ) -> Result<(Box<dyn SecureOutsourcedDatabase>, Option<SessionDir>), String> {
        let master = MasterKey::from_bytes(master_key);
        match backend {
            BackendRequest::Memory => Ok((kind.build(&master), None)),
            BackendRequest::Disk | BackendRequest::DiskGroup => {
                let Some(root) = &self.disk_root else {
                    return Err("server was started without a disk root".to_string());
                };
                let dir = root.join(format!(
                    "{}{}-{}",
                    SESSION_DIR_PREFIX,
                    std::process::id(),
                    SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let guard = SessionDir(dir.clone());
                let mut config = SegmentLogConfig::new(&dir);
                if backend == BackendRequest::DiskGroup {
                    config = config.with_group_commit(GroupCommitConfig::default());
                }
                let backend = BackendConfig::SegmentLog(config)
                    .build()
                    .map_err(|e| format!("cannot open session segment log: {e}"))?;
                let engine = kind
                    .build_with_backend(&master, backend)
                    .map_err(|e| format!("cannot build engine on session log: {e}"))?;
                Ok((engine, Some(guard)))
            }
        }
    }
}

/// Where sessions get their engine from.
pub enum EngineProvider {
    /// One engine, shared by every session.
    Shared(Arc<dyn SecureOutsourcedDatabase>),
    /// A fresh engine per session, built from the client's `Hello`.
    Factory(EngineFactory),
}

/// Load counters the reactor maintains while serving; read them through
/// [`EdbTcpServer::stats`].
///
/// The backpressure suite leans on these: `peak_outbound_bytes` proves a
/// stalled reader's queued responses stay bounded, and
/// `reaped_connections` proves the deadline actually shed it.
#[derive(Debug, Default)]
pub struct ServerStats {
    current_connections: AtomicUsize,
    peak_connections: AtomicUsize,
    peak_outbound_bytes: AtomicUsize,
    reaped_connections: AtomicUsize,
}

impl ServerStats {
    pub(crate) fn note_connections(&self, now: usize) {
        self.current_connections.store(now, Ordering::Relaxed);
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn note_outbound(&self, bytes: usize) {
        self.peak_outbound_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    pub(crate) fn note_reaped(&self) {
        self.reaped_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections open right now.  A client that goes away — including a
    /// dropped [`crate::MuxConnection`] and all of its sessions — must
    /// bring this back down once the reactor sees the close.
    pub fn current_connections(&self) -> usize {
        self.current_connections.load(Ordering::Relaxed)
    }

    /// Most connections ever open at once.
    pub fn peak_connections(&self) -> usize {
        self.peak_connections.load(Ordering::Relaxed)
    }

    /// Largest per-connection outbound backlog ever observed, in bytes.
    /// Bounded by the reactor's backpressure pause threshold plus one
    /// response frame.
    pub fn peak_outbound_bytes(&self) -> usize {
        self.peak_outbound_bytes.load(Ordering::Relaxed)
    }

    /// Connections dropped by the progress deadline.
    pub fn reaped_connections(&self) -> usize {
        self.reaped_connections.load(Ordering::Relaxed)
    }
}

/// A running TCP server; dropping it shuts it down and joins every thread.
#[derive(Debug)]
pub struct EdbTcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactor: Option<crate::reactor::ReactorHandle>,
    panics: Arc<AtomicUsize>,
    stats: Arc<ServerStats>,
}

impl EdbTcpServer {
    /// Binds `addr` (use port 0 for an ephemeral test port) and starts
    /// accepting connections with default [`ServeOptions`].
    pub fn bind(addr: impl ToSocketAddrs, provider: EngineProvider) -> io::Result<Self> {
        Self::bind_with_options(addr, provider, ServeOptions::default())
    }

    /// As [`EdbTcpServer::bind`] with explicit timing options.
    pub fn bind_with_options(
        addr: impl ToSocketAddrs,
        provider: EngineProvider,
        options: ServeOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let panics = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(ServerStats::default());
        let reactor = crate::reactor::spawn(
            listener,
            Arc::new(provider),
            options,
            Arc::clone(&shutdown),
            Arc::clone(&panics),
            Arc::clone(&stats),
        )?;
        Ok(Self {
            addr,
            shutdown,
            reactor: Some(reactor),
            panics,
            stats,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of request handlers that panicked since startup.  The fuzz
    /// suite asserts this stays zero under arbitrary input.
    pub fn handler_panics(&self) -> usize {
        self.panics.load(Ordering::SeqCst)
    }

    /// The reactor's load counters (peak connections, peak outbound
    /// backlog, reaped connections).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, disconnects every session and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.waker.wake();
            let _ = handle.thread.join();
        }
    }
}

impl Drop for EdbTcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-session engine binding (and, for disk sessions, the scratch
/// directory that must outlive it).
pub(crate) struct Session {
    engine: EngineHandle,
    _dir: Option<SessionDir>,
}

impl Session {
    pub(crate) fn engine(&self) -> &dyn SecureOutsourcedDatabase {
        self.engine.engine()
    }
}

enum EngineHandle {
    Shared(Arc<dyn SecureOutsourcedDatabase>),
    Owned(Box<dyn SecureOutsourcedDatabase>),
}

impl EngineHandle {
    fn engine(&self) -> &dyn SecureOutsourcedDatabase {
        match self {
            EngineHandle::Shared(engine) => engine.as_ref(),
            EngineHandle::Owned(engine) => engine.as_ref(),
        }
    }
}

pub(crate) fn engine_info(engine: &dyn SecureOutsourcedDatabase) -> Response {
    Response::EngineInfo {
        name: engine.name().to_string(),
        profile: engine.leakage_profile(),
        cost: engine.cost_model(),
    }
}

pub(crate) fn open_session(
    provider: &EngineProvider,
    hello: SessionRequest,
) -> Result<Session, String> {
    match (provider, hello) {
        (EngineProvider::Shared(engine), SessionRequest::Shared) => Ok(Session {
            engine: EngineHandle::Shared(Arc::clone(engine)),
            _dir: None,
        }),
        (EngineProvider::Shared(_), SessionRequest::NewEngine { .. }) => {
            Err("this server hosts a shared engine; ask for the shared session".to_string())
        }
        (EngineProvider::Factory(_), SessionRequest::Shared) => {
            Err("this server builds per-connection engines; send an engine request".to_string())
        }
        (
            EngineProvider::Factory(factory),
            SessionRequest::NewEngine {
                engine,
                master_key,
                backend,
            },
        ) => {
            let (engine, dir) = factory.build(engine, master_key, backend)?;
            Ok(Session {
                engine: EngineHandle::Owned(engine),
                _dir: dir,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{write_frame, FRAME_HEADER_LEN};
    use crate::wire::Request;
    use dpsync_edb::engines::ObliDbEngine;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Instant;

    fn shared_server() -> EdbTcpServer {
        let master = MasterKey::from_bytes([1u8; 32]);
        let engine: Arc<dyn SecureOutsourcedDatabase> = Arc::new(ObliDbEngine::new(&master));
        EdbTcpServer::bind("127.0.0.1:0", EngineProvider::Shared(engine)).unwrap()
    }

    #[test]
    fn server_binds_and_shuts_down_cleanly() {
        let mut server = shared_server();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.handler_panics(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn raw_garbage_gets_an_error_frame_then_disconnect() {
        let server = shared_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A header announcing an oversized frame.
        stream.write_all(&[0xFF; FRAME_HEADER_LEN]).unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Protocol(message) => assert!(message.contains("bad frame")),
            other => panic!("expected protocol error, got {other:?}"),
        }
        // The server closed its end afterwards.
        let mut buf = [0u8; 1];
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
        assert_eq!(server.handler_panics(), 0);
    }

    #[test]
    fn requests_before_hello_are_rejected_but_keep_the_connection() {
        let server = shared_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, &Request::AdversaryView.encode()).unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Protocol(_)
        ));
        // Still connected: a hello now succeeds.
        write_frame(
            &mut stream,
            &Request::Hello(SessionRequest::Shared).encode(),
        )
        .unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::EngineInfo { .. }
        ));
    }

    #[test]
    fn factory_server_rejects_disk_sessions_without_a_root() {
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory::default()),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &Request::Hello(SessionRequest::NewEngine {
                engine: EngineKind::ObliDb,
                master_key: [0u8; 32],
                backend: BackendRequest::Disk,
            })
            .encode(),
        )
        .unwrap();
        let payload = crate::frame::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Protocol(message) => assert!(message.contains("disk root")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn group_commit_disk_sessions_build_and_clean_up() {
        let root =
            std::env::temp_dir().join(format!("dpsync-net-group-session-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let server = EdbTcpServer::bind(
            "127.0.0.1:0",
            EngineProvider::Factory(EngineFactory {
                disk_root: Some(root.clone()),
            }),
        )
        .unwrap();
        {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            write_frame(
                &mut stream,
                &Request::Hello(SessionRequest::NewEngine {
                    engine: EngineKind::ObliDb,
                    master_key: [7u8; 32],
                    backend: BackendRequest::DiskGroup,
                })
                .encode(),
            )
            .unwrap();
            let payload = crate::frame::read_frame(&mut stream).unwrap();
            assert!(matches!(
                Response::decode(&payload).unwrap(),
                Response::EngineInfo { .. }
            ));
            // The session directory exists while the connection is alive.
            assert_eq!(
                std::fs::read_dir(&root)
                    .unwrap()
                    .flatten()
                    .filter(|e| e
                        .file_name()
                        .to_string_lossy()
                        .starts_with(SESSION_DIR_PREFIX))
                    .count(),
                1
            );
        }
        // Connection closed: the drop guard removes the directory.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let leftovers = std::fs::read_dir(&root).unwrap().flatten().count();
            if leftovers == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "session dir never cleaned up");
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(server);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_session_dirs_are_swept_and_foreign_entries_kept() {
        let root = std::env::temp_dir().join(format!("dpsync-net-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();

        // Two stale session directories (as a SIGKILLed server leaves them),
        // with nested content.
        for stale in ["dpsync-session-999-0", "dpsync-session-999-1"] {
            let dir = root.join(stale).join("table");
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("seg-000000.dpl"), b"leftover").unwrap();
        }
        // Entries that must survive: a foreign directory and a plain file
        // whose name matches the prefix.
        std::fs::create_dir_all(root.join("keep-me")).unwrap();
        std::fs::write(root.join("dpsync-session-not-a-dir"), b"file").unwrap();

        assert_eq!(sweep_stale_session_dirs(&root), 2);
        let mut names: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["dpsync-session-not-a-dir", "keep-me"]);

        // Sweeping a missing root is a quiet no-op.
        assert_eq!(sweep_stale_session_dirs(&root.join("missing")), 0);

        std::fs::remove_dir_all(&root).unwrap();
    }
}
