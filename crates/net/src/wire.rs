//! The binary wire codec for the Π_Setup / Π_Update / Π_Query messages.
//!
//! Every protocol message is encoded into one [`crate::frame`] payload:
//! a one-byte message tag followed by the message body.  The codec is
//! **canonical** — for any value our encoder can produce, `decode(encode(v))
//! == v` and `encode(decode(bytes)) == bytes` — and **strict**: decoders
//! reject non-canonical input (booleans other than 0/1, unsorted group maps,
//! duplicate schema columns, over-deep predicates) instead of normalizing it,
//! so a byte stream either round-trips exactly or fails cleanly.
//!
//! # Encoding rules
//!
//! * integers are little-endian fixed width; `f64` is `to_bits()` LE (every
//!   bit pattern round-trips, including NaN payloads);
//! * `bool` is one byte, `0` or `1` (anything else is malformed);
//! * strings are a `u32` byte length followed by UTF-8 bytes;
//! * sequences are a `u32` element count followed by the elements;
//! * options are a one-byte tag (`0` absent, `1` present);
//! * encrypted records are exactly [`EncryptedRecord::TOTAL_LEN`] raw bytes
//!   (their length is part of the ciphertext format, not the wire format);
//! * enums are a one-byte tag followed by the variant's fields, in
//!   declaration order.
//!
//! Decoding never panics on arbitrary input: sequence counts are validated
//! against the remaining input before any allocation, predicates carry a
//! recursion-depth cap ([`MAX_PREDICATE_DEPTH`]), and [`Schema`] input is
//! checked for duplicate column names *before* calling the (panicking)
//! constructor.

use dpsync_crypto::{CryptoError, EncryptedRecord};
use dpsync_edb::cost::CostModel;
use dpsync_edb::engines::EngineKind;
use dpsync_edb::exec::ExecError;
use dpsync_edb::leakage::{LeakageClass, LeakageProfile, UpdateEvent, UpdatePattern};
use dpsync_edb::schema::{ColumnDef, DataType, GroupKey, Value};
use dpsync_edb::sogdb::QueryOutcome;
use dpsync_edb::view::QueryObservation;
use dpsync_edb::{
    AdversaryView, EdbError, Predicate, Query, QueryAnswer, Schema, StorageError, TableStats,
};
use std::collections::BTreeMap;

/// Maximum nesting depth a decoded [`Predicate`] may have.
///
/// Bounds both the decoder's own recursion and the recursion of everything
/// downstream that walks the AST (rewriting, execution), so a hostile client
/// cannot drive the server into a stack overflow.
pub const MAX_PREDICATE_DEPTH: usize = 64;

/// A decoding failure.  Carries a static description only — no allocation
/// happens on the failure path, which matters when fuzz input fails by the
/// millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// The input was well-framed but semantically invalid.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::Invalid(what) => write!(f, "invalid message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The first frame a client sends: how this connection's engine is obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionRequest {
    /// Attach to the server's shared engine (rejected by factory servers).
    Shared,
    /// Ask the server to build a fresh engine for this connection (rejected
    /// by shared servers).  Carries the owner's master key: in this
    /// simulation the engine sits inside the trusted boundary and needs the
    /// key material to process queries, exactly as the in-process
    /// constructors do.
    NewEngine {
        /// Which engine to build.
        engine: EngineKind,
        /// The owner's master key bytes.
        master_key: [u8; 32],
        /// Which ciphertext-storage backend the engine should run on.
        backend: BackendRequest,
    },
}

/// The storage backend a [`SessionRequest::NewEngine`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendRequest {
    /// The in-memory backend.
    Memory,
    /// The durable segment-log backend, in a per-session scratch directory
    /// under the server's configured disk root (an error if the server was
    /// started without one).
    Disk,
    /// [`BackendRequest::Disk`] with group commit enabled (default window
    /// bounds): concurrent `Π_Update` acknowledgments coalesce into shared
    /// fsync windows.  Same durability contract, amortized cost.
    DiskGroup,
}

/// An asynchronous randomness draw the server requests mid-`Π_Query`.
///
/// The SOGDB trait hands `Π_Query` a caller-supplied RNG; over the wire the
/// caller's RNG stays on the client, and the server forwards each individual
/// draw through this sub-protocol.  Draws map 1:1 onto [`rand::RngCore`]
/// methods, so the client's RNG consumes exactly the same stream it would
/// have in-process — the property the remote/in-process equivalence suite
/// pins down to the byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyDraw {
    /// `next_u32`: the client replies with 4 bytes, little-endian.
    U32,
    /// `next_u64`: the client replies with 8 bytes, little-endian.
    U64,
    /// `fill_bytes`: the client replies with exactly this many bytes.
    Fill(u32),
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session; must be the first message on a connection.
    Hello(SessionRequest),
    /// `Π_Setup`.
    Setup {
        /// Table to create.
        table: String,
        /// Its schema.
        schema: Schema,
        /// The encrypted initial batch.
        records: Vec<EncryptedRecord>,
    },
    /// `Π_Update`.
    Update {
        /// Table to append to.
        table: String,
        /// Discrete protocol time of the batch.
        time: u64,
        /// The encrypted batch.
        records: Vec<EncryptedRecord>,
    },
    /// `Π_Query`.  The server may interleave [`Response::EntropyRequest`]
    /// frames before the final outcome.
    Query(Query),
    /// Whether the engine supports this query shape.
    Supports(Query),
    /// Size statistics for one table.
    TableStats(String),
    /// The full adversary transcript.
    AdversaryView,
    /// The client's answer to an [`Response::EntropyRequest`]; only valid
    /// while a `Π_Query` is executing on this connection.
    EntropyReply(Vec<u8>),
    /// Registers a materialized view over `query` (the server re-validates
    /// the definition; see `dpsync_edb::views::ViewDef`).
    RegisterView {
        /// The view's (engine-global) name.
        name: String,
        /// The query shape to materialize.
        query: Query,
    },
    /// `Π_Query` served from a registered view.  As with [`Request::Query`],
    /// the server may interleave [`Response::EntropyRequest`] frames before
    /// the final outcome.
    QueryView(String),
    /// Registers an encrypted-multimap index over `table.column` (the server
    /// re-validates the definition; see `dpsync_edb::emm::IndexDef`).
    RegisterIndex {
        /// The index's (engine-global) name.
        name: String,
        /// The table the index covers.
        table: String,
        /// The indexed column.
        column: String,
    },
    /// `Π_Query` served through a registered index.  As with
    /// [`Request::Query`], the server may interleave
    /// [`Response::EntropyRequest`] frames before the final outcome.
    QueryIndexed {
        /// The registered index to use.
        name: String,
        /// The query to serve through it.
        query: Query,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and has no payload (`Π_Setup`, `Π_Update`).
    Ok,
    /// Session metadata, sent in answer to [`Request::Hello`].
    EngineInfo {
        /// The engine name ("oblidb", "crypt-epsilon").
        name: String,
        /// The engine's leakage profile.
        profile: LeakageProfile,
        /// The engine's cost model.
        cost: CostModel,
    },
    /// The outcome of a `Π_Query`.
    Outcome(QueryOutcome),
    /// Answer to [`Request::Supports`].
    Supported(bool),
    /// Answer to [`Request::TableStats`].
    Stats(TableStats),
    /// Answer to [`Request::AdversaryView`].
    View(AdversaryView),
    /// The server needs randomness from the caller's RNG (mid-`Π_Query`).
    EntropyRequest(EntropyDraw),
    /// The protocol ran and failed; round-trips the full [`EdbError`],
    /// including the `Storage` variant's source chain as text.
    Edb(EdbError),
    /// The server could not make sense of the request (framing or decoding
    /// failure).  The connection may be closed right after.
    Protocol(String),
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoders
// ---------------------------------------------------------------------------

/// A strict decoding cursor over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless every byte was consumed — trailing garbage is malformed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Invalid("trailing bytes after message"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("boolean byte must be 0 or 1")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("string is not UTF-8"))
    }

    /// Reads a sequence count, validating it against the remaining input so
    /// a hostile length can never trigger a huge allocation: every element
    /// occupies at least `min_element_len` bytes.
    fn count(&mut self, min_element_len: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count
            .checked_mul(min_element_len.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v.as_bytes());
}

// ---------------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(x) => {
            out.push(0);
            put_i64(out, *x);
        }
        Value::Float(x) => {
            out.push(1);
            put_f64(out, *x);
        }
        Value::Timestamp(x) => {
            out.push(2);
            put_u64(out, *x);
        }
        Value::Bool(b) => {
            out.push(3);
            put_bool(out, *b);
        }
        Value::Text(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Null => out.push(5),
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value, WireError> {
    Ok(match c.u8()? {
        0 => Value::Int(c.i64()?),
        1 => Value::Float(c.f64()?),
        2 => Value::Timestamp(c.u64()?),
        3 => Value::Bool(c.bool()?),
        4 => Value::Text(c.string()?),
        5 => Value::Null,
        _ => return Err(WireError::Invalid("unknown value tag")),
    })
}

fn put_group_key(out: &mut Vec<u8>, k: &GroupKey) {
    match k {
        GroupKey::Null => out.push(0),
        GroupKey::Bool(b) => {
            out.push(1);
            put_bool(out, *b);
        }
        GroupKey::Int(v) => {
            out.push(2);
            put_i64(out, *v);
        }
        GroupKey::Timestamp(v) => {
            out.push(3);
            put_u64(out, *v);
        }
        GroupKey::FloatBits(v) => {
            out.push(4);
            put_u64(out, *v);
        }
        GroupKey::Text(s) => {
            out.push(5);
            put_str(out, s);
        }
    }
}

fn get_group_key(c: &mut Cursor<'_>) -> Result<GroupKey, WireError> {
    Ok(match c.u8()? {
        0 => GroupKey::Null,
        1 => GroupKey::Bool(c.bool()?),
        2 => GroupKey::Int(c.i64()?),
        3 => GroupKey::Timestamp(c.u64()?),
        4 => GroupKey::FloatBits(c.u64()?),
        5 => GroupKey::Text(c.string()?),
        _ => return Err(WireError::Invalid("unknown group-key tag")),
    })
}

fn put_data_type(out: &mut Vec<u8>, t: DataType) {
    out.push(match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Timestamp => 2,
        DataType::Bool => 3,
        DataType::Text => 4,
    });
}

fn get_data_type(c: &mut Cursor<'_>) -> Result<DataType, WireError> {
    Ok(match c.u8()? {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Timestamp,
        3 => DataType::Bool,
        4 => DataType::Text,
        _ => return Err(WireError::Invalid("unknown data-type tag")),
    })
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.columns().len() as u32);
    for col in schema.columns() {
        put_str(out, &col.name);
        put_data_type(out, col.data_type);
    }
}

fn get_schema(c: &mut Cursor<'_>) -> Result<Schema, WireError> {
    let count = c.count(5)?; // 4-byte name length + 1-byte type, minimum
    let mut columns = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count {
        let name = c.string()?;
        let data_type = get_data_type(c)?;
        // `Schema::new` panics on duplicates (a programming error in-process);
        // on the wire a duplicate is hostile input and must fail cleanly.
        if !seen.insert(name.clone()) {
            return Err(WireError::Invalid("duplicate column name in schema"));
        }
        columns.push(ColumnDef::new(name, data_type));
    }
    Ok(Schema::new(columns))
}

fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::Eq(col, v) => {
            out.push(0);
            put_str(out, col);
            put_value(out, v);
        }
        Predicate::Between(col, lo, hi) => {
            out.push(1);
            put_str(out, col);
            put_f64(out, *lo);
            put_f64(out, *hi);
        }
        Predicate::LessThan(col, v) => {
            out.push(2);
            put_str(out, col);
            put_f64(out, *v);
        }
        Predicate::GreaterThan(col, v) => {
            out.push(3);
            put_str(out, col);
            put_f64(out, *v);
        }
        Predicate::And(a, b) => {
            out.push(4);
            put_predicate(out, a);
            put_predicate(out, b);
        }
        Predicate::Or(a, b) => {
            out.push(5);
            put_predicate(out, a);
            put_predicate(out, b);
        }
        Predicate::Not(inner) => {
            out.push(6);
            put_predicate(out, inner);
        }
        Predicate::True => out.push(7),
    }
}

fn get_predicate(c: &mut Cursor<'_>, depth: usize) -> Result<Predicate, WireError> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(WireError::Invalid("predicate nests too deeply"));
    }
    Ok(match c.u8()? {
        0 => Predicate::Eq(c.string()?, get_value(c)?),
        1 => Predicate::Between(c.string()?, c.f64()?, c.f64()?),
        2 => Predicate::LessThan(c.string()?, c.f64()?),
        3 => Predicate::GreaterThan(c.string()?, c.f64()?),
        4 => Predicate::And(
            Box::new(get_predicate(c, depth + 1)?),
            Box::new(get_predicate(c, depth + 1)?),
        ),
        5 => Predicate::Or(
            Box::new(get_predicate(c, depth + 1)?),
            Box::new(get_predicate(c, depth + 1)?),
        ),
        6 => Predicate::Not(Box::new(get_predicate(c, depth + 1)?)),
        7 => Predicate::True,
        _ => return Err(WireError::Invalid("unknown predicate tag")),
    })
}

fn put_opt_predicate(out: &mut Vec<u8>, p: &Option<Predicate>) {
    match p {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_predicate(out, p);
        }
    }
}

fn get_opt_predicate(c: &mut Cursor<'_>) -> Result<Option<Predicate>, WireError> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_predicate(c, 0)?)),
        _ => Err(WireError::Invalid("option tag must be 0 or 1")),
    }
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    match q {
        Query::Count { table, predicate } => {
            out.push(0);
            put_str(out, table);
            put_opt_predicate(out, predicate);
        }
        Query::GroupByCount {
            table,
            group_by,
            predicate,
        } => {
            out.push(1);
            put_str(out, table);
            put_str(out, group_by);
            put_opt_predicate(out, predicate);
        }
        Query::JoinCount {
            left,
            right,
            left_column,
            right_column,
        } => {
            out.push(2);
            put_str(out, left);
            put_str(out, right);
            put_str(out, left_column);
            put_str(out, right_column);
        }
        Query::Select {
            table,
            columns,
            predicate,
        } => {
            out.push(3);
            put_str(out, table);
            put_u32(out, columns.len() as u32);
            for col in columns {
                put_str(out, col);
            }
            put_opt_predicate(out, predicate);
        }
    }
}

fn get_query(c: &mut Cursor<'_>) -> Result<Query, WireError> {
    Ok(match c.u8()? {
        0 => Query::Count {
            table: c.string()?,
            predicate: get_opt_predicate(c)?,
        },
        1 => Query::GroupByCount {
            table: c.string()?,
            group_by: c.string()?,
            predicate: get_opt_predicate(c)?,
        },
        2 => Query::JoinCount {
            left: c.string()?,
            right: c.string()?,
            left_column: c.string()?,
            right_column: c.string()?,
        },
        3 => {
            let table = c.string()?;
            let count = c.count(4)?;
            let mut columns = Vec::with_capacity(count);
            for _ in 0..count {
                columns.push(c.string()?);
            }
            Query::Select {
                table,
                columns,
                predicate: get_opt_predicate(c)?,
            }
        }
        _ => return Err(WireError::Invalid("unknown query tag")),
    })
}

fn put_answer(out: &mut Vec<u8>, a: &QueryAnswer) {
    match a {
        QueryAnswer::Scalar(v) => {
            out.push(0);
            put_f64(out, *v);
        }
        QueryAnswer::Groups(groups) => {
            out.push(1);
            put_u32(out, groups.len() as u32);
            for (key, count) in groups {
                put_group_key(out, key);
                put_f64(out, *count);
            }
        }
        QueryAnswer::Rows(rows) => {
            out.push(2);
            put_u32(out, rows.len() as u32);
            for row in rows {
                put_u32(out, row.len() as u32);
                for value in row {
                    put_value(out, value);
                }
            }
        }
    }
}

fn get_answer(c: &mut Cursor<'_>) -> Result<QueryAnswer, WireError> {
    Ok(match c.u8()? {
        0 => QueryAnswer::Scalar(c.f64()?),
        1 => {
            let count = c.count(9)?; // 1-byte key tag + 8-byte count, minimum
            let mut groups = BTreeMap::new();
            let mut last: Option<GroupKey> = None;
            for _ in 0..count {
                let key = get_group_key(c)?;
                // Canonical form: strictly ascending keys (BTreeMap iteration
                // order).  Anything else would decode to a map that re-encodes
                // differently, so it is rejected as non-canonical.
                if last.as_ref().is_some_and(|prev| *prev >= key) {
                    return Err(WireError::Invalid("group keys must be strictly ascending"));
                }
                let value = c.f64()?;
                last = Some(key.clone());
                groups.insert(key, value);
            }
            QueryAnswer::Groups(groups)
        }
        2 => {
            let count = c.count(4)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                let arity = c.count(1)?;
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(get_value(c)?);
                }
                rows.push(row);
            }
            QueryAnswer::Rows(rows)
        }
        _ => return Err(WireError::Invalid("unknown answer tag")),
    })
}

fn put_records(out: &mut Vec<u8>, records: &[EncryptedRecord]) {
    put_u32(out, records.len() as u32);
    for record in records {
        out.extend_from_slice(&record.to_bytes());
    }
}

fn get_records(c: &mut Cursor<'_>) -> Result<Vec<EncryptedRecord>, WireError> {
    let count = c.count(EncryptedRecord::TOTAL_LEN)?;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let bytes = c.take(EncryptedRecord::TOTAL_LEN)?;
        records.push(
            EncryptedRecord::from_bytes(bytes)
                .map_err(|_| WireError::Invalid("malformed encrypted record"))?,
        );
    }
    Ok(records)
}

fn put_outcome(out: &mut Vec<u8>, o: &QueryOutcome) {
    put_answer(out, &o.answer);
    put_f64(out, o.estimated_seconds);
    put_f64(out, o.measured_seconds);
    put_u64(out, o.touched_records);
}

fn get_outcome(c: &mut Cursor<'_>) -> Result<QueryOutcome, WireError> {
    Ok(QueryOutcome {
        answer: get_answer(c)?,
        estimated_seconds: c.f64()?,
        measured_seconds: c.f64()?,
        touched_records: c.u64()?,
    })
}

fn put_stats(out: &mut Vec<u8>, s: &TableStats) {
    put_u64(out, s.ciphertext_count);
    put_u64(out, s.ciphertext_bytes);
    put_u64(out, s.real_records);
    put_u64(out, s.dummy_records);
}

fn get_stats(c: &mut Cursor<'_>) -> Result<TableStats, WireError> {
    Ok(TableStats {
        ciphertext_count: c.u64()?,
        ciphertext_bytes: c.u64()?,
        real_records: c.u64()?,
        dummy_records: c.u64()?,
    })
}

fn put_profile(out: &mut Vec<u8>, p: &LeakageProfile) {
    out.push(match p.class {
        LeakageClass::L0ResponseVolumeHiding => 0,
        LeakageClass::LDpDifferentiallyPrivateVolume => 1,
        LeakageClass::L1RevealResponseVolume => 2,
        LeakageClass::L2RevealAccessPattern => 3,
    });
    put_bool(out, p.update_leaks_beyond_pattern);
    put_bool(out, p.native_dummy_support);
}

fn get_profile(c: &mut Cursor<'_>) -> Result<LeakageProfile, WireError> {
    let class = match c.u8()? {
        0 => LeakageClass::L0ResponseVolumeHiding,
        1 => LeakageClass::LDpDifferentiallyPrivateVolume,
        2 => LeakageClass::L1RevealResponseVolume,
        3 => LeakageClass::L2RevealAccessPattern,
        _ => return Err(WireError::Invalid("unknown leakage-class tag")),
    };
    Ok(LeakageProfile {
        class,
        update_leaks_beyond_pattern: c.bool()?,
        native_dummy_support: c.bool()?,
    })
}

fn put_cost(out: &mut Vec<u8>, m: &CostModel) {
    put_f64(out, m.query_overhead);
    put_f64(out, m.count_per_record);
    put_f64(out, m.group_by_per_record);
    put_f64(out, m.join_per_pair);
    put_f64(out, m.update_per_record);
    put_f64(out, m.setup_per_record);
}

fn get_cost(c: &mut Cursor<'_>) -> Result<CostModel, WireError> {
    Ok(CostModel {
        query_overhead: c.f64()?,
        count_per_record: c.f64()?,
        group_by_per_record: c.f64()?,
        join_per_pair: c.f64()?,
        update_per_record: c.f64()?,
        setup_per_record: c.f64()?,
    })
}

fn put_view(out: &mut Vec<u8>, view: &AdversaryView) {
    let events = view.update_events();
    put_u32(out, events.len() as u32);
    for e in events {
        put_u64(out, e.time);
        put_u64(out, e.volume);
    }
    let queries = view.queries();
    put_u32(out, queries.len() as u32);
    for q in queries {
        put_u64(out, q.sequence);
        put_str(out, &q.kind);
        put_u64(out, q.touched_records);
        match q.observed_response_volume {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                put_u64(out, v);
            }
        }
    }
    put_u64(out, view.total_ciphertext_bytes());
}

fn get_view(c: &mut Cursor<'_>) -> Result<AdversaryView, WireError> {
    let count = c.count(16)?;
    let mut pattern = UpdatePattern::new();
    for _ in 0..count {
        let event = UpdateEvent {
            time: c.u64()?,
            volume: c.u64()?,
        };
        pattern.record(event.time, event.volume);
    }
    let count = c.count(21)?; // sequence + kind length + touched + option tag
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        queries.push(QueryObservation {
            sequence: c.u64()?,
            kind: c.string()?,
            touched_records: c.u64()?,
            observed_response_volume: match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                _ => return Err(WireError::Invalid("option tag must be 0 or 1")),
            },
        });
    }
    let total_bytes = c.u64()?;
    Ok(AdversaryView::from_parts(pattern, queries, total_bytes))
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Maps a decoded engine name back onto the `&'static str` the
/// [`EdbError::UnsupportedQuery`] variant requires.  Unknown names collapse
/// onto a sentinel instead of leaking memory per hostile frame.
fn intern_engine(name: &str) -> &'static str {
    match name {
        "oblidb" => "oblidb",
        "crypt-epsilon" => "crypt-epsilon",
        "remote" => "remote",
        _ => "unknown-engine",
    }
}

/// As [`intern_engine`], for the rejected query kind.
fn intern_kind(kind: &str) -> &'static str {
    match kind {
        "count" => "count",
        "group-by" => "group-by",
        "join" => "join",
        "select" => "select",
        "view" => "view",
        "index" => "index",
        _ => "unknown-query",
    }
}

fn put_storage_error(out: &mut Vec<u8>, e: &StorageError) {
    match e {
        StorageError::Io { path, message } => {
            out.push(0);
            put_str(out, path);
            put_str(out, message);
        }
        StorageError::Corrupt {
            path,
            offset,
            message,
        } => {
            out.push(1);
            put_str(out, path);
            put_u64(out, *offset);
            put_str(out, message);
        }
        StorageError::Backend { message } => {
            out.push(2);
            put_str(out, message);
        }
    }
}

fn get_storage_error(c: &mut Cursor<'_>) -> Result<StorageError, WireError> {
    Ok(match c.u8()? {
        0 => StorageError::Io {
            path: c.string()?,
            message: c.string()?,
        },
        1 => StorageError::Corrupt {
            path: c.string()?,
            offset: c.u64()?,
            message: c.string()?,
        },
        2 => StorageError::Backend {
            message: c.string()?,
        },
        _ => return Err(WireError::Invalid("unknown storage-error tag")),
    })
}

fn put_edb_error(out: &mut Vec<u8>, e: &EdbError) {
    match e {
        EdbError::Crypto(inner) => {
            out.push(0);
            match inner {
                CryptoError::AuthenticationFailed => out.push(0),
                CryptoError::PayloadTooLarge { got, max } => {
                    out.push(1);
                    put_u64(out, *got as u64);
                    put_u64(out, *max as u64);
                }
                CryptoError::MalformedCiphertext { got, expected } => {
                    out.push(2);
                    put_u64(out, *got as u64);
                    put_u64(out, *expected as u64);
                }
            }
        }
        EdbError::Exec(inner) => {
            out.push(1);
            match inner {
                ExecError::UnknownTable(t) => {
                    out.push(0);
                    put_str(out, t);
                }
                ExecError::UnknownColumn { table, column } => {
                    out.push(1);
                    put_str(out, table);
                    put_str(out, column);
                }
            }
        }
        EdbError::UnsupportedQuery { engine, kind } => {
            out.push(2);
            put_str(out, engine);
            put_str(out, kind);
        }
        EdbError::AlreadySetUp(t) => {
            out.push(3);
            put_str(out, t);
        }
        EdbError::NotSetUp(t) => {
            out.push(4);
            put_str(out, t);
        }
        EdbError::CorruptRow(msg) => {
            out.push(5);
            put_str(out, msg);
        }
        EdbError::Storage(inner) => {
            out.push(6);
            put_storage_error(out, inner);
        }
        EdbError::UnknownView(name) => {
            out.push(7);
            put_str(out, name);
        }
        EdbError::InvalidView(msg) => {
            out.push(8);
            put_str(out, msg);
        }
        EdbError::UnknownIndex(name) => {
            out.push(9);
            put_str(out, name);
        }
        EdbError::InvalidIndex(msg) => {
            out.push(10);
            put_str(out, msg);
        }
    }
}

fn usize_from(v: u64) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::Invalid("length does not fit usize"))
}

fn get_edb_error(c: &mut Cursor<'_>) -> Result<EdbError, WireError> {
    Ok(match c.u8()? {
        0 => EdbError::Crypto(match c.u8()? {
            0 => CryptoError::AuthenticationFailed,
            1 => CryptoError::PayloadTooLarge {
                got: usize_from(c.u64()?)?,
                max: usize_from(c.u64()?)?,
            },
            2 => CryptoError::MalformedCiphertext {
                got: usize_from(c.u64()?)?,
                expected: usize_from(c.u64()?)?,
            },
            _ => return Err(WireError::Invalid("unknown crypto-error tag")),
        }),
        1 => EdbError::Exec(match c.u8()? {
            0 => ExecError::UnknownTable(c.string()?),
            1 => ExecError::UnknownColumn {
                table: c.string()?,
                column: c.string()?,
            },
            _ => return Err(WireError::Invalid("unknown exec-error tag")),
        }),
        2 => EdbError::UnsupportedQuery {
            engine: intern_engine(&c.string()?),
            kind: intern_kind(&c.string()?),
        },
        3 => EdbError::AlreadySetUp(c.string()?),
        4 => EdbError::NotSetUp(c.string()?),
        5 => EdbError::CorruptRow(c.string()?),
        6 => EdbError::Storage(get_storage_error(c)?),
        7 => EdbError::UnknownView(c.string()?),
        8 => EdbError::InvalidView(c.string()?),
        9 => EdbError::UnknownIndex(c.string()?),
        10 => EdbError::InvalidIndex(c.string()?),
        _ => return Err(WireError::Invalid("unknown edb-error tag")),
    })
}

// ---------------------------------------------------------------------------
// Top-level messages
// ---------------------------------------------------------------------------

fn put_engine_kind(out: &mut Vec<u8>, kind: EngineKind) {
    out.push(match kind {
        EngineKind::ObliDb => 0,
        EngineKind::CryptEpsilon => 1,
    });
}

fn get_engine_kind(c: &mut Cursor<'_>) -> Result<EngineKind, WireError> {
    Ok(match c.u8()? {
        0 => EngineKind::ObliDb,
        1 => EngineKind::CryptEpsilon,
        _ => return Err(WireError::Invalid("unknown engine tag")),
    })
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello(session) => {
                out.push(0x01);
                match session {
                    SessionRequest::Shared => out.push(0),
                    SessionRequest::NewEngine {
                        engine,
                        master_key,
                        backend,
                    } => {
                        out.push(1);
                        put_engine_kind(&mut out, *engine);
                        out.extend_from_slice(master_key);
                        out.push(match backend {
                            BackendRequest::Memory => 0,
                            BackendRequest::Disk => 1,
                            BackendRequest::DiskGroup => 2,
                        });
                    }
                }
            }
            Request::Setup {
                table,
                schema,
                records,
            } => {
                out.push(0x02);
                put_str(&mut out, table);
                put_schema(&mut out, schema);
                put_records(&mut out, records);
            }
            Request::Update {
                table,
                time,
                records,
            } => {
                out.push(0x03);
                put_str(&mut out, table);
                put_u64(&mut out, *time);
                put_records(&mut out, records);
            }
            Request::Query(query) => {
                out.push(0x04);
                put_query(&mut out, query);
            }
            Request::Supports(query) => {
                out.push(0x05);
                put_query(&mut out, query);
            }
            Request::TableStats(table) => {
                out.push(0x06);
                put_str(&mut out, table);
            }
            Request::AdversaryView => out.push(0x07),
            Request::EntropyReply(bytes) => {
                out.push(0x08);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Request::RegisterView { name, query } => {
                out.push(0x09);
                put_str(&mut out, name);
                put_query(&mut out, query);
            }
            Request::QueryView(name) => {
                out.push(0x0A);
                put_str(&mut out, name);
            }
            Request::RegisterIndex {
                name,
                table,
                column,
            } => {
                out.push(0x0B);
                put_str(&mut out, name);
                put_str(&mut out, table);
                put_str(&mut out, column);
            }
            Request::QueryIndexed { name, query } => {
                out.push(0x0C);
                put_str(&mut out, name);
                put_query(&mut out, query);
            }
        }
        out
    }

    /// Decodes a request from a frame payload.  Never panics; every byte of
    /// the payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let request = match c.u8()? {
            0x01 => Request::Hello(match c.u8()? {
                0 => SessionRequest::Shared,
                1 => {
                    let engine = get_engine_kind(&mut c)?;
                    let key: [u8; 32] = c.take(32)?.try_into().unwrap();
                    let backend = match c.u8()? {
                        0 => BackendRequest::Memory,
                        1 => BackendRequest::Disk,
                        2 => BackendRequest::DiskGroup,
                        _ => return Err(WireError::Invalid("unknown backend tag")),
                    };
                    SessionRequest::NewEngine {
                        engine,
                        master_key: key,
                        backend,
                    }
                }
                _ => return Err(WireError::Invalid("unknown session tag")),
            }),
            0x02 => Request::Setup {
                table: c.string()?,
                schema: get_schema(&mut c)?,
                records: get_records(&mut c)?,
            },
            0x03 => Request::Update {
                table: c.string()?,
                time: c.u64()?,
                records: get_records(&mut c)?,
            },
            0x04 => Request::Query(get_query(&mut c)?),
            0x05 => Request::Supports(get_query(&mut c)?),
            0x06 => Request::TableStats(c.string()?),
            0x07 => Request::AdversaryView,
            0x08 => {
                let len = c.count(1)?;
                Request::EntropyReply(c.take(len)?.to_vec())
            }
            0x09 => Request::RegisterView {
                name: c.string()?,
                query: get_query(&mut c)?,
            },
            0x0A => Request::QueryView(c.string()?),
            0x0B => Request::RegisterIndex {
                name: c.string()?,
                table: c.string()?,
                column: c.string()?,
            },
            0x0C => Request::QueryIndexed {
                name: c.string()?,
                query: get_query(&mut c)?,
            },
            _ => return Err(WireError::Invalid("unknown request tag")),
        };
        c.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.push(0x80),
            Response::EngineInfo {
                name,
                profile,
                cost,
            } => {
                out.push(0x81);
                put_str(&mut out, name);
                put_profile(&mut out, profile);
                put_cost(&mut out, cost);
            }
            Response::Outcome(outcome) => {
                out.push(0x82);
                put_outcome(&mut out, outcome);
            }
            Response::Supported(supported) => {
                out.push(0x83);
                put_bool(&mut out, *supported);
            }
            Response::Stats(stats) => {
                out.push(0x84);
                put_stats(&mut out, stats);
            }
            Response::View(view) => {
                out.push(0x85);
                put_view(&mut out, view);
            }
            Response::EntropyRequest(draw) => {
                out.push(0x90);
                match draw {
                    EntropyDraw::U32 => out.push(0),
                    EntropyDraw::U64 => out.push(1),
                    EntropyDraw::Fill(n) => {
                        out.push(2);
                        put_u32(&mut out, *n);
                    }
                }
            }
            Response::Edb(error) => {
                out.push(0xFF);
                put_edb_error(&mut out, error);
            }
            Response::Protocol(message) => {
                out.push(0xFE);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decodes a response from a frame payload.  Never panics; every byte of
    /// the payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let response = match c.u8()? {
            0x80 => Response::Ok,
            0x81 => Response::EngineInfo {
                name: c.string()?,
                profile: get_profile(&mut c)?,
                cost: get_cost(&mut c)?,
            },
            0x82 => Response::Outcome(get_outcome(&mut c)?),
            0x83 => Response::Supported(c.bool()?),
            0x84 => Response::Stats(get_stats(&mut c)?),
            0x85 => Response::View(get_view(&mut c)?),
            0x90 => Response::EntropyRequest(match c.u8()? {
                0 => EntropyDraw::U32,
                1 => EntropyDraw::U64,
                2 => EntropyDraw::Fill(c.u32()?),
                _ => return Err(WireError::Invalid("unknown entropy tag")),
            }),
            0xFF => Response::Edb(get_edb_error(&mut c)?),
            0xFE => Response::Protocol(c.string()?),
            _ => return Err(WireError::Invalid("unknown response tag")),
        };
        c.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsync_crypto::{MasterKey, RecordCryptor, RecordPlaintext};

    fn sample_records(n: usize) -> Vec<EncryptedRecord> {
        let master = MasterKey::from_bytes([7u8; 32]);
        let mut cryptor = RecordCryptor::new(&master);
        (0..n)
            .map(|i| {
                cryptor
                    .encrypt(&RecordPlaintext::real(vec![i as u8; 8]))
                    .unwrap()
            })
            .collect()
    }

    fn round_trip_request(request: Request) {
        let bytes = request.encode();
        let decoded = Request::decode(&bytes).expect("valid request decodes");
        assert_eq!(decoded, request);
        assert_eq!(decoded.encode(), bytes, "canonical re-encoding");
    }

    fn round_trip_response(response: Response) {
        let bytes = response.encode();
        let decoded = Response::decode(&bytes).expect("valid response decodes");
        assert_eq!(decoded, response);
        assert_eq!(decoded.encode(), bytes, "canonical re-encoding");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello(SessionRequest::Shared));
        for backend in [
            BackendRequest::Memory,
            BackendRequest::Disk,
            BackendRequest::DiskGroup,
        ] {
            round_trip_request(Request::Hello(SessionRequest::NewEngine {
                engine: EngineKind::CryptEpsilon,
                master_key: [3u8; 32],
                backend,
            }));
        }
        round_trip_request(Request::Setup {
            table: "yellow".into(),
            schema: Schema::from_pairs(&[
                ("pick_time", DataType::Timestamp),
                ("pickup_id", DataType::Int),
            ]),
            records: sample_records(3),
        });
        round_trip_request(Request::Update {
            table: "yellow".into(),
            time: 42,
            records: sample_records(2),
        });
        round_trip_request(Request::Query(Query::Count {
            table: "t".into(),
            predicate: Some(Predicate::And(
                Box::new(Predicate::Between("a".into(), -1.5, f64::INFINITY)),
                Box::new(Predicate::Not(Box::new(Predicate::Eq(
                    "b".into(),
                    Value::Text("x".into()),
                )))),
            )),
        }));
        round_trip_request(Request::Supports(Query::JoinCount {
            left: "l".into(),
            right: "r".into(),
            left_column: "c".into(),
            right_column: "d".into(),
        }));
        round_trip_request(Request::TableStats("yellow".into()));
        round_trip_request(Request::AdversaryView);
        round_trip_request(Request::EntropyReply(vec![1, 2, 3, 4, 5, 6, 7, 8]));
        round_trip_request(Request::RegisterView {
            name: "q1".into(),
            query: Query::Count {
                table: "yellow".into(),
                predicate: Some(Predicate::Between("pickup_id".into(), 50.0, 100.0)),
            },
        });
        round_trip_request(Request::QueryView("q1".into()));
        round_trip_request(Request::RegisterIndex {
            name: "idx_yellow_pickup_id".into(),
            table: "yellow".into(),
            column: "pickup_id".into(),
        });
        round_trip_request(Request::QueryIndexed {
            name: "idx_yellow_pickup_id".into(),
            query: Query::Count {
                table: "yellow".into(),
                predicate: Some(Predicate::Between("pickup_id".into(), 50.0, 100.0)),
            },
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Ok);
        round_trip_response(Response::EngineInfo {
            name: "oblidb".into(),
            profile: LeakageProfile {
                class: LeakageClass::L0ResponseVolumeHiding,
                update_leaks_beyond_pattern: false,
                native_dummy_support: true,
            },
            cost: CostModel::oblidb(),
        });
        let mut groups = BTreeMap::new();
        groups.insert(GroupKey::Int(-4), 2.5);
        groups.insert(GroupKey::Text("z".into()), 3.75);
        round_trip_response(Response::Outcome(QueryOutcome {
            answer: QueryAnswer::Groups(groups),
            estimated_seconds: 1.25,
            measured_seconds: 0.5,
            touched_records: 99,
        }));
        round_trip_response(Response::Supported(false));
        round_trip_response(Response::Stats(TableStats {
            ciphertext_count: 1,
            ciphertext_bytes: 95,
            real_records: 1,
            dummy_records: 0,
        }));
        let mut view = AdversaryView::new();
        view.observe_update(0, 10, 950);
        view.observe_update(30, 2, 190);
        view.observe_query(QueryObservation {
            sequence: 0,
            kind: "count".into(),
            touched_records: 12,
            observed_response_volume: Some(7),
        });
        round_trip_response(Response::View(view));
        round_trip_response(Response::EntropyRequest(EntropyDraw::U64));
        round_trip_response(Response::EntropyRequest(EntropyDraw::Fill(32)));
        round_trip_response(Response::Protocol("bad frame".into()));
    }

    #[test]
    fn every_edb_error_round_trips_with_its_source_chain() {
        use std::error::Error as _;
        let errors = vec![
            EdbError::Crypto(CryptoError::AuthenticationFailed),
            EdbError::Crypto(CryptoError::PayloadTooLarge { got: 99, max: 64 }),
            EdbError::Crypto(CryptoError::MalformedCiphertext {
                got: 3,
                expected: 95,
            }),
            EdbError::Exec(ExecError::UnknownTable("t".into())),
            EdbError::Exec(ExecError::UnknownColumn {
                table: "t".into(),
                column: "c".into(),
            }),
            EdbError::UnsupportedQuery {
                engine: "crypt-epsilon",
                kind: "join",
            },
            EdbError::AlreadySetUp("yellow".into()),
            EdbError::NotSetUp("green".into()),
            EdbError::CorruptRow("bad tag".into()),
            EdbError::Storage(StorageError::Io {
                path: "/data/seg-000001.dpl".into(),
                message: "disk full".into(),
            }),
            EdbError::Storage(StorageError::Corrupt {
                path: "seg".into(),
                offset: 42,
                message: "bad crc".into(),
            }),
            EdbError::Storage(StorageError::Backend {
                message: "no disk root".into(),
            }),
            EdbError::UnknownView("q1".into()),
            EdbError::InvalidView("join queries cannot be materialized".into()),
            EdbError::UnsupportedQuery {
                engine: "remote",
                kind: "view",
            },
            EdbError::UnknownIndex("idx".into()),
            EdbError::InvalidIndex("range spans too many buckets".into()),
            EdbError::UnsupportedQuery {
                engine: "remote",
                kind: "index",
            },
        ];
        for error in errors {
            let bytes = Response::Edb(error.clone()).encode();
            let decoded = Response::decode(&bytes).unwrap();
            let Response::Edb(back) = &decoded else {
                panic!("decoded to a different response kind");
            };
            assert_eq!(*back, error);
            // The rendered message and the source chain survive the wire.
            assert_eq!(back.to_string(), error.to_string());
            match (back.source(), error.source()) {
                (Some(a), Some(b)) => assert_eq!(a.to_string(), b.to_string()),
                (None, None) => {}
                _ => panic!("source chain changed across the wire"),
            }
            assert_eq!(decoded.encode(), bytes);
        }
    }

    #[test]
    fn truncated_inputs_fail_cleanly() {
        let full = Request::Setup {
            table: "yellow".into(),
            schema: Schema::from_pairs(&[("a", DataType::Int)]),
            records: sample_records(2),
        }
        .encode();
        for len in 0..full.len() {
            let err = Request::decode(&full[..len]).unwrap_err();
            assert!(matches!(err, WireError::Truncated | WireError::Invalid(_)));
        }
        let full = Request::RegisterView {
            name: "q1".into(),
            query: Query::GroupByCount {
                table: "yellow".into(),
                group_by: "pickup_id".into(),
                predicate: None,
            },
        }
        .encode();
        for len in 0..full.len() {
            let err = Request::decode(&full[..len]).unwrap_err();
            assert!(matches!(err, WireError::Truncated | WireError::Invalid(_)));
        }
        let full = Request::QueryIndexed {
            name: "idx".into(),
            query: Query::Count {
                table: "yellow".into(),
                predicate: Some(Predicate::Eq("pickup_id".into(), Value::Int(60))),
            },
        }
        .encode();
        for len in 0..full.len() {
            let err = Request::decode(&full[..len]).unwrap_err();
            assert!(matches!(err, WireError::Truncated | WireError::Invalid(_)));
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A Setup frame claiming u32::MAX records must fail on the count
        // check, not attempt a 400 GB allocation.
        let mut payload = vec![0x02];
        put_str(&mut payload, "t");
        put_u32(&mut payload, 0); // empty schema
        put_u32(&mut payload, u32::MAX); // record count
        assert_eq!(Request::decode(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn duplicate_schema_columns_are_rejected_not_panicking() {
        let mut payload = vec![0x02];
        put_str(&mut payload, "t");
        put_u32(&mut payload, 2);
        put_str(&mut payload, "a");
        payload.push(0);
        put_str(&mut payload, "a");
        payload.push(0);
        put_u32(&mut payload, 0); // no records
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::Invalid("duplicate column name in schema"))
        );
    }

    #[test]
    fn over_deep_predicates_are_rejected() {
        let mut predicate = Predicate::True;
        for _ in 0..(MAX_PREDICATE_DEPTH + 2) {
            predicate = Predicate::Not(Box::new(predicate));
        }
        let bytes = Request::Query(Query::Count {
            table: "t".into(),
            predicate: Some(predicate),
        })
        .encode();
        assert_eq!(
            Request::decode(&bytes),
            Err(WireError::Invalid("predicate nests too deeply"))
        );
    }

    #[test]
    fn non_canonical_group_order_is_rejected() {
        // Encode Groups{2: x, 1: y} manually (descending keys): the decoder
        // must reject it, because accepting it would break byte-identical
        // re-encoding.
        let mut payload = vec![0x82, 1];
        put_u32(&mut payload, 2);
        put_group_key(&mut payload, &GroupKey::Int(2));
        put_f64(&mut payload, 1.0);
        put_group_key(&mut payload, &GroupKey::Int(1));
        put_f64(&mut payload, 2.0);
        put_f64(&mut payload, 0.0); // estimated
        put_f64(&mut payload, 0.0); // measured
        put_u64(&mut payload, 0); // touched
        assert_eq!(
            Response::decode(&payload),
            Err(WireError::Invalid("group keys must be strictly ascending"))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::AdversaryView.encode();
        bytes.push(0);
        assert_eq!(
            Request::decode(&bytes),
            Err(WireError::Invalid("trailing bytes after message"))
        );
    }
}
