//! Shared experiment configuration.
//!
//! The defaults mirror §8 of the paper: privacy budget ε = 0.5, DP-Timer
//! period T = 30, DP-ANT threshold θ = 15, cache flush `f = 2000`, `s = 15`,
//! queries every 360 time units, size samples every 7200, and the June-2020
//! Yellow/Green taxi workload shapes.

use dpsync_core::strategy::{
    AboveNoisyThresholdStrategy, CacheFlush, DpTimerStrategy, OneTimeOutsourcing, StrategyKind,
    SyncStrategy, SynchronizeEveryTime, SynchronizeUponReceipt,
};
use dpsync_dp::Epsilon;
use dpsync_workloads::taxi::{TaxiConfig, TaxiDataset};
use serde::{Deserialize, Serialize};

/// Engine selection now lives next to the engines themselves; the harness
/// re-exports it so experiment code keeps one import path.
pub use dpsync_edb::engines::EngineKind;

/// Which ciphertext-storage backend the server tier runs on.
///
/// The adversary view — and therefore every simulation report — is
/// byte-identical across backends on a fixed seed (pinned by the
/// backend-equivalence suite in `dpsync-core`); the choice only affects
/// durability and ingest cost.  `Disk` runs each simulation against a
/// durable segment log in its own per-run scratch directory (under
/// `DPSYNC_DISK_ROOT` when set, the system temp directory otherwise),
/// removed when the run finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The in-memory backend (the default).
    #[default]
    Memory,
    /// The durable encrypted segment-log backend.
    Disk,
}

impl BackendKind {
    /// The `--backend` flag spelling.
    pub fn flag_name(self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::Disk => "disk",
        }
    }

    /// Parses a `--backend` flag value.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "memory" => Some(BackendKind::Memory),
            "disk" => Some(BackendKind::Disk),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.flag_name())
    }
}

/// Strategy parameters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyParams {
    /// Privacy budget for the DP strategies.
    pub epsilon: f64,
    /// DP-Timer period `T`.
    pub timer_period: u64,
    /// DP-ANT threshold θ.
    pub ant_threshold: u64,
    /// Cache-flush interval `f`.
    pub flush_interval: u64,
    /// Cache-flush size `s`.
    pub flush_size: u64,
}

impl Default for StrategyParams {
    fn default() -> Self {
        Self {
            epsilon: 0.5,
            timer_period: 30,
            ant_threshold: 15,
            flush_interval: 2000,
            flush_size: 15,
        }
    }
}

impl StrategyParams {
    /// Builds a fresh strategy instance of the given kind.
    pub fn build(&self, kind: StrategyKind) -> Box<dyn SyncStrategy> {
        let flush = Some(CacheFlush::new(self.flush_interval, self.flush_size));
        match kind {
            StrategyKind::Sur => Box::new(SynchronizeUponReceipt::new()),
            StrategyKind::Oto => Box::new(OneTimeOutsourcing::new()),
            StrategyKind::Set => Box::new(SynchronizeEveryTime::new()),
            StrategyKind::DpTimer => Box::new(DpTimerStrategy::with_flush(
                Epsilon::new_unchecked(self.epsilon),
                self.timer_period,
                flush,
            )),
            StrategyKind::DpAnt => Box::new(AboveNoisyThresholdStrategy::with_flush(
                Epsilon::new_unchecked(self.epsilon),
                self.ant_threshold,
                flush,
            )),
        }
    }
}

/// Top-level experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload/horizon scale divisor: 1 is the paper's full month, larger
    /// values shrink both horizon and record counts proportionally (used by
    /// tests and quick smoke runs).
    pub scale: u64,
    /// Master seed.
    pub seed: u64,
    /// Strategy parameters.
    pub params: StrategyParams,
    /// Query interval in time units (paper: 360).
    pub query_interval: u64,
    /// Size-sample interval in time units (paper: 7200).
    pub size_sample_interval: u64,
    /// Which storage backend hosts the server-side ciphertexts.
    pub backend: BackendKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 1,
            seed: 2021,
            params: StrategyParams::default(),
            query_interval: 360,
            size_sample_interval: 7200,
            backend: BackendKind::Memory,
        }
    }
}

impl ExperimentConfig {
    /// Parses `--scale N`, `--seed S`, `--jobs J` and `--backend
    /// {memory,disk}` from command-line arguments, starting from the
    /// defaults.
    ///
    /// `--jobs` configures the experiment worker pool (see [`crate::pool`]):
    /// it caps how many simulations run concurrently, and defaults to the
    /// machine's available parallelism.  Results are byte-identical for every
    /// worker count — and, with a fixed seed, for every `--backend`.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut config = Self::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        config.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        config.seed = v;
                        i += 1;
                    }
                }
                "--jobs" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        crate::pool::set_worker_override(std::num::NonZeroUsize::new(v));
                        i += 1;
                    }
                }
                "--backend" => {
                    if let Some(v) = args
                        .get(i + 1)
                        .map(String::as_str)
                        .and_then(BackendKind::parse)
                    {
                        config.backend = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        config.rescale()
    }

    /// Applies the scale divisor to the time-dependent intervals so that a
    /// scaled run still poses a comparable number of queries.
    pub fn rescale(mut self) -> Self {
        let scale = self.scale.max(1);
        self.query_interval = (360 / scale).max(10);
        self.size_sample_interval = (7200 / scale).max(50);
        self
    }

    /// The Yellow Cab workload at this scale.
    pub fn yellow_dataset(&self) -> TaxiDataset {
        TaxiDataset::generate(TaxiConfig::scaled_yellow(self.seed, self.scale.max(1)))
    }

    /// The Green Boro workload at this scale.
    pub fn green_dataset(&self) -> TaxiDataset {
        TaxiDataset::generate(TaxiConfig::scaled_green(self.seed + 1, self.scale.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_8() {
        let p = StrategyParams::default();
        assert_eq!(p.epsilon, 0.5);
        assert_eq!(p.timer_period, 30);
        assert_eq!(p.ant_threshold, 15);
        assert_eq!(p.flush_interval, 2000);
        assert_eq!(p.flush_size, 15);
        let c = ExperimentConfig::default();
        assert_eq!(c.query_interval, 360);
        assert_eq!(c.size_sample_interval, 7200);
        assert_eq!(c.scale, 1);
    }

    #[test]
    fn build_creates_every_strategy_kind() {
        let p = StrategyParams::default();
        for kind in StrategyKind::ALL {
            let s = p.build(kind);
            assert_eq!(s.kind(), kind);
            match kind {
                StrategyKind::DpTimer | StrategyKind::DpAnt => {
                    assert_eq!(s.epsilon().unwrap().value(), 0.5)
                }
                _ => assert!(s.epsilon().is_none()),
            }
        }
    }

    #[test]
    fn arg_parsing_and_rescaling() {
        let c = ExperimentConfig::from_args(
            [
                "--scale",
                "20",
                "--seed",
                "7",
                "--backend",
                "disk",
                "--ignored",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(c.scale, 20);
        assert_eq!(c.seed, 7);
        assert_eq!(c.query_interval, 18);
        assert_eq!(c.size_sample_interval, 360);
        assert_eq!(c.backend, BackendKind::Disk);
        // Missing values fall back to defaults.
        let d = ExperimentConfig::from_args(["--scale"].iter().map(|s| s.to_string()));
        assert_eq!(d.scale, 1);
        assert_eq!(d.backend, BackendKind::Memory);
        // Unknown backend values are ignored, keeping the default.
        let e = ExperimentConfig::from_args(["--backend", "floppy"].iter().map(|s| s.to_string()));
        assert_eq!(e.backend, BackendKind::Memory);
    }

    #[test]
    fn backend_kind_parses_and_renders() {
        assert_eq!(BackendKind::parse("memory"), Some(BackendKind::Memory));
        assert_eq!(BackendKind::parse("disk"), Some(BackendKind::Disk));
        assert_eq!(BackendKind::parse("tape"), None);
        assert_eq!(BackendKind::Disk.to_string(), "disk");
        assert_eq!(BackendKind::default(), BackendKind::Memory);
    }

    #[test]
    fn scaled_datasets_shrink_proportionally() {
        let c = ExperimentConfig {
            scale: 40,
            ..Default::default()
        };
        let yellow = c.yellow_dataset();
        let green = c.green_dataset();
        assert_eq!(yellow.len(), 18_429 / 40);
        assert_eq!(green.len(), 21_300 / 40);
        assert_eq!(yellow.horizon(), 43_200 / 40);
    }

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::ObliDb.to_string(), "ObliDB");
        assert_eq!(EngineKind::CryptEpsilon.label(), "Crypt-epsilon");
        assert_eq!(EngineKind::ALL.len(), 2);
    }
}
